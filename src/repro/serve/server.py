"""The always-on ingestion server.

A small asyncio HTTP/1.1 server (stdlib only — ``asyncio.start_server``
plus a hand-rolled request loop, no web framework) that keeps one
:class:`~repro.serve.tenants.Tenant` per telescope alive and answers
AH queries from live detector state.

Concurrency model — one bounded queue and one worker task per tenant:

* The HTTP handlers never touch detector state.  ``POST .../chunks``
  appends the raw npz bytes to the tenant's write-ahead journal
  (:mod:`repro.serve.journal`) and enqueues them — in that order,
  under a per-tenant admission lock, so a **202 means the chunk is
  durable** and journal sequence order equals fold order.  When the
  tenant's queue is full the server answers **429** with a
  ``Retry-After`` hint instead of buffering unboundedly —
  back-pressure reaches the client, memory stays bounded.  A journal
  append that fails (disk full, EIO) also answers 429 and flags the
  tenant ``journal_degraded`` on ``/health`` until a write succeeds:
  the server never acks what it could not persist.  Retransmits of an
  already-admitted chunk (a client that lost its ack) are detected by
  content digest and re-acked without a second journal record or
  fold.
* The tenant worker drains its queue in order — and *adaptively
  micro-batches*: on wake-up it dequeues every already-queued chunk up
  to the tenant's ``coalesce_chunks``/``coalesce_bytes`` budgets and
  folds them as one coalesced pass, amortizing npz decode and the
  streaming builder's lexsort across the burst.  Queries, snapshots,
  recycles, and sync barriers travel *through the same queue* and cut
  a coalescing run short, so they observe exactly the chunks accepted
  before them and never race an ingest on the same engine.
* Folds run **off-process** by default: the server owns one
  :class:`~repro.serve.foldpool.FoldPool` (``fold_processes`` workers,
  auto-sized to the machine) shared by all tenants, each tenant's
  engine shipping its coalesced batches to shard-affine worker
  processes — many tenants fold concurrently on real cores instead of
  serializing on the GIL, and sub-batches past the shared-memory auto
  threshold hand off zero-copy.  ``fold_processes=0`` restores the
  in-process thread-pool folds.  A fold-worker death surfaces as a
  :class:`~repro.serve.foldpool.FoldPoolError`; the server heals the
  tenant by rebuilding it from its last persisted snapshot.
* Periodic snapshots ride on the engine's own chunk-count scheduling
  (:class:`~repro.core.faults.CheckpointStore` underneath); a killed
  server restarts from the last verified snapshot via
  :meth:`TenantRegistry.restore_all`.

Endpoints (all JSON except the chunk body, which is the npz wire
format of :func:`repro.io.packetlog.packets_to_npz_bytes`):

==========================================  =================================
``GET  /health``                            service + per-tenant health
``PUT  /tenants/<id>``                      create tenant (TenantConfig JSON)
``DELETE /tenants/<id>``                    forget tenant
``POST /tenants/<id>/chunks``               ingest one npz chunk (202/429)
``GET  /tenants/<id>/ah[?definition=N]``    AH sets from merged shard state
``GET  /tenants/<id>/status``               cheap counters (no merge)
``POST /tenants/<id>/snapshot``             force a snapshot, return path
``POST /tenants/<id>/sync``                 barrier: drain queued chunks
``POST /tenants/<id>/recycle``              rebuild engine from snapshot
==========================================  =================================
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.foldpool import FoldPool, FoldPoolError, auto_processes
from repro.serve.journal import JournalError
from repro.serve.tenants import Tenant, TenantConfig, TenantRegistry

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Retry-After hint (seconds) sent with 429 responses.
RETRY_AFTER_SECONDS = 0.05

#: Hard cap on a single request body (64 MiB) — a malformed
#: Content-Length must not make the server allocate unboundedly.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _detections_payload(query, definition: Optional[int]) -> dict:
    """JSON-shape an EngineQuery (sources as sorted ints)."""
    wanted = (
        [definition] if definition is not None else sorted(query.detections)
    )
    detections = {}
    for d in wanted:
        result = query.detections[d]
        detections[str(d)] = {
            "definition": d,
            "count": len(result.sources),
            "threshold": result.threshold,
            "sources": sorted(int(s) for s in result.sources),
        }
    return {
        "detections": detections,
        "events": query.events,
        "packets": query.packets,
        "open_flows": query.open_flows,
        "watermark": query.watermark,
        "chunks": query.chunks,
        "degraded": query.degraded,
    }


class ScannerServer:
    """One server instance bound to a registry.

    Use :meth:`start`/:meth:`stop` from an asyncio context, or the
    :class:`ServerThread` wrapper (tests) / :func:`run_server` (CLI).
    """

    def __init__(
        self,
        registry: TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: Optional[str] = None,
        ingest_threads: int = 2,
        fold_processes: Optional[int] = None,
        restore: bool = True,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.restore = restore
        #: ``None`` = auto-size to the machine, ``0`` = fold in-process
        #: on the thread pool, ``N >= 1`` = that many fold workers.
        self.fold_processes = fold_processes
        self._fold_pool: Optional[FoldPool] = None
        self._executor = ThreadPoolExecutor(
            max_workers=ingest_threads, thread_name_prefix="repro-ingest"
        )
        self._queues: Dict[str, asyncio.Queue] = {}
        self._workers: Dict[str, asyncio.Task] = {}
        #: per-tenant admission locks: the queue-full check, the
        #: journal append, and the enqueue must be one atomic step so
        #: journal sequence order always equals queue (= fold) order.
        self._ingest_locks: Dict[str, asyncio.Lock] = {}
        #: tenants whose last journal append failed (disk full, EIO):
        #: they answer 429 and flag ``/health`` until a write succeeds.
        self._journal_degraded: Dict[str, str] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        if self.fold_processes != 0:
            processes = self.fold_processes or auto_processes()

            def _boot_pool():
                pool = FoldPool(processes)
                # Pre-existing tenants move their state into the
                # workers here; tenants built later (create/restore)
                # attach as the registry builds them.
                self.registry.attach_pool(pool)
                return pool

            # Worker spawn + state hand-off block; keep them off the
            # event loop.
            self._fold_pool = await loop.run_in_executor(
                self._executor, _boot_pool
            )
        if self.restore:
            # Snapshot loading is blocking I/O + unpickling; keep it
            # off the event loop.
            await loop.run_in_executor(
                self._executor, self.registry.restore_all
            )
        for tenant_id in self.registry.ids():
            self._ensure_worker(tenant_id)
        if self.unix_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_socket
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, snapshot: bool = True) -> None:
        """Graceful shutdown: drain queues, snapshot, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for queue in self._queues.values():
            await queue.join()
        for task in self._workers.values():
            task.cancel()
        for task in self._workers.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        loop = asyncio.get_running_loop()
        if self._fold_pool is not None:
            # Pull every tenant's detector state back in-process while
            # the workers are still alive, then retire them.
            await loop.run_in_executor(
                self._executor, self.registry.detach_pool
            )
            await loop.run_in_executor(
                self._executor, self._fold_pool.close
            )
            self._fold_pool = None
        if snapshot:
            await loop.run_in_executor(
                self._executor, self.registry.snapshot_all
            )
        # Snapshots (if taken) just covered — and truncated — the
        # journals; close whatever segments remain either way.
        await loop.run_in_executor(
            self._executor, self.registry.close_journals
        )
        self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Per-tenant queue + worker
    # ------------------------------------------------------------------
    def _ensure_worker(self, tenant_id: str) -> asyncio.Queue:
        if tenant_id not in self._queues:
            tenant = self.registry.get(tenant_id)
            depth = tenant.config.queue_depth if tenant else 8
            self._queues[tenant_id] = asyncio.Queue(maxsize=depth)
            self._workers[tenant_id] = asyncio.get_running_loop().create_task(
                self._tenant_worker(tenant_id)
            )
        return self._queues[tenant_id]

    def _drop_worker(self, tenant_id: str) -> None:
        self._queues.pop(tenant_id, None)
        self._ingest_locks.pop(tenant_id, None)
        self._journal_degraded.pop(tenant_id, None)
        task = self._workers.pop(tenant_id, None)
        if task is not None:
            task.cancel()

    async def _tenant_worker(self, tenant_id: str) -> None:
        """Drain one tenant's queue in order, forever.

        Chunk items coalesce: one wake-up folds every chunk already
        queued, up to the tenant's micro-batching budgets.  Command
        items (query/snapshot/sync/recycle) are barriers — they end a
        coalescing run and execute strictly after the chunks queued
        before them.
        """
        queue = self._queues[tenant_id]
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item[0] == "chunk":
                tenant = self.registry.get(tenant_id)
                if tenant is None:
                    queue.task_done()
                    continue
                await self._drain_chunks(loop, queue, tenant, item)
            else:
                await self._run_command(loop, queue, tenant_id, item)

    async def _drain_chunks(
        self, loop, queue: asyncio.Queue, tenant: Tenant, first: tuple
    ) -> None:
        """Coalesce queued chunks up to the budgets, fold them once."""
        max_chunks = max(1, tenant.config.coalesce_chunks)
        max_bytes = tenant.config.coalesce_bytes
        items = [first]
        n_bytes = len(first[1])
        trailing = None
        while len(items) < max_chunks and n_bytes < max_bytes:
            try:
                nxt = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt[0] != "chunk":
                # A barrier command: stop coalescing, run it after the
                # fold (it was queued after these chunks).
                trailing = nxt
                break
            items.append(nxt)
            n_bytes += len(nxt[1])
        blobs = [item[1] for item in items]
        # The newest journal sequence in the batch — queue order equals
        # sequence order (admission lock), so the last chunk's seq
        # covers the whole batch once folded.
        last_seq = next(
            (
                item[4]
                for item in reversed(items)
                if len(item) > 4 and item[4] is not None
            ),
            None,
        )
        # FIFO: the first item waited longest.
        queue_wait = (
            loop.time() - first[3] if first[3] is not None else 0.0
        )
        try:
            report = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    tenant.ingest_payloads, blobs, last_seq=last_seq
                ),
            )
            tenant.serve_stats.record_fold(
                chunks=len(blobs),
                packets=report.packets,
                seconds=report.seconds,
                queue_wait=queue_wait,
            )
        except FoldPoolError as exc:
            tenant.record_error(f"fold pool: {exc}")
            # The dead worker's unsnapshotted state is gone; rebuild
            # the tenant from its last persisted snapshot.
            await loop.run_in_executor(
                self._executor, tenant.restore_from_store
            )
        except Exception as exc:  # noqa: BLE001 — fault isolation
            tenant.record_error(f"chunk: {exc}")
        finally:
            for _ in items:
                queue.task_done()
        if trailing is not None:
            await self._run_command(loop, queue, tenant.tenant_id, trailing)

    async def _run_command(
        self, loop, queue: asyncio.Queue, tenant_id: str, item: tuple
    ) -> None:
        """Execute one barrier command dequeued from a tenant queue."""
        kind, future = item[0], item[2]
        tenant = self.registry.get(tenant_id)
        try:
            if tenant is None:
                raise RuntimeError(f"tenant {tenant_id!r} was removed")
            result = None
            if kind == "query":
                result = await loop.run_in_executor(
                    self._executor, tenant.query
                )
            elif kind == "snapshot":
                result = await loop.run_in_executor(
                    self._executor, tenant.save_snapshot
                )
            elif kind == "recycle":
                await loop.run_in_executor(self._executor, tenant.recycle)
            # "sync" needs no work: reaching it proves every prior
            # item in the queue was processed.
            if future is not None and not future.cancelled():
                future.set_result(result)
        except asyncio.CancelledError:
            raise
        except FoldPoolError as exc:
            if tenant is not None:
                tenant.record_error(f"{kind}: fold pool: {exc}")
                await loop.run_in_executor(
                    self._executor, tenant.restore_from_store
                )
            if future is not None and not future.cancelled():
                future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 — fault isolation
            if tenant is not None:
                tenant.record_error(f"{kind}: {exc}")
            if future is not None and not future.cancelled():
                future.set_exception(exc)
        finally:
            queue.task_done()

    async def _submit(self, tenant_id: str, kind: str):
        """Queue a command and wait for the worker to reach it."""
        queue = self._ensure_worker(tenant_id)
        future = asyncio.get_running_loop().create_future()
        await queue.put((kind, None, future, None))
        return await future

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _ = (
                        request_line.decode("latin-1").split(None, 2)
                    )
                except ValueError:
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if not 0 <= length <= MAX_BODY_BYTES:
                    self._write_response(
                        writer, 400, {"error": "bad content-length"}
                    )
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload, extra = await self._route(
                        method.upper(), target, body
                    )
                except Exception as exc:  # noqa: BLE001 — keep serving
                    status, payload, extra = (
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        {},
                    )
                self._write_response(writer, status, payload, extra)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _write_response(
        writer, status: int, payload: dict, extra: Optional[dict] = None
    ) -> None:
        data = json.dumps(payload).encode()
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(data)),
        }
        if extra:
            headers.update(extra)
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + data)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict, dict]:
        parts = urlsplit(target)
        path = [p for p in parts.path.split("/") if p]
        params = parse_qs(parts.query)

        if path == ["health"]:
            if method != "GET":
                return 405, {"error": "GET only"}, {}
            return 200, self._health_payload(), {}

        if not path or path[0] != "tenants":
            return 404, {"error": f"no such route: {parts.path}"}, {}
        if len(path) < 2:
            if method == "GET":
                return 200, {"tenants": self.registry.ids()}, {}
            return 405, {"error": "GET only"}, {}

        tenant_id = path[1]
        action = path[2] if len(path) > 2 else None

        if action is None:
            return await self._route_tenant(method, tenant_id, body)

        tenant = self.registry.get(tenant_id)
        if tenant is None:
            return 404, {"error": f"unknown tenant: {tenant_id}"}, {}

        if action == "chunks" and method == "POST":
            return await self._enqueue_chunk(tenant, body)
        if action == "ah" and method == "GET":
            definition = None
            if "definition" in params:
                try:
                    definition = int(params["definition"][0])
                except ValueError:
                    return 400, {"error": "definition must be an int"}, {}
                if definition not in (1, 2, 3):
                    return 400, {"error": "definition must be 1, 2 or 3"}, {}
            query = await self._submit(tenant.tenant_id, "query")
            return 200, _detections_payload(query, definition), {}
        if action == "status" and method == "GET":
            status = tenant.status()
            queue = self._queues.get(tenant_id)
            status["queued"] = queue.qsize() if queue is not None else 0
            return 200, status, {}
        if action == "snapshot" and method == "POST":
            path_str = await self._submit(tenant.tenant_id, "snapshot")
            if path_str is None:
                return 409, {"error": "tenant has no snapshot store"}, {}
            return 200, {"snapshot": path_str}, {}
        if action == "sync" and method == "POST":
            await self._submit(tenant.tenant_id, "sync")
            return 200, {"synced": True}, {}
        if action == "recycle" and method == "POST":
            await self._submit(tenant.tenant_id, "recycle")
            return 200, {"recycles": tenant.recycles}, {}
        return 404, {"error": f"no such action: {action}"}, {}

    async def _route_tenant(
        self, method: str, tenant_id: str, body: bytes
    ) -> Tuple[int, dict, dict]:
        if method == "PUT":
            try:
                config = TenantConfig.from_dict(
                    json.loads(body.decode() or "{}")
                )
            except (ValueError, TypeError) as exc:
                return 400, {"error": f"bad tenant config: {exc}"}, {}
            created = tenant_id not in self.registry
            try:
                tenant = self.registry.create(tenant_id, config)
            except ValueError as exc:
                return 409, {"error": str(exc)}, {}
            self._ensure_worker(tenant_id)
            return (
                201 if created else 200,
                {"tenant": tenant_id, "config": tenant.config.as_dict()},
                {},
            )
        if method == "GET":
            tenant = self.registry.get(tenant_id)
            if tenant is None:
                return 404, {"error": f"unknown tenant: {tenant_id}"}, {}
            return (
                200,
                {"tenant": tenant_id, "config": tenant.config.as_dict()},
                {},
            )
        if method == "DELETE":
            if not self.registry.remove(tenant_id):
                return 404, {"error": f"unknown tenant: {tenant_id}"}, {}
            self._drop_worker(tenant_id)
            return 200, {"removed": tenant_id}, {}
        return 405, {"error": "PUT, GET or DELETE"}, {}

    @staticmethod
    def _backpressure(message: str) -> Tuple[int, dict, dict]:
        return (
            429,
            {"error": message, "retry_after": RETRY_AFTER_SECONDS},
            {"Retry-After": str(RETRY_AFTER_SECONDS)},
        )

    async def _enqueue_chunk(
        self, tenant: Tenant, body: bytes
    ) -> Tuple[int, dict, dict]:
        """Admit one chunk: journal it durably, then queue it, then 202.

        The whole admission runs under the tenant's ingest lock so the
        journal's sequence order is exactly the queue's fold order —
        two concurrent POSTs can never journal in one order and fold
        in the other (which would let a snapshot's sequence watermark
        claim coverage of a chunk that was still queued when the
        process died).  The journal append itself (disk I/O, possibly
        an fsync) runs on the ingest executor, off the event loop.
        """
        if not body:
            return 400, {"error": "empty chunk body"}, {}
        queue = self._ensure_worker(tenant.tenant_id)
        loop = asyncio.get_running_loop()
        lock = self._ingest_locks.setdefault(
            tenant.tenant_id, asyncio.Lock()
        )
        async with lock:
            if queue.full():
                return self._backpressure("ingest queue full")
            try:
                seq, duplicate = await loop.run_in_executor(
                    self._executor, tenant.accept_chunk, body
                )
            except JournalError as exc:
                # Could not make the chunk durable — refusing with 429
                # (so the client retries) beats acking a chunk a crash
                # would lose.  Flagged on /health until a write lands.
                self._journal_degraded[tenant.tenant_id] = str(exc)
                return self._backpressure(f"journal unavailable: {exc}")
            self._journal_degraded.pop(tenant.tenant_id, None)
            if duplicate:
                # Retransmit after a lost ack: already durable, already
                # queued or folded — ack again without doing it twice.
                return 202, {"queued": queue.qsize(), "duplicate": True}, {}
            try:
                queue.put_nowait(("chunk", body, None, loop.time(), seq))
            except asyncio.QueueFull:  # pragma: no cover — lock-prevented
                tenant.forget_payload(body)
                return self._backpressure("ingest queue full")
        tenant.serve_stats.record_enqueued(len(body))
        return 202, {"queued": queue.qsize()}, {}

    def _health_payload(self) -> dict:
        tenants = {}
        for tenant_id in self.registry.ids():
            tenant = self.registry.get(tenant_id)
            queue = self._queues.get(tenant_id)
            tenants[tenant_id] = {
                "chunks": tenant.engine.chunks_ingested,
                "packets": tenant.engine.packets_seen,
                "queued": queue.qsize() if queue is not None else 0,
                "queue_depth": tenant.config.queue_depth,
                "errors": len(tenant.errors),
                "degraded": tenant.engine.degraded,
                "journal_degraded": tenant_id in self._journal_degraded,
                "journal": (
                    tenant.journal.stats()
                    if tenant.journal is not None
                    else None
                ),
                "recycles": tenant.recycles,
                "health": tenant.telemetry.health.as_dict(),
                "serve": tenant.serve_stats.as_dict(),
            }
        return {
            "ok": not self._journal_degraded,
            "journal_degraded": sorted(self._journal_degraded),
            "fold_processes": (
                self._fold_pool.processes
                if self._fold_pool is not None
                else 0
            ),
            "tenants": tenants,
        }


# ----------------------------------------------------------------------
# Blocking entry points
# ----------------------------------------------------------------------


def run_server(
    snapshot_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 8377,
    *,
    unix_socket: Optional[str] = None,
    ingest_threads: int = 2,
    fold_processes: Optional[int] = None,
    journal: bool = True,
    journal_fsync: str = "batch",
    ready: Optional[callable] = None,
) -> None:
    """Run a server until interrupted (the ``repro serve`` CLI path).

    ``ready`` (if given) is called with the bound ``(host, port)`` once
    the socket is listening — the serve-smoke driver uses it to print a
    parseable readiness line.  SIGTERM and SIGINT both trigger the
    graceful path: stop accepting, drain every queue, snapshot, close
    the journals — so a production ``kill`` (or ctrl-C) is
    indistinguishable from a planned shutdown.  Only SIGKILL skips it,
    and the journal exists for exactly that case.
    """

    async def _main():
        registry = TenantRegistry(
            snapshot_dir, journal=journal, journal_fsync=journal_fsync
        )
        server = ScannerServer(
            registry,
            host,
            port,
            unix_socket=unix_socket,
            ingest_threads=ingest_threads,
            fold_processes=fold_processes,
        )
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        await server.start()
        if ready is not None:
            ready((server.host, server.port))
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(shutdown.wait())
        try:
            await asyncio.wait(
                {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            pass
        finally:
            for task in (serving, stopping):
                task.cancel()
            for signum in hooked:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A server on a background thread (tests and in-process drivers).

    ``start`` returns the bound ``(host, port)``; ``stop`` shuts the
    server down gracefully (drain + snapshot) and joins the thread.
    """

    def __init__(self, registry: TenantRegistry, **kwargs):
        self.registry = registry
        self.kwargs = kwargs
        self.server: Optional[ScannerServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def start(self) -> Tuple[str, int]:
        self._loop = asyncio.new_event_loop()

        def _run():
            asyncio.set_event_loop(self._loop)
            self.server = ScannerServer(self.registry, **self.kwargs)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self.server.host, self.server.port

    def stop(self, snapshot: bool = True) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(snapshot=snapshot), self._loop
        )
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
