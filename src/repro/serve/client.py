"""A stdlib HTTP client for the ingestion service.

Small and dependency-free (``http.client``) so benchmarks, tests and
the serve-smoke CI job can drive a server without anything the repo
does not already ship.  One :class:`ServeClient` holds one keep-alive
connection; responses come back as ``(status, payload)`` with the JSON
already decoded.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Optional, Tuple

from repro.io.packetlog import packets_to_npz_bytes
from repro.serve.tenants import TenantConfig


class ServeError(RuntimeError):
    """A non-retryable error response from the server."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One connection to one server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8377, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: headers of the last response, keys lowercased — lets callers
        #: read throttle hints (``Retry-After``) without re-plumbing
        #: every return value.
        self.last_headers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, dict]:
        """One round-trip; reconnects once on a dropped connection."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body or None)
                response = conn.getresponse()
                data = response.read()
                self.last_headers = {
                    name.lower(): value
                    for name, value in response.getheaders()
                }
                break
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        try:
            payload = json.loads(data) if data else {}
        except ValueError:
            payload = {"raw": data.decode("latin-1", errors="replace")}
        return response.status, payload

    def _checked(self, method: str, path: str, body: bytes = b"") -> dict:
        status, payload = self.request(method, path, body)
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._checked("GET", "/health")

    def create_tenant(self, tenant_id: str, config: TenantConfig) -> dict:
        return self._checked(
            "PUT",
            f"/tenants/{tenant_id}",
            json.dumps(config.as_dict()).encode(),
        )

    def delete_tenant(self, tenant_id: str) -> dict:
        return self._checked("DELETE", f"/tenants/{tenant_id}")

    def ingest(self, tenant_id: str, batch) -> Tuple[int, dict]:
        """POST one chunk; returns the raw ``(status, payload)``.

        ``batch`` is a :class:`~repro.packet.PacketBatch` (serialized
        here) or ready-made npz bytes.  A 429 comes back to the caller
        — retry/slow-down policy belongs to the driver (see
        :func:`repro.serve.loadgen.drive`).
        """
        body = (
            batch if isinstance(batch, bytes) else packets_to_npz_bytes(batch)
        )
        return self.request("POST", f"/tenants/{tenant_id}/chunks", body)

    def ingest_blocking(
        self,
        tenant_id: str,
        batch,
        max_retries: int = 200,
        backoff: float = 0.05,
        connect_retries: int = 8,
    ) -> int:
        """Ingest with 429 slow-down; returns the number of retries.

        The sleep honours the server's ``Retry-After`` response header
        (falling back to the JSON ``retry_after`` hint, then to
        ``backoff``), stretched by a small random jitter so a burst of
        throttled clients does not retry in lockstep.

        Connection failures (``ConnectionError``/``OSError``/dropped
        HTTP exchanges) retry too, on their own ``connect_retries``
        budget with capped exponential backoff — a server bouncing
        through a restart looks like a long 429, not an error.  Safe to
        resend: the server deduplicates an already-admitted chunk by
        content digest, so a chunk whose ack was lost in the bounce is
        re-acked, never folded twice.  The budget resets whenever any
        response arrives.
        """
        body = (
            batch if isinstance(batch, bytes) else packets_to_npz_bytes(batch)
        )
        retries = 0
        connect_failures = 0
        while True:
            try:
                status, payload = self.ingest(tenant_id, body)
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if connect_failures >= connect_retries:
                    raise
                delay = min(2.0, backoff * (2.0**connect_failures))
                connect_failures += 1
                retries += 1
                time.sleep(delay * (1.0 + 0.25 * random.random()))
                continue
            connect_failures = 0
            if status == 202:
                return retries
            if status != 429:
                raise ServeError(status, payload)
            if retries >= max_retries:
                raise ServeError(status, payload)
            retries += 1
            delay = None
            header = self.last_headers.get("retry-after")
            if header is not None:
                try:
                    delay = float(header)
                except ValueError:
                    delay = None
            if delay is None:
                delay = float(payload.get("retry_after", backoff))
            time.sleep(delay * (1.0 + 0.25 * random.random()))

    def query_ah(
        self, tenant_id: str, definition: Optional[int] = None
    ) -> dict:
        suffix = f"?definition={definition}" if definition is not None else ""
        return self._checked("GET", f"/tenants/{tenant_id}/ah{suffix}")

    def ah_sources(self, tenant_id: str, definition: int = 1) -> set:
        """The current AH set, as a set of ints."""
        payload = self.query_ah(tenant_id, definition)
        return set(payload["detections"][str(definition)]["sources"])

    def status(self, tenant_id: str) -> dict:
        return self._checked("GET", f"/tenants/{tenant_id}/status")

    def snapshot(self, tenant_id: str) -> dict:
        return self._checked("POST", f"/tenants/{tenant_id}/snapshot")

    def sync(self, tenant_id: str) -> dict:
        """Barrier: returns once every previously accepted chunk for
        the tenant has been folded into its engine."""
        return self._checked("POST", f"/tenants/{tenant_id}/sync")

    def recycle(self, tenant_id: str) -> dict:
        return self._checked("POST", f"/tenants/{tenant_id}/recycle")
