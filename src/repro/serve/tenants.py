"""Tenant isolation: one detection engine per telescope.

A *tenant* is one telescope feeding the service — its own detector
state, its own telemetry/health, its own snapshot directory, its own
memory budget.  Nothing is shared between tenants except the process:
a tenant whose ECDF sample is degraded, whose chunks are corrupt, or
whose engine is recycled never perturbs another tenant's results.

The registry persists tenant configurations to ``tenants.json``
(written atomically) next to the per-tenant snapshot directories, so a
restarted server rebuilds every tenant — engine state included, from
each tenant's last engine snapshot — before accepting traffic.  With
journaling on (the default when a snapshot dir exists), each tenant
also owns a write-ahead chunk journal
(:mod:`repro.serve.journal`): every acked chunk is on disk before its
202, and :meth:`TenantRegistry.restore_all` replays the journal suffix
the last snapshot misses — so a crash loses nothing that was acked.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.config import DetectionConfig
from repro.core.engine import DetectionEngine, EngineQuery, IngestReport
from repro.core.faults import CheckpointStore, atomic_write_json
from repro.core.telemetry import PipelineTelemetry, ServeStats
from repro.serve.journal import (
    JOURNAL_DIR_NAME,
    ChunkJournal,
    JournalError,
    chunk_digest,
)

#: Registry filename under the snapshot root.
REGISTRY_NAME = "tenants.json"
_REGISTRY_MAGIC = "repro-tenant-registry-v1"


@dataclass(frozen=True)
class TenantConfig:
    """Everything needed to (re)build one tenant's engine.

    Mirrors the :class:`DetectionEngine` constructor; the service keeps
    it JSON-serializable so a restarted server can rebuild tenants from
    the registry file alone.
    """

    #: flow idle timeout (seconds) for event building.
    timeout: float
    #: dark addresses the tenant's telescope observes.
    dark_size: int
    #: scenario/calendar day length (thresholds are per-day).
    day_seconds: float = 86_400.0
    #: detector shards inside the tenant's engine.
    workers: int = 1
    #: detection thresholds; ``None`` uses the paper's defaults.
    detection: Optional[DetectionConfig] = None
    #: per-tenant volume-ECDF sample budget (``None`` = exact/unbounded).
    max_ecdf_samples: Optional[int] = None
    #: snapshot cadence, in ingested chunks (``None`` = only explicit).
    snapshot_every_chunks: Optional[int] = 16
    #: bounded ingest-queue depth before the server answers 429.
    queue_depth: int = 8
    #: micro-batching budget: at most this many queued chunks coalesce
    #: into one fold (1 = per-chunk, the pre-coalescing behavior).
    coalesce_chunks: int = 32
    #: micro-batching budget: stop coalescing once the queued wire
    #: bytes drained so far reach this many.
    coalesce_bytes: int = 8 * 2**20

    def as_dict(self) -> dict:
        d = asdict(self)
        if self.detection is not None:
            d["detection"] = asdict(self.detection)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TenantConfig":
        d = dict(d)
        if d.get("detection") is not None:
            d["detection"] = DetectionConfig(**d["detection"])
        return cls(**d)


@dataclass
class Tenant:
    """One tenant: an engine plus its telemetry and snapshot store."""

    tenant_id: str
    config: TenantConfig
    engine: DetectionEngine
    telemetry: PipelineTelemetry
    store: Optional[CheckpointStore] = None
    #: ingest failures (message strings), newest last; capped.
    errors: List[str] = field(default_factory=list)
    #: engines rebuilt from snapshot (graceful recycling).
    recycles: int = 0
    #: serve-path ingest telemetry (queue wait, coalescing, folds).
    serve_stats: ServeStats = field(default_factory=ServeStats)
    #: fold pool this tenant's engine routes through (``None`` = local
    #: in-process folds); set via :meth:`attach_pool`, never persisted.
    fold_pool: Optional[object] = field(default=None, repr=False)
    #: write-ahead chunk journal (``None`` = ingest is not durable).
    journal: Optional[ChunkJournal] = field(default=None, repr=False)
    #: LRU of recently admitted chunk digests — a client retransmitting
    #: after a lost ack gets 202 again without re-journaling or
    #: double-folding.  Bounded; the watermark gate backstops evictions.
    admitted: "OrderedDict[bytes, int]" = field(
        default_factory=OrderedDict, repr=False
    )

    _MAX_ERRORS = 32
    _DEDUP_CAPACITY = 512

    def ingest(self, batch) -> None:
        """Fold one chunk into the tenant's engine (synchronous)."""
        self.engine.ingest(batch)

    def ingest_payloads(
        self, blobs: List[bytes], last_seq: Optional[int] = None
    ) -> IngestReport:
        """Fold a coalesced micro-batch of npz wire chunks.

        Individual bad chunks are recorded on the tenant's error list
        (and excluded from the folded-chunk count) without failing the
        rest of the batch.  ``last_seq`` — the journal sequence of the
        newest blob in the batch — advances the engine's durability
        watermark so snapshots record exactly which journal suffix
        still needs boot-time replay.
        """
        report = self.engine.ingest_payloads(blobs, last_seq=last_seq)
        for message in report.errors:
            self.record_error(f"chunk rejected: {message}")
        self.maybe_truncate_journal()
        return report

    # ------------------------------------------------------------------
    # Durable admission (the write-ahead journal path)
    # ------------------------------------------------------------------
    def _remember(self, digest: bytes, seq: Optional[int]) -> None:
        self.admitted[digest] = seq
        self.admitted.move_to_end(digest)
        while len(self.admitted) > self._DEDUP_CAPACITY:
            self.admitted.popitem(last=False)

    def accept_chunk(self, payload: bytes) -> Tuple[Optional[int], bool]:
        """Admit one wire chunk durably; ``(seq, duplicate)``.

        The ack contract lives here: the chunk's bytes are appended to
        the journal (per its fsync policy) *before* this returns, so a
        202 sent afterwards promises the chunk survives a crash.  A
        digest already admitted returns ``(its seq, True)`` without a
        second journal record — the retransmit-after-lost-ack path.
        :class:`~repro.serve.journal.JournalError` propagates (the
        server answers 429); the chunk is then *not* admitted.
        """
        digest = chunk_digest(payload)
        if digest in self.admitted:
            self.admitted.move_to_end(digest)
            self.serve_stats.record_duplicate()
            return self.admitted[digest], True
        seq = None
        if self.journal is not None:
            bytes_before = self.journal.bytes_appended
            fsyncs_before = self.journal.fsyncs
            try:
                seq = self.journal.append(payload, digest)
            except JournalError as exc:
                self.serve_stats.record_journal_failure()
                self.record_error(f"journal: {exc}")
                raise
            self.serve_stats.record_journal_append(
                self.journal.bytes_appended - bytes_before,
                self.journal.fsyncs - fsyncs_before,
            )
        self._remember(digest, seq)
        return seq, False

    def forget_payload(self, payload: bytes) -> None:
        """Drop a payload's digest from the dedup LRU.

        The defensive un-admit for the (lock-prevented) case where a
        journaled chunk could not be queued: forgetting the digest
        makes the client's retry re-admit it instead of getting a
        duplicate-202 for a chunk that never reached the fold path.
        The orphan journal record is harmless — replay dedups it.
        """
        self.admitted.pop(chunk_digest(payload), None)

    def replay_journal(self) -> int:
        """Re-fold the journal suffix the last snapshot doesn't cover.

        The boot/heal-time completion of the ack contract: every intact
        journal record with a sequence past the restored engine's
        ``last_seq`` goes back through the normal fold path, in journal
        order.  Idempotent — a digest already replayed in this pass
        only advances the sequence watermark (the retransmit-dedup
        case: same chunk journaled twice folds once, exactly as it
        would have live).  Records at or below ``last_seq`` only seed
        the dedup LRU.  Returns the number of chunks re-folded.
        """
        if self.journal is None:
            return 0
        covered = self.engine.last_seq
        seen = set()
        replayed = 0
        for record in self.journal.replay():
            if record.seq <= covered:
                self._remember(record.digest, record.seq)
                continue
            if record.digest in seen:
                self.engine.advance_seq(record.seq)
                continue
            seen.add(record.digest)
            self._remember(record.digest, record.seq)
            self.engine.ingest_payloads([record.payload], last_seq=record.seq)
            replayed += 1
        # New appends must continue past everything the engine has
        # already folded, even when truncation emptied the journal.
        self.journal.ensure_next_seq(self.engine.last_seq + 1)
        if replayed:
            self.serve_stats.record_replay(replayed)
            if self.store is not None:
                self.engine.save_snapshot()
        self.maybe_truncate_journal()
        return replayed

    def maybe_truncate_journal(self) -> None:
        """Drop journal segments the last persisted snapshot covers."""
        if self.journal is not None and self.engine.snapshot_seq > 0:
            self.journal.truncate_through(self.engine.snapshot_seq)

    def close_journal(self) -> None:
        """Flush and close the journal file (graceful shutdown)."""
        if self.journal is not None:
            self.journal.close()

    def attach_pool(self, pool) -> None:
        """Route this tenant's folds through a fold pool."""
        self.fold_pool = pool
        if pool is not None and not self.engine.pooled:
            self.engine.attach_pool(pool, self.tenant_id)

    def detach_pool(self) -> None:
        """Pull detector state back in-process (no-op if unpooled)."""
        self.engine.detach_pool()
        self.fold_pool = None

    def abandon_pool(self) -> None:
        """Drop pooled state without collecting it (tenant removal)."""
        self.engine.abandon_pool()
        self.fold_pool = None

    def query(self) -> EngineQuery:
        return self.engine.query()

    def status(self) -> dict:
        status = self.engine.status()
        status.update(
            tenant=self.tenant_id,
            recycles=self.recycles,
            errors=list(self.errors),
            health=self.telemetry.health.as_dict(),
            serve=self.serve_stats.as_dict(),
        )
        if self.journal is not None:
            status["journal"] = self.journal.stats()
        return status

    def record_error(self, message: str) -> None:
        self.errors.append(message)
        del self.errors[: -self._MAX_ERRORS]

    def save_snapshot(self) -> Optional[str]:
        """Persist the engine now; returns the checkpoint path."""
        if self.store is None:
            return None
        path = str(self.engine.save_snapshot())
        self.maybe_truncate_journal()
        return path

    def recycle(self) -> None:
        """Rebuild the engine from its own snapshot bytes.

        The graceful worker-recycling hook: the engine state is pushed
        through the exact snapshot/restore path a crash would take
        (so recycling doubles as a continuous restore test), and any
        accumulated Python-level garbage on the old engine is dropped.
        State, results, and telemetry accounting are unaffected —
        pinned by tests.
        """
        self.engine = DetectionEngine.restore(
            self.engine.snapshot(),
            telemetry=self.telemetry,
            store=self.store,
            snapshot_every_chunks=self.config.snapshot_every_chunks,
        )
        self.recycles += 1
        if self.fold_pool is not None:
            self.engine.attach_pool(self.fold_pool, self.tenant_id)

    def restore_from_store(self) -> None:
        """Rebuild the engine from its last *persisted* snapshot.

        The fold-pool failure path: when a worker process dies its
        unsnapshotted shard state is gone, so the live engine cannot be
        trusted — rebuild from the newest snapshot on disk (empty if
        none survives) and re-attach the pool, overwriting whatever
        stale shard state the surviving workers still hold.
        """
        engine = None
        if self.store is not None:
            engine = DetectionEngine.from_store(
                self.store,
                telemetry=self.telemetry,
                snapshot_every_chunks=self.config.snapshot_every_chunks,
            )
        if engine is None:
            engine = DetectionEngine(
                self.config.timeout,
                self.config.dark_size,
                self.config.detection,
                self.config.day_seconds,
                workers=self.config.workers,
                telemetry=self.telemetry,
                store=self.store,
                snapshot_every_chunks=self.config.snapshot_every_chunks,
                max_ecdf_samples=self.config.max_ecdf_samples,
            )
        self.engine = engine
        self.recycles += 1
        if self.fold_pool is not None:
            self.engine.attach_pool(self.fold_pool, self.tenant_id)
        # The journal still holds every acked chunk past that snapshot:
        # replaying it makes even a fold-worker death lossless.
        self.replay_journal()


class TenantRegistry:
    """Creates, restores, and looks up tenants.

    With ``snapshot_dir`` set, the registry is durable: tenant configs
    live in ``<snapshot_dir>/tenants.json`` and each tenant's engine
    snapshots under ``<snapshot_dir>/<tenant_id>/``; :meth:`restore_all`
    rebuilds the whole fleet after a restart, resuming every engine
    from its last verified snapshot (a missing or corrupt snapshot
    restarts that tenant empty — and counts on its health).
    """

    def __init__(
        self,
        snapshot_dir: Optional[str] = None,
        *,
        journal: bool = True,
        journal_fsync: str = "batch",
        journal_segment_bytes: Optional[int] = None,
    ):
        self.snapshot_dir = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        #: write-ahead journal toggle + fsync policy for every tenant
        #: (journals need a snapshot dir; without one ingest is
        #: memory-only and nothing is durable to begin with).
        self.journal_enabled = bool(journal)
        self.journal_fsync = journal_fsync
        self.journal_segment_bytes = journal_segment_bytes
        self._tenants: Dict[str, Tenant] = {}
        #: fold pool every current and future tenant routes through
        #: (``None`` = in-process folds); set via :meth:`attach_pool`.
        self.fold_pool = None
        if self.snapshot_dir is not None:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)

    def attach_pool(self, pool) -> None:
        """Route every current and future tenant through ``pool``."""
        self.fold_pool = pool
        for tenant in self._tenants.values():
            tenant.attach_pool(pool)

    def detach_pool(self) -> None:
        """Pull every tenant's state back in-process (e.g. shutdown)."""
        self.fold_pool = None
        for tenant in self._tenants.values():
            tenant.detach_pool()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def ids(self) -> List[str]:
        return sorted(self._tenants)

    def get(self, tenant_id: str) -> Optional[Tenant]:
        return self._tenants.get(tenant_id)

    # ------------------------------------------------------------------
    def create(self, tenant_id: str, config: TenantConfig) -> Tenant:
        """Create (or idempotently re-create) a tenant.

        Re-creating an existing tenant with the *same* config returns
        it unchanged — the natural retry after a dropped connection;
        with a different config it raises, because detector state under
        one configuration cannot continue under another.
        """
        if not tenant_id or "/" in tenant_id or tenant_id.startswith("."):
            raise ValueError(f"invalid tenant id: {tenant_id!r}")
        existing = self._tenants.get(tenant_id)
        if existing is not None:
            if existing.config != config:
                raise ValueError(
                    f"tenant {tenant_id!r} already exists with a "
                    "different configuration"
                )
            return existing
        tenant = self._build(tenant_id, config, restore=False)
        self._tenants[tenant_id] = tenant
        self._persist()
        return tenant

    def remove(self, tenant_id: str) -> bool:
        """Forget a tenant (its snapshot files are left on disk)."""
        tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            return False
        tenant.abandon_pool()
        tenant.close_journal()
        self._persist()
        return True

    # ------------------------------------------------------------------
    def _store_for(
        self, tenant_id: str, telemetry: PipelineTelemetry
    ) -> Optional[CheckpointStore]:
        if self.snapshot_dir is None:
            return None
        return CheckpointStore(
            self.snapshot_dir / tenant_id, health=telemetry.health
        )

    def _build(
        self, tenant_id: str, config: TenantConfig, restore: bool
    ) -> Tenant:
        telemetry = PipelineTelemetry()
        store = self._store_for(tenant_id, telemetry)
        engine = None
        if restore and store is not None:
            engine = DetectionEngine.from_store(
                store,
                telemetry=telemetry,
                snapshot_every_chunks=config.snapshot_every_chunks,
            )
        if engine is None:
            engine = DetectionEngine(
                config.timeout,
                config.dark_size,
                config.detection,
                config.day_seconds,
                workers=config.workers,
                telemetry=telemetry,
                store=store,
                snapshot_every_chunks=config.snapshot_every_chunks,
                max_ecdf_samples=config.max_ecdf_samples,
            )
        journal = None
        if self.snapshot_dir is not None and self.journal_enabled:
            kwargs = {}
            if self.journal_segment_bytes is not None:
                kwargs["segment_bytes"] = self.journal_segment_bytes
            journal = ChunkJournal(
                self.snapshot_dir / tenant_id / JOURNAL_DIR_NAME,
                fsync=self.journal_fsync,
                health=telemetry.health,
                **kwargs,
            )
            if not restore:
                # A *fresh* tenant must not inherit segments left by an
                # earlier same-named tenant: its engine starts empty.
                journal.reset()
        tenant = Tenant(
            tenant_id=tenant_id,
            config=config,
            engine=engine,
            telemetry=telemetry,
            store=store,
            journal=journal,
        )
        if self.fold_pool is not None:
            tenant.attach_pool(self.fold_pool)
        return tenant

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def registry_path(self) -> Optional[Path]:
        if self.snapshot_dir is None:
            return None
        return self.snapshot_dir / REGISTRY_NAME

    def _persist(self) -> None:
        path = self.registry_path()
        if path is None:
            return
        atomic_write_json(
            path,
            {
                "magic": _REGISTRY_MAGIC,
                "tenants": {
                    tenant_id: tenant.config.as_dict()
                    for tenant_id, tenant in sorted(self._tenants.items())
                },
            },
        )

    def restore_all(self) -> List[str]:
        """Rebuild every registered tenant from disk (boot path).

        Returns the restored tenant ids.  Unknown or mis-tagged
        registry files are ignored (empty fleet) rather than guessed
        at; individual tenants whose snapshot is missing or corrupt
        come back empty, with the corruption accounted on their health.
        """
        path = self.registry_path()
        if path is None or not path.exists():
            return []
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            return []
        if payload.get("magic") != _REGISTRY_MAGIC:
            return []
        restored = []
        for tenant_id, config_dict in payload.get("tenants", {}).items():
            config = TenantConfig.from_dict(config_dict)
            tenant = self._build(tenant_id, config, restore=True)
            # Reconcile the snapshot's sequence watermark against the
            # journal tail: every acked chunk the snapshot missed is
            # re-folded here, before the tenant takes traffic.  One
            # tenant's damaged journal (torn tails are quarantined on
            # its own health) never blocks its siblings.
            tenant.replay_journal()
            self._tenants[tenant_id] = tenant
            restored.append(tenant_id)
        return restored

    def snapshot_all(self) -> Dict[str, Optional[str]]:
        """Force a snapshot of every tenant; returns id -> path."""
        return {
            tenant_id: tenant.save_snapshot()
            for tenant_id, tenant in sorted(self._tenants.items())
        }

    def close_journals(self) -> None:
        """Flush and close every tenant's journal (graceful stop)."""
        for tenant in self._tenants.values():
            tenant.close_journal()
