"""Process-pool detector folds for the always-on serve layer.

The ingestion server's CPU-bound work — npz decode plus the
:class:`~repro.core.streaming.StreamingDetector` fold — used to run on
an in-process thread pool, where every tenant's folds serialized on the
GIL.  A :class:`FoldPool` moves that work into a small fleet of
long-lived worker *processes*: each worker owns the live detector state
for the ``(tenant, shard)`` keys hashed to it, so many tenants fold
concurrently on real cores while the asyncio loop and its ingest
threads only shuttle requests.

Design points:

* **Shard affinity.**  A ``(tenant, shard)`` key always maps to the
  same worker (stable hash), and each worker processes its pipe in
  order — so the per-shard fold order the detectors require is
  preserved without any cross-process locking.
* **State lives in the worker.**  Detector state grows with the stream
  (finalized event columns accumulate), so shipping it back and forth
  per fold would cost O(history) each time.  Instead only small
  :class:`FoldReply` gauge structs cross the pipe per fold; the engine
  pulls full state bytes (``collect``) only for queries, snapshots and
  finish — operations that were O(history) already.
* **Zero-copy hand-off.**  Sub-batches above the shared-memory auto
  threshold travel as :class:`~repro.io.shm.ShmBatch` handles over one
  named segment per fold (see :func:`repro.io.shm.share_batches`);
  single-shard tenants ship raw npz wire bytes and the worker decodes
  them off-loop.
* **Desync detection.**  Every fold carries the packet count the
  engine believes the shard has folded; a mismatch (a respawned worker
  that lost state, or an affinity bug) fails the fold loudly instead
  of silently restarting the shard from empty.  The server heals a
  tenant that hits this by recycling it from its last snapshot.

The pool is shared by every tenant of one server; per-tenant ordering
still comes from the server's per-tenant command queue, which never
lets two folds for the same tenant be in flight at once.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import gate_time_order
from repro.core.streaming import StreamingDetector
from repro.io.packetlog import packets_from_npz_bytes
from repro.io.shm import resolve_batch
from repro.packet import PacketBatch

#: Upper bound the auto policy puts on the fold-worker count.
AUTO_MAX_PROCESSES = 4


def auto_processes() -> int:
    """The default fold-worker count: one per core, capped."""
    return max(1, min(AUTO_MAX_PROCESSES, os.cpu_count() or 1))


class FoldPoolError(RuntimeError):
    """A fold-pool worker failed or lost state; see the message."""


@dataclass(frozen=True)
class ShardSpec:
    """Constructor arguments for a worker-side detector shard."""

    timeout: float
    dark_size: int
    config: object
    day_seconds: float
    max_ecdf_samples: Optional[int]


@dataclass(frozen=True)
class FoldReply:
    """What one fold request did, plus the shard's gauges after it."""

    #: packets folded by this call.
    packets: int
    #: events finalized by this call.
    events_finalized: int
    #: npz payloads (or batches) that failed to decode/fold, as
    #: message strings; the good ones were still folded.
    errors: Tuple[str, ...]
    #: worker-side wall seconds spent decoding + folding.
    seconds: float
    #: cumulative shard gauges after the fold.
    packets_seen: int
    events_total: int
    open_flows: int
    peak_open_flows: int
    watermark: Optional[float]
    #: True once the shard's volume ECDF was ever compacted.
    degraded: bool


def _decode_payload(payload) -> Tuple[list, List[str]]:
    """``(batches, errors)`` for one fold payload.

    Payloads are tagged tuples: ``("npz", [bytes, ...])`` for raw wire
    chunks the worker decodes itself, ``("shm", ShmBatch)`` for a
    shared-memory handle, ``("batch", PacketBatch)`` for a pickled
    batch.
    """
    kind, value = payload
    if kind == "npz":
        batches, errors = [], []
        for blob in value:
            try:
                batches.append(packets_from_npz_bytes(blob, label="chunk"))
            except Exception as exc:  # noqa: BLE001 — per-chunk isolation
                errors.append(str(exc))
        return batches, errors
    if kind == "shm":
        return [resolve_batch(value)], []
    return [value], []


def _worker_main(conn) -> None:
    """One fold worker: serve pipe requests until ``close`` or EOF."""
    detectors: Dict[tuple, StreamingDetector] = {}
    degraded: set = set()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        try:
            if op == "fold":
                _, key, spec, expect_packets, payload = message
                detector = detectors.get(key)
                if detector is None:
                    if expect_packets:
                        raise FoldPoolError(
                            f"shard {key!r} has no state here but the engine "
                            f"expects {expect_packets} folded packets "
                            "(worker respawned?)"
                        )
                    detector = StreamingDetector(
                        spec.timeout,
                        spec.dark_size,
                        spec.config,
                        spec.day_seconds,
                    )
                    detectors[key] = detector
                elif detector.packets_seen != expect_packets:
                    raise FoldPoolError(
                        f"shard {key!r} state out of sync: worker has "
                        f"{detector.packets_seen} packets, engine expects "
                        f"{expect_packets}"
                    )
                batches, errors = _decode_payload(payload)
                t0 = time.perf_counter()
                kept = gate_time_order(batches, detector.watermark, errors)
                packets = finalized = 0
                if kept:
                    coalesced = (
                        kept[0]
                        if len(kept) == 1
                        else PacketBatch.concat(kept)
                    )
                    try:
                        report = detector.add_batch(coalesced)
                        packets = report.packets
                        finalized = report.events_finalized
                    except Exception as exc:  # noqa: BLE001 — surface it
                        errors.append(str(exc))
                if spec.max_ecdf_samples is not None:
                    if detector.bound_volume_samples(spec.max_ecdf_samples):
                        degraded.add(key)
                conn.send(
                    (
                        "ok",
                        FoldReply(
                            packets=packets,
                            events_finalized=finalized,
                            errors=tuple(errors),
                            seconds=time.perf_counter() - t0,
                            packets_seen=detector.packets_seen,
                            events_total=detector.events_finalized,
                            open_flows=detector.open_flows,
                            peak_open_flows=detector.peak_open_flows,
                            watermark=detector.watermark,
                            degraded=key in degraded,
                        ),
                    )
                )
            elif op == "collect":
                _, key = message
                detector = detectors.get(key)
                conn.send(
                    ("ok", None if detector is None else detector.to_bytes())
                )
            elif op == "load":
                _, key, blob = message
                if blob is None:
                    detectors.pop(key, None)
                    degraded.discard(key)
                else:
                    detectors[key] = StreamingDetector.from_bytes(blob)
                conn.send(("ok", None))
            elif op == "drop":
                _, tenant = message
                for key in [k for k in detectors if k[0] == tenant]:
                    del detectors[key]
                    degraded.discard(key)
                conn.send(("ok", None))
            elif op == "ping":
                conn.send(("ok", None))
            elif op == "close":
                conn.send(("ok", None))
                return
            else:
                conn.send(("err", f"unknown fold-pool op: {op!r}"))
        except Exception as exc:  # noqa: BLE001 — keep the worker alive
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """Parent-side handle to one fold process: pipe + dispatch lock."""

    def __init__(self, ctx, index: int):
        self.index = index
        self.lock = threading.Lock()
        self._spawn(ctx)

    def _spawn(self, ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child,),
            name=f"repro-fold-{self.index}",
            daemon=True,
        )
        self.process.start()
        child.close()


class FoldPool:
    """A fleet of long-lived detector fold processes.

    Args:
        processes: worker-process count (>= 1); see
            :func:`auto_processes` for the serve default.
        shm: shared-memory policy for batch hand-off, as accepted by
            :func:`repro.io.shm.want_shared_memory` (None = auto).
        start_method: multiprocessing start method.  ``spawn`` (the
            default) is safe to call from threaded parents — the serve
            test harness runs the event loop on a background thread.
    """

    def __init__(
        self,
        processes: int,
        *,
        shm: Optional[bool] = None,
        start_method: str = "spawn",
    ):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = int(processes)
        self.shm = shm
        self._ctx = multiprocessing.get_context(start_method)
        self._workers = [
            _Worker(self._ctx, index) for index in range(self.processes)
        ]
        self._closed = False

    # ------------------------------------------------------------------
    def worker_index(self, key) -> int:
        """The worker that owns ``key`` (stable across calls)."""
        digest = hashlib.blake2b(
            repr(key).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.processes

    def _exchange(self, worker: _Worker, messages: list) -> list:
        """Send/recv a message batch on one worker (lock already held)."""
        try:
            for message in messages:
                worker.conn.send(message)
            replies = [worker.conn.recv() for _ in messages]
        except (EOFError, OSError) as exc:
            self._respawn(worker)
            raise FoldPoolError(
                f"fold worker {worker.index} died mid-request; its "
                "unsnapshotted shard state is lost — recycle affected "
                "tenants to restore from their last snapshot"
            ) from exc
        values = []
        error = None
        for status, value in replies:
            if status != "ok":
                error = value
            values.append(value)
        if error is not None:
            raise FoldPoolError(error)
        return values

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker with a fresh (state-less) process."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        worker._spawn(self._ctx)

    def _call(self, worker: _Worker, message: tuple):
        with worker.lock:
            return self._exchange(worker, [message])[0]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def fold_many(
        self, requests: Sequence[tuple]
    ) -> List[Optional[FoldReply]]:
        """Dispatch fold requests, overlapping across workers.

        ``requests`` is a sequence of ``(key, spec, expect_packets,
        payload)`` tuples.  Requests for distinct workers run
        concurrently (two-phase: send everything, then collect);
        requests landing on the same worker run in order.  Worker locks
        are taken in index order, so concurrent callers cannot
        deadlock.  Returns one :class:`FoldReply` per request, in
        request order.
        """
        if self._closed:
            raise FoldPoolError("fold pool is closed")
        by_worker: Dict[int, List[tuple]] = {}
        for position, (key, spec, expect_packets, payload) in enumerate(
            requests
        ):
            index = self.worker_index(key)
            by_worker.setdefault(index, []).append(
                (position, ("fold", key, spec, expect_packets, payload))
            )
        indexes = sorted(by_worker)
        replies: List[Optional[FoldReply]] = [None] * len(requests)
        for index in indexes:
            self._workers[index].lock.acquire()
        try:
            for index in indexes:
                worker = self._workers[index]
                messages = [message for _, message in by_worker[index]]
                values = self._exchange(worker, messages)
                for (position, _), value in zip(by_worker[index], values):
                    replies[position] = value
        finally:
            for index in indexes:
                self._workers[index].lock.release()
        return replies

    def collect(self, key) -> Optional[bytes]:
        """The shard's serialized detector state (None if never used)."""
        worker = self._workers[self.worker_index(key)]
        return self._call(worker, ("collect", key))

    def load(self, key, blob: Optional[bytes]) -> None:
        """Install (or, with ``None``, drop) one shard's state."""
        worker = self._workers[self.worker_index(key)]
        self._call(worker, ("load", key, blob))

    def drop(self, tenant) -> None:
        """Forget every shard state belonging to one tenant."""
        for worker in self._workers:
            self._call(worker, ("drop", tenant))

    def ping(self) -> bool:
        """Round-trip every worker (used by health checks and tests)."""
        for worker in self._workers:
            self._call(worker, ("ping",))
        return True

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.conn.send(("close",))
                    worker.conn.recv()
                except (EOFError, OSError, ValueError):
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass
            worker.process.join(timeout=10)
            if worker.process.is_alive():  # pragma: no cover - stuck child
                worker.process.terminate()
                worker.process.join(timeout=5)

    def __enter__(self) -> "FoldPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
