"""The always-on detection service.

Three pieces, layered over :class:`repro.core.engine.DetectionEngine`:

* :mod:`repro.serve.tenants` — one isolated engine per telescope
  ("tenant"), with per-tenant memory budgets and snapshot stores.
* :mod:`repro.serve.server` — an asyncio HTTP server ingesting npz
  packet chunks for many tenants concurrently, with bounded queues
  (back-pressure via 429), periodic snapshots, and live AH queries.
* :mod:`repro.serve.journal` — the per-tenant write-ahead chunk
  journal behind the durable-ack contract: a 202 means the chunk is
  on disk and a restarted server replays whatever the last snapshot
  missed.
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — a stdlib
  client and a load generator used by benchmarks and the serve-smoke
  CI job.
"""

from repro.serve.journal import ChunkJournal, JournalError, chunk_digest
from repro.serve.tenants import Tenant, TenantConfig, TenantRegistry

__all__ = [
    "ChunkJournal",
    "JournalError",
    "Tenant",
    "TenantConfig",
    "TenantRegistry",
    "chunk_digest",
]
