"""Load generator for the ingestion service.

Chunks a capture the same way the offline pipeline would
(:meth:`PacketBatch.iter_time_chunks`) and drives it at a server,
honouring 429 back-pressure with sleep-and-retry.  Used by the
serve-smoke CI job and as a standalone benchmark driver::

    PYTHONPATH=src python -m repro.serve.loadgen \
        --host 127.0.0.1 --port 8377 --tenant t0 capture.npz
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.io.packetlog import load_packets_npz, packets_to_npz_bytes
from repro.packet import PacketBatch
from repro.serve.client import ServeClient


@dataclass
class DriveStats:
    """What one drive() pass did."""

    chunks: int = 0
    packets: int = 0
    bytes_sent: int = 0
    retries: int = 0
    seconds: float = 0.0

    @property
    def throughput(self) -> Optional[float]:
        """Packets accepted per wall second (None before data)."""
        if self.seconds <= 0.0:
            return None
        return self.packets / self.seconds


def chunk_payloads(
    batch: PacketBatch, chunk_seconds: float
) -> Iterable[tuple]:
    """Yield ``(n_packets, npz_bytes)`` wire payloads for a capture."""
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        yield len(chunk), packets_to_npz_bytes(chunk)


def drive(
    client: ServeClient,
    tenant_id: str,
    payloads: Iterable[tuple],
    *,
    max_retries: int = 1_000,
    backoff: float = 0.05,
    sync: bool = True,
) -> DriveStats:
    """Send every payload in order, sleeping through 429s.

    ``payloads`` yields ``(n_packets, bytes)`` pairs (see
    :func:`chunk_payloads`).  With ``sync`` (default) the call returns
    only after the server has *folded* every chunk, not merely queued
    them — the state a subsequent AH query answers from is then
    deterministic.
    """
    stats = DriveStats()
    t0 = time.perf_counter()
    for n_packets, payload in payloads:
        stats.retries += client.ingest_blocking(
            tenant_id, payload, max_retries=max_retries, backoff=backoff
        )
        stats.chunks += 1
        stats.packets += int(n_packets)
        stats.bytes_sent += len(payload)
    if sync:
        client.sync(tenant_id)
    stats.seconds = time.perf_counter() - t0
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay an npz capture against a repro serve instance.",
    )
    parser.add_argument("capture", help="npz capture file (save_packets_npz)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument("--tenant", default="loadgen")
    parser.add_argument(
        "--chunk-seconds",
        type=float,
        default=3_600.0,
        help="wire chunk window (default: 1 hour)",
    )
    args = parser.parse_args(argv)

    batch = load_packets_npz(args.capture)
    with ServeClient(args.host, args.port) as client:
        stats = drive(
            client,
            args.tenant,
            chunk_payloads(batch, args.chunk_seconds),
        )
    rate = stats.throughput
    print(
        f"sent {stats.chunks} chunks / {stats.packets:,} packets "
        f"({stats.bytes_sent:,} bytes) in {stats.seconds:.2f}s"
        + (f" — {rate:,.0f} pkt/s" if rate else "")
        + (f", {stats.retries} back-pressure retries" if stats.retries else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
