"""Load generator for the ingestion service.

Chunks a capture the same way the offline pipeline would
(:meth:`PacketBatch.iter_time_chunks`) and drives it at a server,
honouring 429 back-pressure with sleep-and-retry.  Used by the
serve-smoke CI job and as a standalone benchmark driver::

    PYTHONPATH=src python -m repro.serve.loadgen \
        --host 127.0.0.1 --port 8377 --tenant t0 capture.npz
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.io.packetlog import load_packets_npz, packets_to_npz_bytes
from repro.packet import PacketBatch
from repro.serve.client import ServeClient


def percentile(samples: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (None when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


@dataclass
class DriveStats:
    """What one drive() pass did."""

    chunks: int = 0
    packets: int = 0
    bytes_sent: int = 0
    retries: int = 0
    seconds: float = 0.0
    #: wall seconds from POSTing each chunk to its 202 ack (including
    #: any 429 sleep-and-retry) — the client-observed ingest latency.
    ack_seconds: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> Optional[float]:
        """Packets accepted per wall second (None before data)."""
        if self.seconds <= 0.0:
            return None
        return self.packets / self.seconds

    @property
    def ack_p50(self) -> Optional[float]:
        """Median ingest-ack latency (seconds)."""
        return percentile(self.ack_seconds, 0.50)

    @property
    def ack_p99(self) -> Optional[float]:
        """99th-percentile ingest-ack latency (seconds)."""
        return percentile(self.ack_seconds, 0.99)


def chunk_payloads(
    batch: PacketBatch, chunk_seconds: float
) -> Iterable[tuple]:
    """Yield ``(n_packets, npz_bytes)`` wire payloads for a capture."""
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        yield len(chunk), packets_to_npz_bytes(chunk)


def drive(
    client: ServeClient,
    tenant_id: str,
    payloads: Iterable[tuple],
    *,
    max_retries: int = 1_000,
    backoff: float = 0.05,
    connect_retries: int = 8,
    sync: bool = True,
    on_ack: Optional[callable] = None,
) -> DriveStats:
    """Send every payload in order, sleeping through 429s.

    ``payloads`` yields ``(n_packets, bytes)`` pairs (see
    :func:`chunk_payloads`).  With ``sync`` (default) the call returns
    only after the server has *folded* every chunk, not merely queued
    them — the state a subsequent AH query answers from is then
    deterministic.  ``connect_retries`` bounds how long each chunk
    survives a server bounce (passed through to
    :meth:`ServeClient.ingest_blocking`).  ``on_ack``, if given, is
    called as ``on_ack(index, n_packets)`` after each chunk's 202 —
    the chaos harness uses it to track exactly which chunks the server
    promised to keep before it was killed.
    """
    stats = DriveStats()
    t0 = time.perf_counter()
    for index, (n_packets, payload) in enumerate(payloads):
        sent_at = time.perf_counter()
        stats.retries += client.ingest_blocking(
            tenant_id,
            payload,
            max_retries=max_retries,
            backoff=backoff,
            connect_retries=connect_retries,
        )
        stats.ack_seconds.append(time.perf_counter() - sent_at)
        stats.chunks += 1
        stats.packets += int(n_packets)
        stats.bytes_sent += len(payload)
        if on_ack is not None:
            on_ack(index, int(n_packets))
    if sync:
        client.sync(tenant_id)
    stats.seconds = time.perf_counter() - t0
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay an npz capture against a repro serve instance.",
    )
    parser.add_argument("capture", help="npz capture file (save_packets_npz)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument("--tenant", default="loadgen")
    parser.add_argument(
        "--chunk-seconds",
        type=float,
        default=3_600.0,
        help="wire chunk window (default: 1 hour)",
    )
    args = parser.parse_args(argv)

    batch = load_packets_npz(args.capture)
    with ServeClient(args.host, args.port) as client:
        stats = drive(
            client,
            args.tenant,
            chunk_payloads(batch, args.chunk_seconds),
        )
    rate = stats.throughput
    p50, p99 = stats.ack_p50, stats.ack_p99
    print(
        f"sent {stats.chunks} chunks / {stats.packets:,} packets "
        f"({stats.bytes_sent:,} bytes) in {stats.seconds:.2f}s"
        + (f" — {rate:,.0f} pkt/s" if rate else "")
        + (
            f", ack p50 {p50 * 1e3:.1f}ms / p99 {p99 * 1e3:.1f}ms"
            if p50 is not None and p99 is not None
            else ""
        )
        + (f", {stats.retries} back-pressure retries" if stats.retries else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
