"""Per-tenant write-ahead chunk journal (``repro.serve.journal``).

The serve layer's durability gap before this module: ``POST
/tenants/<id>/chunks`` answered 202 the moment the chunk entered the
in-memory queue, and detector state only persisted at snapshot
boundaries — a crash lost every queued chunk plus everything folded
since the last snapshot.  The journal closes that gap the way real
telescope archives do (Merit's darknet has two decades of data because
ingest never drops what it acked): every accepted chunk's wire bytes
are appended to a per-tenant append-only log *before* the ack is sent,
and on boot the suffix not yet covered by an engine snapshot is
replayed through the normal fold path.

Layout: ``<snapshot_dir>/<tenant_id>/journal/segment-<firstseq>.wal``
— append-only segment files, rotated at a byte budget and deleted once
a verified engine snapshot covers their whole sequence range.  Each
record is framed as::

    magic (4) | seq u64 | length u64 | blake2b-128(payload) | payload

so a reader can always tell a complete record from a torn tail: a
short header, bad magic, truncated payload, or digest mismatch ends
the segment scan and the damaged remainder is quarantined into
:class:`~repro.core.telemetry.RunHealth` — never half-parsed.

Durability is a policy, not a constant (``fsync``):

* ``always`` — fsync after every record; an ack survives power loss.
* ``batch`` (default) — the record reaches the kernel (``write`` +
  flush) before the ack, and fsync is amortized over every
  :data:`BATCH_FSYNC_RECORDS` records and each rotation; an ack
  survives any *process* crash (SIGKILL, OOM) but a power cut may
  lose the tail since the last fsync.
* ``off`` — never fsync; an ack survives a process crash only as far
  as the page cache does.

A journal append that fails (disk full, EIO) raises
:class:`JournalError`; the server turns that into 429 back-pressure
with a degraded ``/health`` flag instead of lying with a 202 it could
not make durable.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

#: Directory under a tenant's snapshot dir that holds the segments.
JOURNAL_DIR_NAME = "journal"

#: Per-record framing marker; bump on any layout change so a reader
#: never half-parses a record written by a different version.
RECORD_MAGIC = b"RJ1\x00"

#: magic (4s) | sequence (u64) | payload length (u64) | blake2b-128.
_HEADER = struct.Struct("<4sQQ16s")

#: Accepted ``fsync`` policies (see module docstring).
FSYNC_MODES = ("always", "batch", "off")

#: ``fsync="batch"``: records between forced fsyncs.
BATCH_FSYNC_RECORDS = 64

#: Rotate the active segment once it holds this many bytes.
DEFAULT_SEGMENT_BYTES = 32 * 2**20

#: Sanity bound on a framed payload; a length field above this is
#: treated as tail corruption, not an instruction to allocate.
MAX_RECORD_BYTES = 256 * 2**20

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"


class JournalError(RuntimeError):
    """An append could not be made durable (disk full, EIO, ...).

    The serve layer maps this to 429 back-pressure: a chunk whose
    journal record failed must not be acked with 202.
    """


def chunk_digest(payload: bytes) -> bytes:
    """The 128-bit blake2b content digest journal records carry."""
    return hashlib.blake2b(payload, digest_size=16).digest()


@dataclass(frozen=True)
class JournalRecord:
    """One replayable chunk: its tenant sequence number, content
    digest, and the exact npz wire bytes the client POSTed."""

    seq: int
    digest: bytes
    payload: bytes


@dataclass
class _Segment:
    """Index entry for one closed (no longer written) segment."""

    path: Path
    first_seq: int
    last_seq: int


def segment_path(directory: Path, first_seq: int) -> Path:
    """Filename of the segment whose first record is ``first_seq``."""
    return directory / f"{_SEGMENT_PREFIX}{first_seq:016d}{_SEGMENT_SUFFIX}"


def pack_record(seq: int, payload: bytes, digest: Optional[bytes] = None) -> bytes:
    """Frame one record (header + payload) for appending."""
    if digest is None:
        digest = chunk_digest(payload)
    return _HEADER.pack(RECORD_MAGIC, seq, len(payload), digest) + payload


def scan_segment(
    path: Union[str, Path], health=None
) -> Tuple[List[JournalRecord], int, bool]:
    """Read one segment: ``(records, good_bytes, torn)``.

    Reads records until end-of-file or the first damaged one.  Damage
    — a short header, wrong magic, an absurd length, a truncated
    payload, or a digest mismatch — ends the scan: ``good_bytes`` is
    the offset of the last complete record's end, ``torn`` is True,
    and the damaged tail is quarantined on ``health`` (a
    :class:`~repro.core.telemetry.RunHealth`) as ``<path>@+<offset>``.
    Nothing is raised: a damaged journal degrades, it never poisons.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, False
    records: List[JournalRecord] = []
    offset = 0
    torn = False
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            torn = True
            break
        magic, seq, length, digest = _HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC or length > MAX_RECORD_BYTES:
            torn = True
            break
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length or chunk_digest(payload) != digest:
            torn = True
            break
        records.append(JournalRecord(seq=seq, digest=digest, payload=payload))
        offset = start + length
    if torn and health is not None:
        health.record_quarantine(f"{path}@+{offset}")
    return records, offset, torn


class ChunkJournal:
    """The write-ahead log of one tenant's accepted chunks.

    Thread-safe: appends, truncation and replay serialize on one lock
    (the server already serializes appends per tenant, but the journal
    does not rely on it).  Opening an existing directory scans every
    segment, truncates a torn tail off the last one (quarantining it
    on ``health``), and resumes sequence numbering after the last
    intact record — so a restarted writer never interleaves new
    records with unreadable garbage.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        health=None,
    ):
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"fsync must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.health = health
        self._lock = threading.Lock()
        self._file = None
        self._active: Optional[_Segment] = None
        self._active_bytes = 0
        self._records_since_fsync = 0
        #: observability counters (mirrored into ServeStats by the
        #: tenant layer; nothing here affects results).
        self.appends = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.truncated_segments = 0
        self._segments: List[_Segment] = []
        self.next_seq = 1
        self._recover()

    # ------------------------------------------------------------------
    # Boot-time recovery
    # ------------------------------------------------------------------
    def _segment_paths(self) -> List[Path]:
        return sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def _recover(self) -> None:
        """Index existing segments; truncate a torn final tail."""
        paths = self._segment_paths()
        for index, path in enumerate(paths):
            records, good_bytes, torn = scan_segment(path, health=self.health)
            if torn and index == len(paths) - 1:
                # The damaged suffix was a write in flight when the
                # process (or the machine) died: drop it so new
                # appends never land after unreadable bytes.
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
            if not records:
                if good_bytes == 0:
                    path.unlink(missing_ok=True)
                continue
            self._segments.append(
                _Segment(
                    path=path,
                    first_seq=records[0].seq,
                    last_seq=records[-1].seq,
                )
            )
            self.next_seq = max(self.next_seq, records[-1].seq + 1)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_segment(self, first_seq: int) -> None:
        path = segment_path(self.directory, first_seq)
        self._file = open(path, "ab")
        self._active = _Segment(
            path=path, first_seq=first_seq, last_seq=first_seq - 1
        )
        self._active_bytes = 0

    def _fsync_now(self) -> None:
        self._file.flush()
        import os

        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._records_since_fsync = 0

    def _close_active(self, *, final_fsync: bool = True) -> None:
        if self._file is None:
            return
        try:
            if final_fsync and self.fsync != "off":
                self._fsync_now()
            else:
                self._file.flush()
        finally:
            self._file.close()
            self._file = None
        if self._active is not None and self._active.last_seq >= self._active.first_seq:
            self._segments.append(self._active)
        self._active = None
        self._active_bytes = 0

    def append(self, payload: bytes, digest: Optional[bytes] = None) -> int:
        """Durably append one chunk; returns its sequence number.

        The record reaches at least the kernel (write + flush) before
        this returns, and fsync runs per the configured policy — so a
        202 sent after ``append`` is crash-durable at that policy's
        level.  Any ``OSError`` on the way (disk full, EIO) is wrapped
        in :class:`JournalError` after best-effort cleanup; the caller
        must *not* ack the chunk.
        """
        if not payload:
            raise ValueError("cannot journal an empty chunk payload")
        if digest is None:
            digest = chunk_digest(payload)
        with self._lock:
            seq = self.next_seq
            record = pack_record(seq, payload, digest)
            try:
                if self._file is None:
                    self._open_segment(seq)
                self._file.write(record)
                self._file.flush()
                if self.fsync == "always":
                    self._fsync_now()
                elif self.fsync == "batch":
                    self._records_since_fsync += 1
                    if self._records_since_fsync >= BATCH_FSYNC_RECORDS:
                        self._fsync_now()
            except OSError as exc:
                raise JournalError(
                    f"journal append failed in {self.directory}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            self.next_seq = seq + 1
            self._active.last_seq = seq
            self._active_bytes += len(record)
            self.appends += 1
            self.bytes_appended += len(record)
            if self._active_bytes >= self.segment_bytes:
                self._close_active()
            return seq

    def sync(self) -> None:
        """Force an fsync of the active segment (no-op when closed)."""
        with self._lock:
            if self._file is not None and self.fsync != "off":
                try:
                    self._fsync_now()
                except OSError as exc:
                    raise JournalError(
                        f"journal fsync failed in {self.directory}: {exc}"
                    ) from exc

    def close(self) -> None:
        """Flush and close the active segment (the journal survives)."""
        with self._lock:
            self._close_active(final_fsync=self.fsync != "off")

    # ------------------------------------------------------------------
    # Replay and truncation
    # ------------------------------------------------------------------
    def replay(self, after: int = 0) -> Iterator[JournalRecord]:
        """Yield every intact record with ``seq > after``, in order.

        Reads from disk (segment by segment), so it sees exactly what
        a crash-restarted process would; damaged tails are quarantined
        via ``health`` and skipped.  Safe to call on a live journal —
        the active segment is flushed first.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
            paths = self._segment_paths()
        for path in paths:
            records, _, _ = scan_segment(path, health=self.health)
            for record in records:
                if record.seq > after:
                    yield record

    def truncate_through(self, seq: int) -> int:
        """Delete segments whose whole sequence range is ``<= seq``.

        Called once a verified engine snapshot covers sequence ``seq``:
        those records can never be needed by a replay again.  The
        active segment rotates (closes) first if it is fully covered,
        so a long-lived tenant's journal stays bounded by one snapshot
        interval.  Returns the number of segment files deleted.
        """
        with self._lock:
            if (
                self._active is not None
                and self._active.last_seq >= self._active.first_seq
                and self._active.last_seq <= seq
            ):
                self._close_active()
            deleted = 0
            kept: List[_Segment] = []
            for segment in self._segments:
                if segment.last_seq <= seq:
                    segment.path.unlink(missing_ok=True)
                    deleted += 1
                else:
                    kept.append(segment)
            self._segments = kept
            self.truncated_segments += deleted
            return deleted

    def ensure_next_seq(self, seq: int) -> None:
        """Raise the next sequence number (never lowers it).

        After a restore whose snapshot covered — and truncation then
        deleted — every segment, the reopened journal would restart at
        1 while the engine is far ahead; new records must continue
        *past* everything already folded or replay would skip them.
        """
        with self._lock:
            if seq > self.next_seq:
                self.next_seq = seq

    def reset(self) -> None:
        """Delete every segment and restart numbering (new tenant)."""
        with self._lock:
            self._file_close_quietly()
            for path in self._segment_paths():
                path.unlink(missing_ok=True)
            self._segments = []
            self._active = None
            self._active_bytes = 0
            self._records_since_fsync = 0
            self.next_seq = 1

    def _file_close_quietly(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Observability counters for ``/health``."""
        with self._lock:
            segments = len(self._segments) + (
                1
                if self._active is not None
                and self._active.last_seq >= self._active.first_seq
                else 0
            )
            return {
                "appends": self.appends,
                "bytes_appended": self.bytes_appended,
                "fsyncs": self.fsyncs,
                "truncated_segments": self.truncated_segments,
                "segments": segments,
                "next_seq": self.next_seq,
                "fsync": self.fsync,
            }
