"""Acknowledged research-organization scanners.

These model the seemingly benign probers of the paper's §2.D: research
outfits that disclose their intent (the "ACKed" list) and continuously
survey the Internet — Censys-style daily sweeps of the full address
space on web/TLS/SSH ports, mostly with ZMap.  A minority of research
orgs also run broad port-coverage studies, which is why the paper finds
research institutions among the Definition-3 origins.

Although only a few percent of AH *IPs* are acknowledged scanners, their
relentless full-coverage cadence makes them ~20-25% of all AH *packets*
(Table 6) — the session schedules below reproduce that asymmetry.
"""

from __future__ import annotations

import numpy as np

from repro.fingerprint import Tool
from repro.packet import Protocol
from repro.scanners.base import ScanMode, ScanSession, Scanner
from repro.scanners.ports import RESEARCH_PROFILE, PortProfile


def build_org_scanners(
    rng: np.random.Generator,
    org: str,
    sources: np.ndarray,
    duration: float,
    *,
    day_seconds: float = 86_400.0,
    profile: PortProfile = RESEARCH_PROFILE,
    period_days_low: int = 2,
    period_days_high: int = 6,
    coverage_low: float = 0.35,
    coverage_high: float = 0.9,
    vertical_fraction: float = 0.1,
    seed_base: int = 0,
) -> list:
    """Build the scanner fleet of one acknowledged organization.

    Each source IP runs periodic coverage scans of the same service for
    the whole scenario (research surveys are long-lived, unlike the
    short miscreant careers).  With probability ``vertical_fraction`` a
    source instead runs port-coverage studies (VERTICAL sessions).

    Args:
        rng: population random stream.
        org: organization slug recorded on each scanner (drives the
            acknowledged-scanner matching in :mod:`repro.core.validation`).
        sources: the org's scanner addresses.
        duration: scenario length in seconds.
        day_seconds: length of a simulated day.
        profile: service mix for horizontal surveys.
        period_days_low/high: survey cadence bounds.
        coverage_low/high: coverage bounds per survey.
        vertical_fraction: share of sources doing port studies.
        seed_base: offset for per-scanner emission seeds.

    Returns:
        List of :class:`Scanner` with ``org`` set.
    """
    total_days = max(int(duration // day_seconds), 1)
    scanners = []
    for i, src in enumerate(sources):
        sessions = []
        if rng.random() < vertical_fraction:
            # Port-coverage study: many ports on sampled targets.
            n_ports = int(rng.integers(1_000, 6_000))
            ports = np.sort(
                rng.choice(
                    np.arange(1, 65536, dtype=np.int64),
                    size=n_ports,
                    replace=False,
                )
            ).astype(np.uint16)
            for day in range(0, total_days, int(rng.integers(3, 7))):
                span = rng.uniform(0.4, 0.9) * day_seconds
                start = day * day_seconds + rng.uniform(
                    0.0, day_seconds - span
                )
                sessions.append(
                    ScanSession(
                        start=start,
                        duration=span,
                        ports=ports,
                        proto=Protocol.TCP_SYN,
                        tool=Tool.ZMAP,
                        mode=ScanMode.VERTICAL,
                        n_targets=int(rng.uniform(3e5, 1.5e6)),
                    )
                )
        else:
            port, proto = profile.sample(rng)
            period = int(rng.integers(period_days_low, period_days_high + 1))
            for day in range(int(rng.integers(0, period)), total_days, period):
                coverage = rng.uniform(coverage_low, coverage_high)
                span = rng.uniform(0.3, 0.9) * day_seconds
                start = day * day_seconds + rng.uniform(
                    0.0, day_seconds - span
                )
                sessions.append(
                    ScanSession(
                        start=start,
                        duration=span,
                        ports=np.array([port], dtype=np.uint16),
                        proto=proto,
                        tool=Tool.ZMAP,
                        mode=ScanMode.COVERAGE,
                        coverage=float(coverage),
                    )
                )
        if not sessions:
            continue
        scanners.append(
            Scanner(
                src=int(src),
                behavior="research",
                sessions=sessions,
                org=org,
                seed=seed_base + i,
            )
        )
    return scanners


def build_moderate_org_scanners(
    rng: np.random.Generator,
    org: str,
    sources: np.ndarray,
    duration: float,
    *,
    day_seconds: float = 86_400.0,
    seed_base: int = 0,
) -> list:
    """Research sources whose cadence stays below the AH thresholds.

    Not every acknowledged scanner is aggressive; these sources run
    occasional small surveys (a few percent coverage), providing the
    ACKed population that the AH detection legitimately does *not*
    flag.
    """
    scanners = []
    for i, src in enumerate(sources):
        port, proto = RESEARCH_PROFILE.sample(rng)
        span = rng.uniform(0.2, 0.8) * day_seconds
        start = rng.uniform(0.0, max(duration - span, 1.0))
        session = ScanSession(
            start=start,
            duration=span,
            ports=np.array([port], dtype=np.uint16),
            proto=proto,
            tool=Tool.ZMAP,
            mode=ScanMode.COVERAGE,
            coverage=float(rng.uniform(0.005, 0.05)),
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="research-moderate",
                sessions=[session],
                org=org,
                seed=seed_base + i,
            )
        )
    return scanners
