"""Many-port ("vertical") scanners — the Definition-3 population.

The paper's third definition flags sources contacting an extreme number
of distinct darknet ports per day (threshold 6,542 ports/day in 2021,
57,410 in 2022 — close to the full port space, reflecting the shift
toward exhaustive port coverage documented by Izhikevich et al.).  Two
tiers are generated:

* *omniscanners* probing tens of thousands of ports on sampled targets,
  which clear the Definition-3 threshold;
* *multiport* scanners probing tens-to-hundreds of ports, which fill
  the middle of the daily-port-count ECDF without qualifying.
"""

from __future__ import annotations

import numpy as np

from repro.fingerprint import Tool
from repro.packet import Protocol
from repro.scanners.base import ScanMode, ScanSession, Scanner


def _random_port_set(
    rng: np.random.Generator, low: int, high: int
) -> np.ndarray:
    """A random set of distinct ports with size drawn in [low, high]."""
    count = int(rng.integers(low, high + 1))
    ports = rng.choice(np.arange(1, 65536, dtype=np.int64), size=count, replace=False)
    return np.sort(ports).astype(np.uint16)


def build_omniscanners(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    port_count_low: int = 2_000,
    port_count_high: int = 10_000,
    targets_low: float = 5e5,
    targets_high: float = 2e6,
    days_active_mean: float = 4.0,
    day_seconds: float = 86_400.0,
    seed_base: int = 0,
) -> list:
    """Exhaustive-port scanners clearing the Definition-3 threshold.

    Each active day gets one VERTICAL session probing every port of the
    scanner's (large) port set on a fresh sample of targets, so the
    per-day distinct-port count equals the port-set size.
    """
    scanners = []
    total_days = max(int(duration // day_seconds), 1)
    for i, src in enumerate(sources):
        ports = _random_port_set(rng, port_count_low, port_count_high)
        n_days = min(max(1, int(rng.poisson(days_active_mean))), total_days)
        days = rng.choice(total_days, size=n_days, replace=False)
        tool = Tool.MASSCAN if rng.random() < 0.6 else Tool.OTHER
        sessions = []
        for day in days:
            n_targets = int(
                np.exp(rng.uniform(np.log(targets_low), np.log(targets_high)))
            )
            span = rng.uniform(0.3, 0.95) * day_seconds
            start = day * day_seconds + rng.uniform(0.0, day_seconds - span)
            sessions.append(
                ScanSession(
                    start=start,
                    duration=span,
                    ports=ports,
                    proto=Protocol.TCP_SYN,
                    tool=tool,
                    mode=ScanMode.VERTICAL,
                    n_targets=n_targets,
                )
            )
        # Some omniscanners also sweep one service horizontally (they
        # first enumerate responsive hosts, then port-scan them), which
        # puts them in the Definition-1 population as well — the paper's
        # small D1&D3 intersection.
        if rng.random() < 0.3:
            day = int(days[0])
            span = rng.uniform(0.2, 0.6) * day_seconds
            sessions.append(
                ScanSession(
                    start=day * day_seconds + rng.uniform(0.0, day_seconds - span),
                    duration=span,
                    ports=np.array([80], dtype=np.uint16),
                    proto=Protocol.TCP_SYN,
                    tool=tool,
                    mode=ScanMode.COVERAGE,
                    coverage=float(rng.uniform(0.15, 0.5)),
                )
            )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="omniscanner",
                sessions=sessions,
                seed=seed_base + i,
            )
        )
    return scanners


def build_multiport_scanners(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    port_count_low: int = 5,
    port_count_high: int = 400,
    targets_low: float = 1e5,
    targets_high: float = 2e6,
    seed_base: int = 0,
) -> list:
    """Moderate vertical scanners that fill the ECDF between the
    single-port mass and the omniscanner tail."""
    scanners = []
    for i, src in enumerate(sources):
        ports = _random_port_set(rng, port_count_low, port_count_high)
        span = rng.uniform(0.02, 0.3) * duration
        start = rng.uniform(0.0, max(duration - span, 1.0))
        n_targets = int(
            np.exp(rng.uniform(np.log(targets_low), np.log(targets_high)))
        )
        session = ScanSession(
            start=start,
            duration=span,
            ports=ports,
            proto=Protocol.TCP_SYN,
            tool=Tool.OTHER,
            mode=ScanMode.VERTICAL,
            n_targets=n_targets,
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="multiport",
                sessions=[session],
                seed=seed_base + i,
            )
        )
    return scanners
