"""Port/service popularity profiles for the synthetic scanner mix.

The paper's Figure 4 ranks the top-25 ports targeted by aggressive
hitters: Redis (6379/TCP) and Telnet (23/TCP) lead, SSH ranks third,
only four UDP services appear, ICMP echo completes the set, and 20 of
the top 25 ports recur across both years.  TCP/445 — prominent in
Richter et al. — is notably *absent* from AH traffic and is instead
associated with small scans.  These tables encode that structure for
the scanner population builders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.packet import Protocol

#: Human-readable service names for table/figure labels.
SERVICE_NAMES: dict = {
    (6379, Protocol.TCP_SYN): "Redis",
    (23, Protocol.TCP_SYN): "Telnet",
    (22, Protocol.TCP_SYN): "SSH",
    (80, Protocol.TCP_SYN): "HTTP",
    (443, Protocol.TCP_SYN): "HTTPS",
    (8080, Protocol.TCP_SYN): "HTTP-alt",
    (2323, Protocol.TCP_SYN): "Telnet-alt",
    (3389, Protocol.TCP_SYN): "RDP",
    (8443, Protocol.TCP_SYN): "HTTPS-alt",
    (81, Protocol.TCP_SYN): "HTTP-81",
    (5555, Protocol.TCP_SYN): "ADB",
    (8088, Protocol.TCP_SYN): "HTTP-8088",
    (8081, Protocol.TCP_SYN): "HTTP-8081",
    (1433, Protocol.TCP_SYN): "MSSQL",
    (3306, Protocol.TCP_SYN): "MySQL",
    (5900, Protocol.TCP_SYN): "VNC",
    (9200, Protocol.TCP_SYN): "Elasticsearch",
    (8545, Protocol.TCP_SYN): "Ethereum-RPC",
    (52869, Protocol.TCP_SYN): "UPnP-SOAP",
    (37215, Protocol.TCP_SYN): "HW-HG532",
    (2375, Protocol.TCP_SYN): "Docker",
    (6380, Protocol.TCP_SYN): "Redis-alt",
    (5432, Protocol.TCP_SYN): "PostgreSQL",
    (9530, Protocol.TCP_SYN): "XMeye",
    (8728, Protocol.TCP_SYN): "MikroTik-API",
    (445, Protocol.TCP_SYN): "SMB",
    (123, Protocol.UDP): "NTP",
    (53, Protocol.UDP): "DNS",
    (161, Protocol.UDP): "SNMP",
    (5060, Protocol.UDP): "SIP",
    (0, Protocol.ICMP_ECHO): "ICMP Echo",
}


@dataclass(frozen=True)
class PortProfile:
    """A weighted catalogue of (port, protocol) scan targets."""

    entries: tuple  # of (port, Protocol, weight)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("profile must have at least one entry")

    def ports(self) -> np.ndarray:
        """The catalogue's ports as uint16."""
        return np.array([e[0] for e in self.entries], dtype=np.uint16)

    def protocols(self) -> list:
        """Per-entry protocols, aligned with :meth:`ports`."""
        return [e[1] for e in self.entries]

    def weights(self) -> np.ndarray:
        """Normalized selection probabilities."""
        w = np.array([e[2] for e in self.entries], dtype=np.float64)
        return w / w.sum()

    def sample(self, rng: np.random.Generator) -> tuple:
        """Draw one (port, protocol) pair by weight."""
        idx = int(rng.choice(len(self.entries), p=self.weights()))
        port, proto, _ = self.entries[idx]
        return int(port), proto

    def sample_many(self, rng: np.random.Generator, count: int) -> list:
        """Draw ``count`` (port, protocol) pairs with replacement."""
        weights = self.weights()
        idx = rng.choice(len(self.entries), size=count, p=weights)
        return [(int(self.entries[i][0]), self.entries[i][1]) for i in idx]


def _tcp(port: int, weight: float) -> tuple:
    return (port, Protocol.TCP_SYN, weight)


def _udp(port: int, weight: float) -> tuple:
    return (port, Protocol.UDP, weight)


#: Aggressive-hitter target mix, 2021 flavor.  Weights approximate the
#: relative packet volumes of the paper's Figure 4 (Redis and Telnet on
#: top, SSH third, heavy-tailed thereafter).
AGGRESSIVE_PROFILE_2021 = PortProfile(
    entries=(
        _tcp(6379, 30.0),
        _tcp(23, 25.0),
        _tcp(22, 14.0),
        _tcp(80, 7.0),
        _tcp(443, 5.0),
        _tcp(8080, 5.0),
        _tcp(2323, 4.0),
        _tcp(3389, 3.5),
        _tcp(8443, 3.0),
        _tcp(81, 2.6),
        _tcp(5555, 2.3),
        _tcp(1433, 2.0),
        _tcp(3306, 1.8),
        _tcp(9200, 1.6),
        _tcp(8545, 1.5),
        _tcp(8088, 1.4),
        _tcp(8081, 1.3),
        _tcp(5900, 1.2),
        _tcp(52869, 1.1),
        _tcp(37215, 1.0),
        _udp(123, 1.3),
        _udp(53, 1.1),
        _udp(161, 0.9),
        _udp(5060, 0.8),
        (0, Protocol.ICMP_ECHO, 0.7),
    )
)

#: 2022 flavor: 20 of the 25 entries persist from 2021; the bottom TCP
#: tail rotates toward Docker/Redis-alt/PostgreSQL/XMeye/MikroTik.
AGGRESSIVE_PROFILE_2022 = PortProfile(
    entries=(
        _tcp(6379, 32.0),
        _tcp(23, 24.0),
        _tcp(22, 14.0),
        _tcp(80, 7.0),
        _tcp(443, 5.0),
        _tcp(8080, 5.0),
        _tcp(2323, 4.2),
        _tcp(3389, 3.5),
        _tcp(8443, 3.0),
        _tcp(81, 2.6),
        _tcp(5555, 2.3),
        _tcp(1433, 2.0),
        _tcp(3306, 1.8),
        _tcp(9200, 1.6),
        _tcp(8545, 1.5),
        _tcp(2375, 1.4),
        _tcp(6380, 1.3),
        _tcp(5432, 1.2),
        _tcp(9530, 1.1),
        _tcp(8728, 1.0),
        _udp(123, 1.3),
        _udp(53, 1.1),
        _udp(161, 0.9),
        _udp(5060, 0.8),
        (0, Protocol.ICMP_ECHO, 0.7),
    )
)

#: Small-scan mix: the "under 10% of the darknet" population, where
#: TCP/445 lives (per Durumeric et al.'s small-scan association).
SMALL_SCAN_PROFILE = PortProfile(
    entries=(
        _tcp(445, 16.0),
        _tcp(23, 10.0),
        _tcp(80, 9.0),
        _tcp(22, 8.0),
        _tcp(8080, 6.0),
        _tcp(3389, 6.0),
        _tcp(139, 4.0),
        _tcp(135, 4.0),
        _tcp(25, 3.0),
        _tcp(110, 2.0),
        _tcp(587, 2.0),
        _tcp(1023, 2.0),
        _tcp(8291, 2.0),
        _tcp(5984, 1.5),
        _tcp(7547, 1.5),
        _tcp(2222, 1.5),
        _udp(1900, 2.0),
        _udp(11211, 1.5),
        _udp(389, 1.0),
        (0, Protocol.ICMP_ECHO, 2.0),
    )
)

#: Mirai-family ports and weights (Telnet-heavy, per Antonakakis et al.).
MIRAI_PORTS = np.array([23, 2323], dtype=np.uint16)
MIRAI_PORT_WEIGHTS = np.array([0.9, 0.1])

#: Ports favored by acknowledged research scanners (web/TLS/SSH heavy).
RESEARCH_PROFILE = PortProfile(
    entries=(
        _tcp(443, 14.0),
        _tcp(80, 12.0),
        _tcp(22, 8.0),
        _tcp(25, 1.5),
        _tcp(8080, 2.0),
        _tcp(21, 2.0),
        _tcp(3389, 2.0),
        _tcp(6379, 2.0),
        _tcp(23, 2.0),
        _tcp(9200, 1.5),
        _udp(53, 3.0),
        _udp(123, 2.0),
        _udp(443, 1.5),
        (0, Protocol.ICMP_ECHO, 2.0),
    )
)


def profile_for_year(year: int) -> PortProfile:
    """Aggressive profile keyed by calendar year (2021 vs 2022+)."""
    return AGGRESSIVE_PROFILE_2021 if year <= 2021 else AGGRESSIVE_PROFILE_2022


def service_label(port: int, proto: Protocol) -> str:
    """Label like ``'6379/TCP (Redis)'`` for figures and tables."""
    proto_name = {
        Protocol.TCP_SYN: "TCP",
        Protocol.UDP: "UDP",
        Protocol.ICMP_ECHO: "ICMP",
    }[proto]
    name = SERVICE_NAMES.get((port, proto))
    base = "ICMP Echo" if proto is Protocol.ICMP_ECHO else f"{port}/{proto_name}"
    return f"{base} ({name})" if name and proto is not Protocol.ICMP_ECHO else base
