"""Internet background radiation: small scans, misconfigurations,
DDoS backscatter and spoofed scans.

The darknet's source population is dominated by hosts that never come
near the aggressive thresholds: small scans covering well under 10% of
the dark space (where TCP/445 traffic lives, per Durumeric et al.),
misconfigured hosts that send a handful of stray packets, *backscatter*
from victims of spoofed-source DDoS attacks (SYN-ACK/RST replies that
land in the dark space), and scans launched with spoofed sources.  The
first two supply the body of the ECDFs that Definitions 2 and 3 cut
the tail from; the last two are the false-positive hazards the paper's
methodology is designed to resist (§7: "quality lists ... minimizing
false positives due to spoofing or misconfigurations").
"""

from __future__ import annotations

import numpy as np

from repro.fingerprint import Tool
from repro.scanners.base import ScanMode, ScanSession, Scanner
from repro.scanners.ports import SMALL_SCAN_PROFILE, PortProfile


def build_small_scanners(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    profile: PortProfile = SMALL_SCAN_PROFILE,
    coverage_low: float = 3e-4,
    coverage_high: float = 5e-2,
    seed_base: int = 0,
) -> list:
    """Single-session scans far below the dispersion threshold."""
    log_lo, log_hi = np.log(coverage_low), np.log(coverage_high)
    scanners = []
    for i, src in enumerate(sources):
        port, proto = profile.sample(rng)
        coverage = float(np.exp(rng.uniform(log_lo, log_hi)))
        span = rng.uniform(600.0, 0.02 * duration)
        start = rng.uniform(0.0, max(duration - span, 1.0))
        tool = Tool.ZMAP if rng.random() < 0.1 else Tool.OTHER
        session = ScanSession(
            start=start,
            duration=span,
            ports=np.array([port], dtype=np.uint16),
            proto=proto,
            tool=tool,
            mode=ScanMode.COVERAGE,
            coverage=coverage,
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="small-scan",
                sessions=[session],
                seed=seed_base + i,
            )
        )
    return scanners


def build_misconfigured_hosts(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    dark_ranges: np.ndarray,
    *,
    packets_mean: float = 3.0,
    seed_base: int = 0,
) -> list:
    """Hosts leaking a few stray packets toward specific dark addresses.

    A misconfigured host repeatedly contacts one wrong destination; the
    telescope only ever sees the hosts whose stray target happens to be
    dark.  We therefore materialize exactly that visible sub-population:
    each source targets a single address drawn from ``dark_ranges`` and
    sends roughly ``packets_mean`` packets to it.  These sources produce
    the one-packet-event mass real telescopes record, and contribute
    nothing to the other monitored networks (their targets are dark by
    construction).
    """
    from repro.net.prefix import sample_ranges
    from repro.packet import Protocol

    scanners = []
    targets = sample_ranges(rng, dark_ranges, len(sources))
    for i, (src, target) in enumerate(zip(sources, targets)):
        span = rng.uniform(60.0, max(0.05 * duration, 120.0))
        start = rng.uniform(0.0, max(duration - span, 1.0))
        port = int(rng.integers(1024, 65536))
        proto = Protocol.TCP_SYN if rng.random() < 0.7 else Protocol.UDP
        n_packets = max(1.0, rng.poisson(packets_mean))
        session = ScanSession(
            start=start,
            duration=span,
            ports=np.array([port], dtype=np.uint16),
            proto=proto,
            tool=Tool.OTHER,
            mode=ScanMode.RATE,
            rate_pps=n_packets / span,
            target_ranges=np.array(
                [[int(target), int(target) + 1]], dtype=np.int64
            ),
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="misconfig",
                sessions=[session],
                seed=seed_base + i,
            )
        )
    return scanners


def build_backscatter_victims(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    attack_pps_low: float = 2e5,
    attack_pps_high: float = 8e6,
    attack_minutes_low: float = 5.0,
    attack_minutes_high: float = 120.0,
    seed_base: int = 0,
) -> list:
    """Victims of spoofed-source DDoS attacks.

    An attacked server answers every spoofed SYN with a SYN-ACK toward
    the (uniformly random) forged source — so the telescope receives a
    slice of the victim's replies proportional to the dark fraction of
    the address space (the classic backscatter inference of Moore et
    al.).  Backscatter events can touch *many* distinct dark addresses
    at high rate — dispersion-level coverage! — which is precisely why
    the detection pipeline must key on scanning packet types only; see
    the ``build_events`` filter and the spoofing tests.
    """
    from repro.packet import Protocol

    scanners = []
    for i, src in enumerate(sources):
        span = rng.uniform(attack_minutes_low, attack_minutes_high) * 60.0
        span = min(span, duration * 0.5)
        start = rng.uniform(0.0, max(duration - span, 1.0))
        rate = float(
            np.exp(rng.uniform(np.log(attack_pps_low), np.log(attack_pps_high)))
        )
        # Victims answer on their service port; the reply's destination
        # port (the spoofed SYN's ephemeral source port) is modeled by
        # the session port for simplicity.
        port = int(rng.choice([80, 443, 53, 25565, 22]))
        proto = Protocol.TCP_SYNACK if rng.random() < 0.8 else Protocol.TCP_RST
        session = ScanSession(
            start=start,
            duration=span,
            ports=np.array([port], dtype=np.uint16),
            proto=proto,
            tool=Tool.OTHER,
            mode=ScanMode.RATE,
            rate_pps=rate,
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="backscatter-victim",
                sessions=[session],
                seed=seed_base + i,
            )
        )
    return scanners


class SpoofedScan:
    """A scan launched with forged, rotating source addresses.

    Each probe carries a different spoofed source, so the telescope
    records a crowd of one-packet "sources" — none of which can ever
    cross an aggressive threshold.  The object quacks like a
    :class:`Scanner` for the telescope's emission path; its nominal
    ``src`` is a sentinel (the true origin is unobservable, which is
    the point).
    """

    behavior = "spoofed-scan"
    org = None

    def __init__(
        self,
        *,
        start: float,
        duration: float,
        coverage: float,
        dport: int,
        spoof_ranges: np.ndarray,
        seed: int = 0,
    ):
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        self.src = 0  # sentinel: the true source is forged away
        self.start = start
        self.duration = duration
        self.coverage = coverage
        self.dport = dport
        self.spoof_ranges = spoof_ranges
        self.seed = seed
        self.sessions: list = []  # no genuine sessions to account

    def emit(self, view, window=None):
        """Probes into ``view`` with per-packet spoofed sources."""
        import zlib

        from repro.net.prefix import (
            ranges_size,
            sample_distinct_offsets,
            sample_ranges,
        )
        from repro.packet import PacketBatch, Protocol
        from repro.scanners.base import _offsets_to_addrs

        rng = np.random.default_rng(
            (self.seed, zlib.crc32(view.name.encode("utf-8")))
        )
        w0, w1 = self.start, self.start + self.duration
        if window is not None:
            w0, w1 = max(w0, window[0]), min(w1, window[1])
            if w0 >= w1:
                return PacketBatch.empty()
        fraction = (w1 - w0) / self.duration
        view_ranges = view.ranges()
        size = ranges_size(view_ranges)
        k = int(rng.binomial(size, min(self.coverage * fraction, 1.0)))
        if k == 0:
            return PacketBatch.empty()
        offsets = sample_distinct_offsets(rng, size, k)
        dst = _offsets_to_addrs(view_ranges, offsets)
        src = sample_ranges(rng, self.spoof_ranges, k)
        ts = w0 + rng.random(k) * (w1 - w0)
        return PacketBatch(
            ts=ts,
            src=src,
            dst=dst,
            dport=np.full(k, self.dport, dtype=np.uint16),
            proto=np.full(k, Protocol.TCP_SYN.value, dtype=np.uint8),
            ipid=rng.integers(0, 65536, size=k, dtype=np.uint16),
        )

    def cost_estimate(self, view=None, *, kind="packets", day_seconds=86_400.0):
        """Predicted work for the shard planner (same protocol as
        :meth:`repro.scanners.base.Scanner.cost_estimate`).

        A spoofed scan emits roughly ``coverage × view size`` one-packet
        sources, so its generation/detection cost tracks the view
        aperture; it never produces flow cells, so its flow cost is the
        per-scanner fixed floor.
        """
        if kind == "flows":
            from repro.scanners.base import FLOW_SCANNER_BASE_COST

            return FLOW_SCANNER_BASE_COST
        from repro.net.prefix import ranges_size
        from repro.scanners.base import full_ipv4_ranges

        size = ranges_size(
            view.ranges() if view is not None else full_ipv4_ranges()
        )
        return 1.0 + self.coverage * float(size)

    def count_rows(self, view, window, day_seconds, rng):
        """Spoofed probes never join the per-source flow accounting."""
        return []

    def count_columns(self, view, window, day_seconds, rng):
        """Columnar twin of :meth:`count_rows` — also empty."""
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint16),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.int64),
        )

    def accumulate_stream(self, accumulator, view, window, rng, rate_scale=1.0):
        """No per-source stream attribution for forged addresses."""
        return None
