"""Mirai-family IoT botnet scanners.

Mirai bots probe TCP/23 (and TCP/2323 for ~10% of probes) continuously
for their infection lifetime, selecting targets uniformly at random with
replacement (Antonakakis et al. 2017).  Two tiers are modeled:

* *aggressive* bots with high packet rates whose lifetime activity
  touches >=10% of the dark space — part of the AH population, and the
  source of the "Mirai" GreyNoise tag dominance in Table 9;
* *small* bots whose footprint stays below every AH threshold — part of
  the Internet background radiation that fills the event ECDF body.
"""

from __future__ import annotations

import numpy as np

from repro.fingerprint import Tool
from repro.packet import Protocol
from repro.scanners.base import ScanMode, ScanSession, Scanner
from repro.scanners.ports import MIRAI_PORTS, MIRAI_PORT_WEIGHTS


def _build_bots(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    rate_low: float,
    rate_high: float,
    lifetime_low: float,
    lifetime_high: float,
    behavior: str,
    seed_base: int,
) -> list:
    scanners = []
    for i, src in enumerate(sources):
        lifetime = rng.uniform(lifetime_low, lifetime_high)
        start = rng.uniform(0.0, max(duration - lifetime, 1.0))
        # Log-uniform rates: botnet populations span orders of magnitude.
        rate = float(np.exp(rng.uniform(np.log(rate_low), np.log(rate_high))))
        session = ScanSession(
            start=start,
            duration=lifetime,
            ports=MIRAI_PORTS.copy(),
            proto=Protocol.TCP_SYN,
            tool=Tool.OTHER,
            mode=ScanMode.RATE,
            rate_pps=rate,
            port_weights=MIRAI_PORT_WEIGHTS.copy(),
        )
        scanners.append(
            Scanner(
                src=int(src),
                behavior=behavior,
                sessions=[session],
                seed=seed_base + i,
            )
        )
    return scanners


def build_aggressive_bots(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    rate_low: float = 4_000.0,
    rate_high: float = 25_000.0,
    lifetime_low: float = 0.8 * 86_400,
    lifetime_high: float = 4.0 * 86_400,
    seed_base: int = 0,
) -> list:
    """High-rate bots that qualify as aggressive hitters.

    At the default rates a bot sends ``rate * lifetime`` probes over the
    whole IPv4 space; the expected fraction of a darknet it touches is
    ``1 - exp(-rate * lifetime / 2^32)``, which exceeds 10% for all
    draws above ~4,000 pps over a day.
    """
    return _build_bots(
        rng,
        sources,
        duration,
        rate_low=rate_low,
        rate_high=rate_high,
        lifetime_low=lifetime_low,
        lifetime_high=lifetime_high,
        behavior="mirai",
        seed_base=seed_base,
    )


def build_small_bots(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    rate_low: float = 20.0,
    rate_high: float = 600.0,
    lifetime_low: float = 0.05 * 86_400,
    lifetime_high: float = 1.0 * 86_400,
    seed_base: int = 0,
) -> list:
    """Low-rate bots that stay below the aggressive thresholds."""
    return _build_bots(
        rng,
        sources,
        duration,
        rate_low=rate_low,
        rate_high=rate_high,
        lifetime_low=lifetime_low,
        lifetime_high=lifetime_high,
        behavior="mirai-small",
        seed_base=seed_base,
    )
