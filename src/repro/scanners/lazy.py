"""Lazy, windowed population emission.

:func:`repro.scanners.base.emit_population` materializes every packet a
population sends into a view, concatenates, and time-sorts — an
O(total capture) memory wall at the head of every run.  This module
replaces it for the streaming pipeline: :class:`PopulationEmitter`
walks an epoch-aligned chunk grid and, per window, generates only the
packets landing inside it.

Three properties make this both cheap and exact:

* **Interval index** — cursors are sorted by first activity and admitted
  to the active set only while a session overlaps the current window, so
  a window's cost scales with concurrent scanners, not population size.
* **Span caching** — each session is generated in the deterministic
  spans of :meth:`Scanner._session_plan`; a span is generated once when
  the sweep first reaches it, sliced forward window by window, and freed
  as soon as the sweep passes its end.  Peak memory is O(active spans),
  never O(capture).
* **Bit-identity** — span RNG streams are keyed by (scanner, view,
  session, span), so the concatenation of all window batches equals
  ``emit_population(scanners, view, window).sorted_by_time()`` exactly:
  same addresses, ports, timestamps, and fingerprints.  Spans stay in
  generation order, window slices are boolean masks that preserve it,
  and the only sort in the chain is the stable per-window one — which
  therefore breaks equal-timestamp ties in generation (= population)
  order, exactly as the materialized path's single global stable sort
  does.  Seed derivation is itself batched: each window derives the
  streams of every span its newly admitted cursors will ever need in
  one vectorized pass (:mod:`repro.scanners.streams`).

Scanner-like objects without sessions (e.g.
:class:`repro.scanners.background.SpoofedScan`) are handled by a
fallback cursor that calls their ``emit`` once — with the same overall
window the batch path would pass, because their windowed emission is a
fresh realization rather than a slice — and serves time-slices of the
result.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import math

import numpy as np

from repro.packet import PacketBatch
from repro.scanners.base import View, view_rng_key
from repro.scanners.streams import derive_span_words, generator_from_words


class _ScannerCursor:
    """Forward-only window reader over one scanner's sessions."""

    __slots__ = (
        "scanner",
        "start",
        "end",
        "_view_ranges",
        "_view_key",
        "_state",
        "_words",
        "_pairs",
        "_alive",
        "_single",
        "_single_batch",
        "spans_derived",
        "spans_emitted",
    )

    def __init__(self, scanner, view_ranges: np.ndarray, view_key: int):
        self.scanner = scanner
        self.start = min(s.start for s in scanner.sessions)
        self.end = max(s.end for s in scanner.sessions)
        self._view_ranges = view_ranges
        self._view_key = view_key
        #: session index -> [plan, span_idx, cached span batch | None]
        self._state: dict = {}
        #: (session, span) -> pre-derived ``generate_state`` words;
        #: ``None`` until the cursor is primed.
        self._words: dict = None
        #: session indices not yet swept past, ascending.
        self._alive: list = None
        #: fast-path plan for the dominant one-session/one-span shape:
        #: ``(index, session, s0, s1, inter, hit_space, target_space)``.
        self._single = None
        self._single_batch = None
        #: RNG streams derived for this cursor (pre-dedup unit).
        self.spans_derived = 0
        #: spans that actually produced packets.
        self.spans_emitted = 0

    def prime_keys(self, t0: float) -> list:
        """Plan every session and key all upcoming span streams.

        Runs once, when the sweep admits the cursor: the session plans
        (target intersections, span grids) are computed eagerly and
        every span ending after ``t0`` contributes one RNG key row.
        The caller derives the rows — batched across *all* cursors the
        window admits (:func:`derive_span_words` pays off per batch,
        and most scanners only have a handful of spans each) — and
        hands the words back through :meth:`accept_words`.
        """
        pairs = []
        rows = []
        seed, view_key = self.scanner.seed, self._view_key
        for index, session in enumerate(self.scanner.sessions):
            if session.end <= t0:
                continue
            plan = self.scanner._session_plan(session, self._view_ranges)
            self._state[index] = [plan, 0, None]
            if plan[1] == 0:
                continue
            for span_idx, (_, s1) in enumerate(plan[3]):
                if s1 > t0:
                    pairs.append((index, span_idx))
                    rows.append((seed, view_key, index, span_idx))
        self._alive = sorted(self._state)
        self._pairs = pairs
        self.spans_derived = len(pairs)
        if len(self._state) == 1:
            # Nearly every scanner is one live session with one span —
            # pin the plan so `take` can skip the generic session/span
            # loops entirely.
            (index,) = self._state
            inter, hit_space, target_space, spans = self._state[index][0]
            if hit_space == 0 or not spans:
                self._single = ()
            elif len(spans) == 1:
                s0, s1 = spans[0]
                self._single = (
                    index, self.scanner.sessions[index],
                    s0, s1, inter, hit_space, target_space,
                )
        return rows

    def accept_words(self, words: np.ndarray) -> None:
        """Store bulk-derived RNG words for the keys of ``prime_keys``."""
        self._words = dict(zip(self._pairs, words))
        del self._pairs

    def _span_rng(self, index: int, span_idx: int):
        words = self._words.pop((index, span_idx), None)
        if words is None:
            # A span the priming pass didn't key (already swept past at
            # admission, or a cursor driven without priming) — derive
            # the identical stream the scalar way.
            return None
        return generator_from_words(words)

    def _sorted_span(self, gen, cut_by_window: bool) -> tuple:
        """Generation output as a column tuple, span-sorted if sliced.

        A window edge cutting the span means it will be served as
        slices: stable-sort it once at generation (ties keep generation
        order) and every slice is then a free view.  Spans fully inside
        a window skip the sort and are handed over in generation order
        — either way the per-window stable sort downstream sees ties in
        generation order, exactly as the materialized path's single
        global stable sort over generation order does.
        """
        if len(gen):
            self.spans_emitted += 1
        if not cut_by_window:
            return gen.ts, gen.src, gen.dst, gen.dport, gen.proto, gen.ipid
        order = np.argsort(gen.ts, kind="stable")
        return (
            gen.ts[order], gen.src[order], gen.dst[order],
            gen.dport[order], gen.proto[order], gen.ipid[order],
        )

    def take(self, t0: float, t1: float, parts: list) -> None:
        """Append column tuples with ``t0 <= ts < t1`` onto ``parts``.

        Parts are raw ``(ts, src, dst, dport, proto, ipid)`` array
        tuples in (session, span) order — the emitter builds one
        :class:`PacketBatch` per window from all cursors' parts, so no
        per-slice batch objects are constructed or validated on the hot
        path.

        Must be called with non-decreasing windows; spans the sweep has
        passed are freed and cannot be revisited.
        """
        if self._words is None:
            self.accept_words(derive_span_words(self.prime_keys(t0)))
        single = self._single
        if single is not None:
            if not single:
                return
            index, session, s0, s1, inter, hit_space, target_space = single
            if s0 >= t1 or s1 <= t0:
                return
            batch = self._single_batch
            sliced = s0 < t0 or s1 > t1
            if batch is None:
                batch = self._sorted_span(
                    self.scanner._generate_span(
                        session, index, 0, s0, s1,
                        inter, hit_space, target_space, self._view_key,
                        rng=self._span_rng(index, 0),
                    ),
                    sliced,
                )
            ts = batch[0]
            if sliced:
                # Sorted by construction: a span revisited across
                # windows was cut at generation (s1 > t1 then, s0 < t0
                # now), so `_sorted_span` already ordered it.
                i0, i1 = ts.searchsorted(
                    [max(s0, t0), min(s1, t1)], side="left"
                )
                if i0 < i1:
                    cut = slice(int(i0), int(i1))
                    parts.append((
                        ts[cut], batch[1][cut], batch[2][cut],
                        batch[3][cut], batch[4][cut], batch[5][cut],
                    ))
            elif len(ts):
                parts.append(batch)
            if s1 <= t1:
                self._single = ()
                self._single_batch = None
            else:
                self._single_batch = batch
            return
        still_alive = []
        sessions = self.scanner.sessions
        for index in self._alive:
            session = sessions[index]
            if session.end <= t0:
                self._state.pop(index, None)
                continue
            still_alive.append(index)
            if session.start >= t1:
                continue
            state = self._state[index]
            inter, hit_space, target_space, spans = state[0]
            if hit_space == 0:
                continue
            span_idx, batch = state[1], state[2]
            while span_idx < len(spans):
                s0, s1 = spans[span_idx]
                if s1 <= t0:
                    span_idx += 1
                    batch = None
                    continue
                if s0 >= t1:
                    break
                sliced = s0 < t0 or s1 > t1
                if batch is None:
                    batch = self._sorted_span(
                        self.scanner._generate_span(
                            session, index, span_idx, s0, s1,
                            inter, hit_space, target_space, self._view_key,
                            rng=self._span_rng(index, span_idx),
                        ),
                        sliced,
                    )
                ts = batch[0]
                if sliced:
                    i0, i1 = ts.searchsorted(
                        [max(s0, t0), min(s1, t1)], side="left"
                    )
                    if i0 < i1:
                        cut = slice(int(i0), int(i1))
                        parts.append((
                            ts[cut], batch[1][cut], batch[2][cut],
                            batch[3][cut], batch[4][cut], batch[5][cut],
                        ))
                elif len(ts):
                    parts.append(batch)
                if s1 <= t1:
                    span_idx += 1
                    batch = None
                else:
                    break
            state[1], state[2] = span_idx, batch
        self._alive = still_alive


class _FallbackCursor:
    """Cursor for duck-typed scanners without :class:`ScanSession` lists.

    Their ``emit`` is called exactly once, with the same overall window
    the materializing batch path passes (their windowed emission is a
    fresh realization, not a slice of the full one), and the sorted
    result is sliced forward.  Memory is bounded by that one emission,
    held only while the object is active.
    """

    __slots__ = (
        "scanner", "start", "end", "_view", "_window", "_batch",
        "spans_derived", "spans_emitted",
    )

    def __init__(self, scanner, view: View, window: Optional[tuple]):
        self.scanner = scanner
        start = getattr(scanner, "start", None)
        duration = getattr(scanner, "duration", None)
        if start is not None and duration is not None:
            self.start, self.end = float(start), float(start + duration)
        elif window is not None:
            self.start, self.end = window
        else:
            raise ValueError(
                "scanner without sessions needs start/duration attributes "
                "or an explicit overall window"
            )
        self._view = view
        self._window = window
        self._batch: Optional[PacketBatch] = None
        #: one ``emit`` call is one realized stream (the fallback has
        #: no span grid to pre-derive against).
        self.spans_derived = 0
        self.spans_emitted = 0

    def take(self, t0: float, t1: float, parts: list) -> None:
        if self._batch is None:
            self._batch = self.scanner.emit(
                self._view, self._window
            ).sorted_by_time()
            self.spans_derived = 1
            self.spans_emitted = 1 if len(self._batch) else 0
        i0, i1 = np.searchsorted(self._batch.ts, [t0, t1], side="left")
        part = self._batch.select(slice(int(i0), int(i1)))
        if len(part):
            parts.append(
                (part.ts, part.src, part.dst,
                 part.dport, part.proto, part.ipid)
            )


class PopulationEmitter:
    """Stream a population's capture as time-sorted window batches.

    Iterating yields ``(start, end, PacketBatch)`` tuples on an
    epoch-aligned ``chunk_seconds`` grid (the same grid
    ``PacketBatch.iter_time_chunks`` uses), including empty windows.
    Concatenating every batch reproduces
    ``emit_population(scanners, view, window).sorted_by_time()``
    bit-identically.

    Args:
        scanners: population in emission order (order is part of the
            tie-breaking contract and must match the batch path).
        view: the monitored address region.
        chunk_seconds: window length of the grid.
        window: optional overall [start, end) clip — the scenario
            window in simulation runs.
    """

    def __init__(
        self,
        scanners: Sequence,
        view: View,
        chunk_seconds: float,
        window: Optional[tuple] = None,
    ):
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        self.view = view
        self.chunk_seconds = float(chunk_seconds)
        self.window = window
        view_ranges = view.ranges()
        view_key = view_rng_key(view)
        cursors = []
        for position, scanner in enumerate(scanners):
            if getattr(scanner, "sessions", None):
                cursor = _ScannerCursor(scanner, view_ranges, view_key)
            else:
                cursor = _FallbackCursor(scanner, view, window)
            if window is not None:
                if cursor.start >= window[1] or cursor.end <= window[0]:
                    continue
            cursors.append((position, cursor))
        #: cursors sorted by first activity; admitted by the sweep.
        self._pending = sorted(
            cursors, key=lambda item: (item[1].start, item[0])
        )

    @property
    def spans_derived(self) -> int:
        """RNG span streams keyed so far (pre-dedup derivation units).

        Grows as the sweep admits cursors; read after iteration for the
        population total.  Always >= :attr:`spans_emitted` — a derived
        span whose generation lands entirely outside the view (or
        produces zero packets) is derived work without emitted packets.
        """
        return sum(cursor.spans_derived for _, cursor in self._pending)

    @property
    def spans_emitted(self) -> int:
        """Derived spans that actually produced packets."""
        return sum(cursor.spans_emitted for _, cursor in self._pending)

    def span(self) -> Optional[tuple]:
        """Overall [start, end) the emitter will cover, or ``None``."""
        if not self._pending:
            return None
        lo = self._pending[0][1].start
        hi = max(cursor.end for _, cursor in self._pending)
        if self.window is not None:
            lo, hi = max(lo, self.window[0]), min(hi, self.window[1])
        if lo >= hi:
            return None
        return lo, hi

    def __iter__(self) -> Iterator[tuple]:
        covered = self.span()
        if covered is None:
            return
        lo, hi = covered
        cs = self.chunk_seconds
        first_edge = math.floor(lo / cs) * cs
        pending = list(self._pending)
        next_pending = 0
        active: dict = {}
        i = 0
        while True:
            w0 = first_edge + i * cs
            if w0 >= hi:
                break
            w1 = w0 + cs
            t0, t1 = max(w0, lo), min(w1, hi)
            admitted = []
            while (
                next_pending < len(pending)
                and pending[next_pending][1].start < t1
            ):
                position, cursor = pending[next_pending]
                active[position] = cursor
                if isinstance(cursor, _ScannerCursor):
                    admitted.append(cursor)
                next_pending += 1
            if admitted:
                # One vectorized seed derivation across every cursor
                # this window admits — most scanners have only a few
                # spans, so per-cursor batches would be too small to
                # amortize anything.
                rows = []
                bounds = [0]
                for cursor in admitted:
                    rows.extend(cursor.prime_keys(t0))
                    bounds.append(len(rows))
                words = derive_span_words(rows)
                for cursor, b0, b1 in zip(admitted, bounds, bounds[1:]):
                    cursor.accept_words(words[b0:b1])
            parts = []
            finished = []
            for position in sorted(active):
                cursor = active[position]
                cursor.take(t0, t1, parts)
                if cursor.end <= t1:
                    finished.append(position)
            for position in finished:
                del active[position]
            if not parts:
                batch = PacketBatch.empty()
            elif len(parts) == 1:
                batch = PacketBatch(*parts[0])
            else:
                batch = PacketBatch(
                    *(
                        np.concatenate([p[col] for p in parts])
                        for col in range(6)
                    )
                )
            yield w0, w1, batch.sorted_by_time()
            if not active and next_pending >= len(pending):
                break
            i += 1
