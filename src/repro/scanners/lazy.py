"""Lazy, windowed population emission.

:func:`repro.scanners.base.emit_population` materializes every packet a
population sends into a view, concatenates, and time-sorts — an
O(total capture) memory wall at the head of every run.  This module
replaces it for the streaming pipeline: :class:`PopulationEmitter`
walks an epoch-aligned chunk grid and, per window, generates only the
packets landing inside it.

Three properties make this both cheap and exact:

* **Interval index** — cursors are sorted by first activity and admitted
  to the active set only while a session overlaps the current window, so
  a window's cost scales with concurrent scanners, not population size.
* **Span caching** — each session is generated in the deterministic
  spans of :meth:`Scanner._session_plan`; a span is generated once when
  the sweep first reaches it, sliced forward window by window, and freed
  as soon as the sweep passes its end.  Peak memory is O(active spans),
  never O(capture).
* **Bit-identity** — span RNG streams are keyed by (scanner, view,
  session, span), so the concatenation of all window batches equals
  ``emit_population(scanners, view, window).sorted_by_time()`` exactly:
  same addresses, ports, timestamps, and fingerprints.  Every sort in
  the chain is stable — spans are stable-sorted once when generated,
  window slices keep that order, and the per-window sort ties break in
  cursor (= population) order — so even equal-timestamp ties break
  exactly as the materialized path's single global stable sort would.

Scanner-like objects without sessions (e.g.
:class:`repro.scanners.background.SpoofedScan`) are handled by a
fallback cursor that calls their ``emit`` once — with the same overall
window the batch path would pass, because their windowed emission is a
fresh realization rather than a slice — and serves time-slices of the
result.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import math

import numpy as np

from repro.packet import PacketBatch
from repro.scanners.base import View, view_rng_key


class _ScannerCursor:
    """Forward-only window reader over one scanner's sessions."""

    __slots__ = ("scanner", "start", "end", "_view_ranges", "_view_key", "_state")

    def __init__(self, scanner, view_ranges: np.ndarray, view_key: int):
        self.scanner = scanner
        self.start = min(s.start for s in scanner.sessions)
        self.end = max(s.end for s in scanner.sessions)
        self._view_ranges = view_ranges
        self._view_key = view_key
        #: session index -> [plan, span_idx, cached span batch | None]
        self._state: dict = {}

    def take(self, t0: float, t1: float) -> list:
        """Batches with ``t0 <= ts < t1``, in (session, span) order.

        Must be called with non-decreasing windows; spans the sweep has
        passed are freed and cannot be revisited.
        """
        parts = []
        for index, session in enumerate(self.scanner.sessions):
            if session.end <= t0:
                self._state.pop(index, None)
                continue
            if session.start >= t1:
                continue
            state = self._state.get(index)
            if state is None:
                plan = self.scanner._session_plan(session, self._view_ranges)
                state = [plan, 0, None]
                self._state[index] = state
            inter, hit_space, target_space, spans = state[0]
            if hit_space == 0:
                continue
            span_idx, batch = state[1], state[2]
            while span_idx < len(spans):
                s0, s1 = spans[span_idx]
                if s1 <= t0:
                    span_idx += 1
                    batch = None
                    continue
                if s0 >= t1:
                    break
                if batch is None:
                    # Stable-sort each span once at generation time:
                    # equal timestamps keep their generation order, so
                    # cheap searchsorted slices below still reproduce
                    # the tie order of the materialized path's global
                    # stable sort (ties only exist *within* a span —
                    # spans tile the session half-open, so timestamps
                    # never collide across span boundaries).
                    batch = self.scanner._generate_span(
                        session, index, span_idx, s0, s1,
                        inter, hit_space, target_space, self._view_key,
                    ).sorted_by_time()
                c0, c1 = max(s0, t0), min(s1, t1)
                if c0 > s0 or c1 < s1:
                    i0, i1 = np.searchsorted(batch.ts, [c0, c1], side="left")
                    part = (
                        batch.select(slice(int(i0), int(i1)))
                        if i0 < i1
                        else None
                    )
                else:
                    part = batch
                if part is not None and len(part):
                    parts.append(part)
                if s1 <= t1:
                    span_idx += 1
                    batch = None
                else:
                    break
            state[1], state[2] = span_idx, batch
        return parts


class _FallbackCursor:
    """Cursor for duck-typed scanners without :class:`ScanSession` lists.

    Their ``emit`` is called exactly once, with the same overall window
    the materializing batch path passes (their windowed emission is a
    fresh realization, not a slice of the full one), and the sorted
    result is sliced forward.  Memory is bounded by that one emission,
    held only while the object is active.
    """

    __slots__ = ("scanner", "start", "end", "_view", "_window", "_batch")

    def __init__(self, scanner, view: View, window: Optional[tuple]):
        self.scanner = scanner
        start = getattr(scanner, "start", None)
        duration = getattr(scanner, "duration", None)
        if start is not None and duration is not None:
            self.start, self.end = float(start), float(start + duration)
        elif window is not None:
            self.start, self.end = window
        else:
            raise ValueError(
                "scanner without sessions needs start/duration attributes "
                "or an explicit overall window"
            )
        self._view = view
        self._window = window
        self._batch: Optional[PacketBatch] = None

    def take(self, t0: float, t1: float) -> list:
        if self._batch is None:
            self._batch = self.scanner.emit(
                self._view, self._window
            ).sorted_by_time()
        i0, i1 = np.searchsorted(self._batch.ts, [t0, t1], side="left")
        part = self._batch.select(slice(int(i0), int(i1)))
        return [part] if len(part) else []


class PopulationEmitter:
    """Stream a population's capture as time-sorted window batches.

    Iterating yields ``(start, end, PacketBatch)`` tuples on an
    epoch-aligned ``chunk_seconds`` grid (the same grid
    ``PacketBatch.iter_time_chunks`` uses), including empty windows.
    Concatenating every batch reproduces
    ``emit_population(scanners, view, window).sorted_by_time()``
    bit-identically.

    Args:
        scanners: population in emission order (order is part of the
            tie-breaking contract and must match the batch path).
        view: the monitored address region.
        chunk_seconds: window length of the grid.
        window: optional overall [start, end) clip — the scenario
            window in simulation runs.
    """

    def __init__(
        self,
        scanners: Sequence,
        view: View,
        chunk_seconds: float,
        window: Optional[tuple] = None,
    ):
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        self.view = view
        self.chunk_seconds = float(chunk_seconds)
        self.window = window
        view_ranges = view.ranges()
        view_key = view_rng_key(view)
        cursors = []
        for position, scanner in enumerate(scanners):
            if getattr(scanner, "sessions", None):
                cursor = _ScannerCursor(scanner, view_ranges, view_key)
            else:
                cursor = _FallbackCursor(scanner, view, window)
            if window is not None:
                if cursor.start >= window[1] or cursor.end <= window[0]:
                    continue
            cursors.append((position, cursor))
        #: cursors sorted by first activity; admitted by the sweep.
        self._pending = sorted(
            cursors, key=lambda item: (item[1].start, item[0])
        )

    def span(self) -> Optional[tuple]:
        """Overall [start, end) the emitter will cover, or ``None``."""
        if not self._pending:
            return None
        lo = self._pending[0][1].start
        hi = max(cursor.end for _, cursor in self._pending)
        if self.window is not None:
            lo, hi = max(lo, self.window[0]), min(hi, self.window[1])
        if lo >= hi:
            return None
        return lo, hi

    def __iter__(self) -> Iterator[tuple]:
        covered = self.span()
        if covered is None:
            return
        lo, hi = covered
        cs = self.chunk_seconds
        first_edge = math.floor(lo / cs) * cs
        pending = list(self._pending)
        next_pending = 0
        active: dict = {}
        i = 0
        while True:
            w0 = first_edge + i * cs
            if w0 >= hi:
                break
            w1 = w0 + cs
            t0, t1 = max(w0, lo), min(w1, hi)
            while (
                next_pending < len(pending)
                and pending[next_pending][1].start < t1
            ):
                position, cursor = pending[next_pending]
                active[position] = cursor
                next_pending += 1
            parts = []
            finished = []
            for position in sorted(active):
                cursor = active[position]
                parts.extend(cursor.take(t0, t1))
                if cursor.end <= t1:
                    finished.append(position)
            for position in finished:
                del active[position]
            yield w0, w1, PacketBatch.concat(parts).sorted_by_time()
            if not active and next_pending >= len(pending):
                break
            i += 1
