"""Aggressive single-port sweepers (the Definition-1/2 backbone).

These model the miscreant "horizontal" scanners that enumerate a large
fraction of IPv4 on one service at a time — the population that
dominates the paper's address-dispersion and packet-volume definitions.
Most run Masscan or ZMap (their fingerprints are prominent in Figure 4);
the remainder use custom stacks ("Other").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fingerprint import Tool
from repro.scanners.base import ScanMode, ScanSession, Scanner
from repro.scanners.ports import PortProfile, profile_for_year

#: Tool mixture for non-acknowledged sweepers.
_TOOL_MIX = ((Tool.MASSCAN, 0.5), (Tool.ZMAP, 0.2), (Tool.OTHER, 0.3))


def _pick_tool(rng: np.random.Generator) -> Tool:
    r = rng.random()
    acc = 0.0
    for tool, weight in _TOOL_MIX:
        acc += weight
        if r < acc:
            return tool
    return Tool.OTHER


def build_sweepers(
    rng: np.random.Generator,
    sources: np.ndarray,
    duration: float,
    *,
    year: int = 2022,
    profile: Optional[PortProfile] = None,
    coverage_low: float = 0.05,
    coverage_high: float = 1.0,
    sessions_mean: float = 2.5,
    heavy_fraction: float = 0.02,
    heavy_sessions_mean: float = 30.0,
    seed_base: int = 0,
) -> list:
    """Build aggressive sweep scanners for the given source addresses.

    Each scanner gets a short "career" window inside the scenario and a
    Poisson-ish number of single-port coverage sessions.  Coverage is
    drawn log-uniformly from ``[coverage_low, coverage_high]`` so some
    scans fall just under the 10% dispersion threshold — that is what
    makes Definitions 1 and 2 overlap strongly without being identical,
    as the paper observes (Jaccard ~0.8).

    Args:
        rng: population random stream.
        sources: distinct source addresses.
        duration: scenario length in seconds.
        year: selects the port-popularity profile flavor.
        profile: explicit profile override.
        coverage_low / coverage_high: coverage draw bounds.
        sessions_mean: mean sessions per scanner (at least one).
        seed_base: offset for per-scanner emission seeds.

    Returns:
        List of :class:`Scanner`.
    """
    profile = profile or profile_for_year(year)
    log_lo, log_hi = np.log(coverage_low), np.log(coverage_high)
    scanners = []
    for i, src in enumerate(sources):
        # A small "monster" tier scans relentlessly for the whole
        # scenario — these few sources drive the Zipf-like packet
        # concentration of Figure 6 (the paper: the top 1% of AH carry
        # over 25% of AH traffic on a typical day).
        heavy = rng.random() < heavy_fraction
        if heavy:
            career_len = rng.uniform(0.6, 1.0) * duration
            n_sessions = max(8, int(rng.poisson(heavy_sessions_mean)))
            session_log_lo = np.log(max(coverage_low, 0.4))
        else:
            # Careers are short (one to a few days): miscreant scanner
            # IPs churn quickly (DHCP reassignment, cloud instance
            # rotation), which is why the paper's daily-new AH
            # population is a large fraction of the active one and
            # carries most of the packets.
            career_len = rng.uniform(0.02, 0.12) * duration
            n_sessions = max(1, int(rng.poisson(sessions_mean)))
            session_log_lo = log_lo
        career_start = rng.uniform(0.0, max(duration - career_len, 1.0))
        tool = _pick_tool(rng)
        # A quarter of sweepers retransmit each probe 2-3 times (SYN
        # retries / verification probes), decoupling an event's packet
        # count from its address dispersion — the reason Definitions 1
        # and 2 overlap strongly without coinciding (Jaccard ~0.8).
        probes_per_target = int(rng.choice([1, 1, 2, 2, 3]))
        sessions = []
        for _ in range(n_sessions):
            port, proto = profile.sample(rng)
            coverage = float(np.exp(rng.uniform(session_log_lo, log_hi)))
            span = rng.uniform(0.02, 0.4) * career_len
            # Sessions are front-loaded (Beta(1,3)) within the career:
            # fresh scanner IPs do most of their probing right away,
            # which concentrates packets on the source's first darknet
            # day — the reason the paper's *daily* AH carry most of the
            # per-day packet volume (Figure 3, right).
            start = career_start + rng.beta(1.0, 3.0) * max(career_len - span, 1.0)
            sessions.append(
                ScanSession(
                    start=start,
                    duration=max(span, 60.0),
                    ports=np.array([port], dtype=np.uint16),
                    proto=proto,
                    tool=tool,
                    mode=ScanMode.COVERAGE,
                    coverage=coverage,
                    probes_per_target=probes_per_target,
                )
            )
        scanners.append(
            Scanner(
                src=int(src),
                behavior="masscan-sweep",
                sessions=sessions,
                seed=seed_base + i,
            )
        )
    return scanners
