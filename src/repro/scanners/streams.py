"""Bulk derivation of per-span RNG streams.

Every generation span draws from ``np.random.default_rng((seed,
view_key, session, span))`` — four small integers seeding a
``SeedSequence`` that in turn seeds a PCG64.  Constructing that chain
per span costs ~16µs of pure Python/Cython dispatch, which the
profiler shows is a dominant fixed cost of windowed emission: a lazy
sweep touches tens of thousands of spans per run, one at a time.

This module re-implements the exact entropy-mixing and seeding
arithmetic as vectorized numpy over *batches* of key tuples, so all
span streams intersecting a window are derived in one pass:

* :func:`seedseq_state64` — ``SeedSequence(keys).generate_state(4,
  uint64)`` for ``n`` key rows at once (the pool-mixing constants and
  order follow numpy's ``bit_generator.pyx`` exactly);
* :func:`derive_span_words` — the same, dispatching tiny batches and
  multi-word keys to ``SeedSequence`` itself;
* :func:`generator_from_words` / :func:`span_generators` — ready
  ``np.random.Generator`` objects: PCG64 is seeded *from the
  precomputed words* through a minimal
  :class:`~numpy.random.bit_generator.ISeedSequence` shim, so the
  128-bit ``srandom`` step runs in numpy's C code, not Python.

The output is **bit-identical** to the per-span ``default_rng`` chain
— pinned by ``tests/test_stream_derivation.py`` over random key
tuples and by the golden event digests downstream.  Key values over
32 bits expand to multiple entropy words exactly as ``SeedSequence``
splits them; rows are grouped by word layout so mixed-width batches
still vectorize.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from numpy.random.bit_generator import ISeedSequence

#: SeedSequence pool/mixing constants (numpy/random/bit_generator.pyx).
_XSHIFT = np.uint32(16)
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_POOL_SIZE = 4

#: Below this many rows the scalar ``SeedSequence`` path is cheaper
#: than spinning up ~60 numpy array operations on near-empty arrays.
_BATCH_THRESHOLD = 4


def seedseq_state64(entropy: np.ndarray, n_words: int = 4) -> np.ndarray:
    """Vectorized ``SeedSequence(row).generate_state(n_words, uint64)``.

    Args:
        entropy: ``(n, k)`` uint32 array; row ``i`` plays the role of a
            ``k``-tuple of single-word entropy values.
        n_words: 64-bit output words per row.

    Returns:
        ``(n, n_words)`` uint64 array, row ``i`` bit-identical to
        ``np.random.SeedSequence(tuple(row_i)).generate_state(n_words,
        np.uint64)``.
    """
    entropy = np.ascontiguousarray(entropy, dtype=np.uint32)
    n, k = entropy.shape
    with np.errstate(over="ignore"):
        hash_const = np.full(n, _INIT_A, dtype=np.uint32)

        def hashmix(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _MULT_A
            value = value * hash_const
            return value ^ (value >> _XSHIFT)

        def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            result = x * _MIX_MULT_L - y * _MIX_MULT_R
            return result ^ (result >> _XSHIFT)

        # Hash the first pool_size entropy words in, then cross-mix the
        # whole pool, then fold any remaining words into every pool
        # word — the exact order of ``SeedSequence.mix_entropy``.
        pool = [
            hashmix(
                entropy[:, i].copy()
                if i < k
                else np.zeros(n, dtype=np.uint32)
            )
            for i in range(_POOL_SIZE)
        ]
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
        for i_src in range(_POOL_SIZE, k):
            for i_dst in range(_POOL_SIZE):
                pool[i_dst] = mix(
                    pool[i_dst], hashmix(entropy[:, i_src].copy())
                )

        hash_b = np.full(n, _INIT_B, dtype=np.uint32)
        out32 = np.empty((n, n_words * 2), dtype=np.uint32)
        for i_dst in range(n_words * 2):
            value = pool[i_dst % _POOL_SIZE] ^ hash_b
            hash_b = hash_b * _MULT_B
            value = value * hash_b
            out32[:, i_dst] = value ^ (value >> _XSHIFT)
    wide = out32.astype(np.uint64)
    # uint32 pairs combine little-endian into uint64 words (the
    # ``state.view(np.uint64)`` step of ``generate_state``).
    return wide[:, 0::2] | (wide[:, 1::2] << np.uint64(32))


class _PrecomputedSeed(ISeedSequence):
    """Hands PCG64 already-derived ``generate_state`` words.

    Registering as an ``ISeedSequence`` makes ``PCG64(shim)`` consume
    the words directly — the 128-bit ``srandom`` initialization then
    runs in numpy's C code, and no Python-side big-int arithmetic is
    needed anywhere.
    """

    __slots__ = ("words",)

    def __init__(self, words: np.ndarray):
        self.words = words

    def generate_state(self, n_words, dtype=np.uint32):
        words = self.words
        if np.dtype(dtype) != np.dtype(np.uint64) or n_words != len(words):
            raise NotImplementedError(
                "precomputed seed only serves its derived uint64 words"
            )
        return words


def _row_words(row: Sequence[int]) -> list:
    """A key tuple's uint32 entropy-word expansion.

    Mirrors ``SeedSequence``'s integer coercion exactly: each value
    contributes its 32-bit limbs little-endian (at least one word, so
    zero is one zero word).  Returns ``None`` for values outside the
    non-negative range ``SeedSequence`` accepts — those rows take the
    scalar path, which raises the library's own error.
    """
    words = []
    for value in row:
        value = int(value)
        if value < 0:
            return None
        if value == 0:
            words.append(0)
        while value:
            words.append(value & 0xFFFFFFFF)
            value >>= 32
    return words


def derive_span_words(keys: Sequence[Sequence[int]]) -> np.ndarray:
    """``generate_state(4, uint64)`` words for many key tuples at once.

    Returns an ``(n, 4)`` uint64 array; row ``i`` equals
    ``np.random.SeedSequence(tuple(keys[i])).generate_state(4,
    np.uint64)``.  Rows are grouped by the length of their entropy-word
    expansion (seeds over 32 bits take two words, so real batches mix
    layouts) and each group is derived in one :func:`seedseq_state64`
    pass; tiny groups go through ``SeedSequence`` itself — same bits,
    just not vectorized.
    """
    n = len(keys)
    if n == 0:
        return np.empty((0, 4), dtype=np.uint64)
    out = np.empty((n, 4), dtype=np.uint64)
    groups: dict = {}
    scalar = []
    for i, row in enumerate(keys):
        words = _row_words(row)
        if words is None:
            scalar.append(i)
        else:
            groups.setdefault(len(words), []).append((i, words))
    for members in groups.values():
        if len(members) < _BATCH_THRESHOLD:
            scalar.extend(i for i, _ in members)
            continue
        idx = np.fromiter(
            (i for i, _ in members), dtype=np.intp, count=len(members)
        )
        entropy = np.array([w for _, w in members], dtype=np.uint32)
        out[idx] = seedseq_state64(entropy, 4)
    for i in scalar:
        out[i] = np.random.SeedSequence(
            tuple(int(v) for v in keys[i])
        ).generate_state(4, np.uint64)
    return out


def generator_from_words(words: np.ndarray) -> np.random.Generator:
    """A PCG64 ``Generator`` seeded from precomputed state words."""
    return np.random.Generator(np.random.PCG64(_PrecomputedSeed(words)))


def span_generators(
    keys: Sequence[Sequence[int]],
) -> List[np.random.Generator]:
    """One ``Generator`` per key tuple, derived in a single pass.

    Bit-identical to ``[np.random.default_rng(tuple(k)) for k in
    keys]`` — pinned by tests over random key tuples.
    """
    words = derive_span_words(keys)
    return [generator_from_words(words[i]) for i in range(len(words))]
