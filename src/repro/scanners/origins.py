"""Origin selection: which networks scanners come from.

Table 5 of the paper shows heavily skewed AH origins — a US cloud
provider tops every definition, Chinese ISPs/hosting and East-Asian ISPs
follow, with a long tail across ~200 countries.  ``OriginSampler``
reproduces that skew by assigning per-AS sampling weights from
(type, country) affinity rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.net.asn import ASType, AutonomousSystem
from repro.net.internet import Internet
from repro.net.prefix import PrefixSet

#: (AS type, country, weight) affinity rules for aggressive scanners.
#: ``None`` acts as a wildcard.  The trailing wildcard row gives every
#: network a small base rate, producing the long country tail.
AGGRESSIVE_AFFINITY: tuple = (
    (ASType.CLOUD, "US", 30.0),
    (ASType.ISP, "CN", 22.0),
    (ASType.CLOUD, "CN", 12.0),
    (ASType.HOSTING, "CN", 9.0),
    (ASType.ISP, "TW", 6.0),
    (ASType.ISP, "KR", 6.0),
    (ASType.ISP, "RU", 4.0),
    (ASType.ISP, "US", 4.0),
    (ASType.HOSTING, None, 3.0),
    (None, None, 1.0),
)

#: IoT botnets live in residential ISP space, East/South-East Asia heavy.
BOTNET_AFFINITY: tuple = (
    (ASType.ISP, "CN", 20.0),
    (ASType.ISP, "TW", 9.0),
    (ASType.ISP, "KR", 9.0),
    (ASType.ISP, "BR", 7.0),
    (ASType.ISP, "VN", 7.0),
    (ASType.ISP, "IN", 6.0),
    (ASType.ISP, "RU", 4.0),
    (ASType.ISP, None, 3.0),
    (None, None, 0.5),
)

#: Background noise (misconfigurations, small scans) is nearly uniform.
BACKGROUND_AFFINITY: tuple = ((None, None, 1.0),)

#: Research scanning concentrates in US cloud and education networks.
RESEARCH_AFFINITY: tuple = (
    (ASType.CLOUD, "US", 20.0),
    (ASType.EDU, "US", 8.0),
    (ASType.HOSTING, "DE", 4.0),
    (ASType.CLOUD, None, 2.0),
    (None, None, 0.1),
)


def _weight_for(system: AutonomousSystem, affinity: Sequence[tuple]) -> float:
    for as_type, country, weight in affinity:
        if as_type is not None and system.as_type is not as_type:
            continue
        if country is not None and system.country != country:
            continue
        return weight
    return 0.0


@dataclass
class OriginSampler:
    """Samples source ASes and host addresses for one scanner class.

    Two empirical regularities of scanner origins (paper Table 5) are
    baked in on top of the type/country affinity:

    * *Heavy-tailed AS concentration* — a handful of networks (one US
      cloud provider above all) originate a disproportionate share of
      scanners.  Each AS gets a deterministic lognormal popularity
      multiplier (keyed by its ASN) scaled by its announced size.
    * */24 clustering* — scanner addresses bunch into subnets (scanning
      farms, sequential cloud allocations): the paper finds ~5 AH IPs
      per /24 in the top origin.  New sources preferentially land in a
      /24 already used by the same AS.
    """

    internet: Internet
    affinity: Sequence[tuple]
    #: probability that a new source reuses an already-used /24 of its AS.
    subnet_reuse: float = 0.62
    #: sigma of the per-AS lognormal popularity multiplier.
    popularity_sigma: float = 1.3

    def __post_init__(self) -> None:
        systems = self.internet.registry.systems
        weights = np.empty(len(systems), dtype=np.float64)
        from repro.net.internet import FLAGSHIP_CLOUD_ORG

        for i, system in enumerate(systems):
            base = _weight_for(system, self.affinity)
            # Deterministic per-AS popularity: keyed by ASN so every
            # sampler (and every run) agrees on which networks are the
            # scanner havens.  The flagship cloud's popularity is pinned
            # high — cheap instances plus vast address space make it the
            # paper's perennial top origin.
            if system.org == FLAGSHIP_CLOUD_ORG:
                popularity = float(np.exp(2.0))
            else:
                popularity = np.random.default_rng(system.asn).lognormal(
                    0.0, self.popularity_sigma
                )
            weights[i] = base * popularity * np.sqrt(system.size)
        if weights.sum() <= 0:
            raise ValueError("affinity rules match no AS")
        self._weights = weights / weights.sum()
        self._prefix_sets = [PrefixSet(s.prefixes) for s in systems]
        self._used_slash24: dict = {}

    def sample_as_indexes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw AS indexes (into the registry) by affinity weight."""
        return rng.choice(len(self._weights), size=count, p=self._weights)

    def sample_sources(
        self,
        rng: np.random.Generator,
        count: int,
        used: Optional[set] = None,
    ) -> np.ndarray:
        """Draw ``count`` distinct scanner source addresses.

        Args:
            rng: random stream.
            count: number of sources needed.
            used: optional set of already-assigned addresses; sampled
                sources are added to it so callers can keep the whole
                population collision-free.

        Returns:
            ``uint32`` array of distinct addresses.
        """
        used = used if used is not None else set()
        out: list[int] = []
        guard = 0
        while len(out) < count:
            guard += 1
            if guard > 200:
                raise RuntimeError("could not find enough distinct sources")
            need = count - len(out)
            as_idx = self.sample_as_indexes(rng, need)
            for i in as_idx:
                addr = self._sample_one(rng, int(i))
                if addr in used:
                    continue
                used.add(addr)
                out.append(addr)
        return np.array(out, dtype=np.uint32)

    def _sample_one(self, rng: np.random.Generator, as_index: int) -> int:
        """One address in the AS, with /24 preferential attachment."""
        subnets = self._used_slash24.setdefault(as_index, [])
        if subnets and rng.random() < self.subnet_reuse:
            base24 = subnets[int(rng.integers(0, len(subnets)))]
            return int(base24 + rng.integers(0, 256))
        addr = int(self._prefix_sets[as_index].sample(rng, 1)[0])
        subnets.append(addr & ~0xFF)
        return addr
