"""The full synthetic scanner population a scenario simulates.

Mixes every archetype — aggressive sweepers, Mirai-tier botnets,
omniscanners, acknowledged research fleets and the background-radiation
mass — with origin skews matching the paper's Table 5, and assembles
the acknowledged-scanner registry from the research fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.labeling.acknowledged import AcknowledgedRegistry, default_org_specs
from repro.net.internet import Internet
from repro.scanners import background, masscan, mirai, omniscanner, research
from repro.scanners.origins import (
    AGGRESSIVE_AFFINITY,
    BACKGROUND_AFFINITY,
    BOTNET_AFFINITY,
    RESEARCH_AFFINITY,
    OriginSampler,
)


@dataclass(frozen=True)
class PopulationConfig:
    """Sizing knobs for one scenario's scanner population.

    The defaults are calibrated for the 28-day "scaled year" scenarios;
    tests use much smaller counts.
    """

    seed: int = 7
    duration: float = 28 * 86_400.0
    day_seconds: float = 86_400.0
    year: int = 2022
    n_sweepers: int = 550
    n_mirai_aggressive: int = 150
    n_mirai_small: int = 3_000
    n_omniscanners: int = 15
    omni_port_low: int = 2_000
    omni_port_high: int = 10_000
    omni_targets_low: float = 5e5
    omni_targets_high: float = 2e6
    n_multiport: int = 400
    n_small_scanners: int = 30_000
    n_misconfig: int = 25_000
    #: victims of spoofed-source DDoS attacks (backscatter noise; their
    #: SYN-ACK/RST replies reach the telescope but never form events).
    n_backscatter: int = 60
    #: scans launched with forged rotating sources (threshold-immune).
    n_spoofed_scans: int = 3
    acked_org_count: int = 36
    acked_fleet_scale: float = 2.5

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.day_seconds <= 0:
            raise ValueError("durations must be positive")


@dataclass
class ScannerPopulation:
    """All scanners of a scenario plus the intelligence registries."""

    scanners: list
    acked: AcknowledgedRegistry
    internet: Internet
    config: PopulationConfig
    by_behavior: Dict[str, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_behavior:
            for scanner in self.scanners:
                self.by_behavior.setdefault(scanner.behavior, []).append(scanner)

    def __len__(self) -> int:
        return len(self.scanners)

    def sources(self) -> np.ndarray:
        """All genuine scanner source addresses.

        Spoofed-scan pseudo-scanners carry the sentinel source 0 (their
        true origin is forged away) and are excluded.
        """
        return np.array(
            [s.src for s in self.scanners if int(s.src) != 0], dtype=np.uint32
        )

    def scanners_for(self, addresses) -> list:
        """Scanners whose source is in the given address collection."""
        wanted = {int(a) for a in addresses}
        return [s for s in self.scanners if int(s.src) in wanted]

    def ground_truth_aggressive(self) -> set:
        """Sources built to be aggressive (for recall diagnostics)."""
        out: set = set()
        for behavior in ("masscan-sweep", "mirai", "research", "omniscanner"):
            out |= {int(s.src) for s in self.by_behavior.get(behavior, [])}
        return out


def build_population(
    internet: Internet,
    dark_ranges: np.ndarray,
    config: Optional[PopulationConfig] = None,
) -> ScannerPopulation:
    """Construct the scanner population for one scenario.

    Args:
        internet: the synthetic address plan (sources are drawn from it).
        dark_ranges: the telescope's address ranges, needed so that the
            misconfiguration noise targets genuinely dark addresses.
        config: sizing knobs.

    Returns:
        The assembled :class:`ScannerPopulation`.
    """
    config = config or PopulationConfig()
    rng = np.random.default_rng(config.seed)
    used: set = set()

    aggressive_origins = OriginSampler(internet, AGGRESSIVE_AFFINITY)
    botnet_origins = OriginSampler(internet, BOTNET_AFFINITY)
    background_origins = OriginSampler(internet, BACKGROUND_AFFINITY)
    research_origins = OriginSampler(internet, RESEARCH_AFFINITY)

    scanners: list = []
    seed_base = config.seed * 1_000_003

    def next_seed_base(count: int) -> int:
        """Reserve a contiguous block of per-scanner emission seeds."""
        nonlocal seed_base
        base = seed_base
        seed_base += count
        return base

    # Aggressive single-port sweepers.
    sources = aggressive_origins.sample_sources(rng, config.n_sweepers, used)
    scanners += masscan.build_sweepers(
        rng,
        sources,
        config.duration,
        year=config.year,
        seed_base=next_seed_base(config.n_sweepers),
    )

    # Mirai-family bots, aggressive and small tiers.
    sources = botnet_origins.sample_sources(rng, config.n_mirai_aggressive, used)
    scanners += mirai.build_aggressive_bots(
        rng,
        sources,
        config.duration,
        seed_base=next_seed_base(config.n_mirai_aggressive),
    )
    sources = botnet_origins.sample_sources(rng, config.n_mirai_small, used)
    scanners += mirai.build_small_bots(
        rng,
        sources,
        config.duration,
        seed_base=next_seed_base(config.n_mirai_small),
    )

    # Vertical scanners: exhaustive and moderate tiers.
    sources = aggressive_origins.sample_sources(rng, config.n_omniscanners, used)
    scanners += omniscanner.build_omniscanners(
        rng,
        sources,
        config.duration,
        day_seconds=config.day_seconds,
        port_count_low=config.omni_port_low,
        port_count_high=config.omni_port_high,
        targets_low=config.omni_targets_low,
        targets_high=config.omni_targets_high,
        seed_base=next_seed_base(config.n_omniscanners),
    )
    sources = aggressive_origins.sample_sources(rng, config.n_multiport, used)
    scanners += omniscanner.build_multiport_scanners(
        rng,
        sources,
        config.duration,
        seed_base=next_seed_base(config.n_multiport),
    )

    # Background radiation.
    sources = background_origins.sample_sources(rng, config.n_small_scanners, used)
    scanners += background.build_small_scanners(
        rng,
        sources,
        config.duration,
        seed_base=next_seed_base(config.n_small_scanners),
    )
    sources = background_origins.sample_sources(rng, config.n_misconfig, used)
    scanners += background.build_misconfigured_hosts(
        rng,
        sources,
        config.duration,
        dark_ranges,
        seed_base=next_seed_base(config.n_misconfig),
    )

    # Spoofing hazards: DDoS backscatter and forged-source scans.  Both
    # reach the telescope; neither may ever enter an AH list — the
    # detection pipeline's false-positive guards are exercised on every
    # scenario run.
    if config.n_backscatter:
        sources = background_origins.sample_sources(
            rng, config.n_backscatter, used
        )
        scanners += background.build_backscatter_victims(
            rng,
            sources,
            config.duration,
            seed_base=next_seed_base(config.n_backscatter),
        )
    for j in range(config.n_spoofed_scans):
        start = rng.uniform(0.0, config.duration * 0.8)
        scanners.append(
            background.SpoofedScan(
                start=start,
                duration=rng.uniform(600.0, 6 * 3_600.0),
                coverage=float(rng.uniform(0.2, 0.9)),
                dport=int(rng.choice([23, 80, 445, 1433])),
                spoof_ranges=np.array(
                    [[0x10000000, 0xC0000000]], dtype=np.int64
                ),
                seed=next_seed_base(1) + j,
            )
        )

    # Acknowledged research fleets.
    orgs = default_org_specs(config.acked_org_count)
    fleets: Dict[str, np.ndarray] = {}
    for org in orgs:
        fleet_size = max(
            1,
            int(round(org.fleet_weight * config.acked_fleet_scale * rng.uniform(0.7, 1.3))),
        )
        fleet = research_origins.sample_sources(rng, fleet_size, used)
        fleets[org.slug] = fleet
        if org.aggressive:
            scanners += research.build_org_scanners(
                rng,
                org.slug,
                fleet,
                config.duration,
                day_seconds=config.day_seconds,
                seed_base=next_seed_base(fleet_size),
            )
        else:
            scanners += research.build_moderate_org_scanners(
                rng,
                org.slug,
                fleet,
                config.duration,
                day_seconds=config.day_seconds,
                seed_base=next_seed_base(fleet_size),
            )
    acked = AcknowledgedRegistry.build(orgs, fleets, rng)

    return ScannerPopulation(
        scanners=scanners, acked=acked, internet=internet, config=config
    )
