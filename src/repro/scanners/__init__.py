"""Scanner behavior models.

Each module builds :class:`~repro.scanners.base.Scanner` objects for one
archetype of Internet prober; :mod:`repro.scanners.population` mixes them
into the full synthetic scanner population a scenario simulates.
"""

from repro.scanners.base import (
    ScanMode,
    ScanSession,
    Scanner,
    View,
    full_ipv4_ranges,
)
from repro.scanners.population import PopulationConfig, ScannerPopulation, build_population

__all__ = [
    "PopulationConfig",
    "ScanMode",
    "ScanSession",
    "Scanner",
    "ScannerPopulation",
    "View",
    "build_population",
    "full_ipv4_ranges",
]
