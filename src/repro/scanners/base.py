"""Core scanner abstractions and the vantage-point emission math.

A :class:`Scanner` is one source IP with a list of :class:`ScanSession`
activities.  Sessions describe *Internet-wide* behavior (e.g. "cover 40%
of IPv4 on port 6379 over six hours"); the packets any particular
monitored network receives are derived analytically from the overlap
between the session's target space and that network's address ranges.

This "telescope sampling" construction is what makes the simulation
tractable: instead of materializing the billions of probes a real scan
sends, we draw only the packets that land inside a monitored view, with
exactly the right marginal distribution.  It also reproduces the paper's
key cross-vantage property for free: a scanner detected in the darknet
necessarily sends proportional traffic into every other monitored
network (Merit's lit space, the campus network), because all views
sample the same underlying session.

Three session modes cover the archetypes in the wild:

* ``COVERAGE`` — ZMap/Masscan-style jobs that enumerate a fraction of
  the target space once per port (random order, uniform in time).
* ``RATE`` — botnet-style probing with replacement at a fixed aggregate
  packet rate (e.g. Mirai bots).
* ``VERTICAL`` — many-port scans: probe every port in a (possibly huge)
  port set on a sample of addresses; the Definition-3 population.
"""

from __future__ import annotations

import enum
import math
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.fingerprint import Tool, masscan_ipid, random_ipid, zmap_ipid
from repro.net.prefix import (
    PrefixSet,
    intersect_ranges,
    ranges_size,
    sample_distinct_offsets,
)
from repro.packet import PacketBatch, Protocol
from repro.scanners.streams import span_generators

IPV4_SPACE = 2**32

#: Target expected in-view packets per RATE generation sub-window.  A
#: RATE session's Poisson process is exactly decomposable across
#: disjoint time spans, so long/high-rate sessions are generated on a
#: deterministic per-session grid sized to roughly this many packets per
#: span — windowed emission then never materializes more than ~one span
#: of any session, which is what bounds lazy-generation memory.  Small
#: is cheap: the number of extra RNG streams scales with *total* in-view
#: packets divided by this target, which stays negligible next to the
#: one-stream-per-session floor.
RATE_SPAN_TARGET_PACKETS = 8_192.0

#: Fixed costs of the flow-synthesis hot path, in (day, port) cell
#: units.  Calibrated on the darknet-2021 bench population: building
#: one scanner's block costs ~53µs before any cell is produced
#: (derived-RNG construction plus batched-call dispatch), each session
#: adds ~50µs of count bookkeeping, and one count cell costs ~0.22µs —
#: so the floors are 53/0.22 and 50/0.22 cell units.  Without them the
#: planner starves: on heavy-tail populations most scanners are
#: overhead-dominated, and a cells-only estimate packs thousands of
#: "free" light scanners into one shard.
FLOW_SCANNER_BASE_COST = 240.0
FLOW_SESSION_BASE_COST = 220.0


def full_ipv4_ranges() -> np.ndarray:
    """The whole IPv4 space as a single [start, end) range."""
    return np.array([[0, IPV4_SPACE]], dtype=np.int64)


def view_rng_key(view: "View") -> int:
    """Stable integer identifying a view's RNG substream.

    zlib.crc32, not hash(): Python string hashing is salted per process,
    which would break cross-run reproducibility.
    """
    return zlib.crc32(view.name.encode("utf-8"))


@dataclass(frozen=True)
class View:
    """A monitored address region (darknet, ISP lit space, campus)."""

    name: str
    prefixes: PrefixSet

    @property
    def size(self) -> int:
        """Number of monitored addresses."""
        return self.prefixes.size

    def ranges(self) -> np.ndarray:
        """Covered space as sorted [start, end) ranges."""
        return self.prefixes.ranges()

    def slash24s(self) -> int:
        """Announced /24 count (Figure 2 normalization)."""
        return self.prefixes.slash24s()


class ScanMode(enum.Enum):
    """How a session selects targets; see the module docstring."""

    COVERAGE = "coverage"
    RATE = "rate"
    VERTICAL = "vertical"


@dataclass
class ScanSession:
    """One contiguous scanning activity of a single source.

    Attributes:
        start: session start, seconds since scenario start.
        duration: session length in seconds.
        ports: destination ports probed (``[0]`` for ICMP sessions).
        proto: traffic type (TCP-SYN, UDP or ICMP echo request).
        tool: generating tool, which fixes the IP-ID fingerprint.
        mode: target-selection mode.
        coverage: COVERAGE mode — fraction of the target space
            enumerated per port, in (0, 1].
        rate_pps: RATE mode — aggregate Internet-wide packet rate.
        port_weights: RATE mode — per-port selection probabilities
            (uniform when omitted).
        n_targets: VERTICAL mode — number of addresses sampled from the
            target space, each probed on every port.
        probes_per_target: retransmission factor for COVERAGE/VERTICAL.
        target_ranges: restriction of the target space as an ``(n, 2)``
            [start, end) array; ``None`` means all of IPv4.
    """

    start: float
    duration: float
    ports: np.ndarray
    proto: Protocol
    tool: Tool
    mode: ScanMode
    coverage: float = 0.0
    rate_pps: float = 0.0
    port_weights: Optional[np.ndarray] = None
    n_targets: int = 0
    probes_per_target: int = 1
    target_ranges: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.ports = np.asarray(self.ports, dtype=np.uint16)
        if self.duration <= 0:
            raise ValueError("session duration must be positive")
        if len(self.ports) == 0:
            raise ValueError("session must probe at least one port")
        if self.mode is ScanMode.COVERAGE and not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        if self.mode is ScanMode.RATE and self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.mode is ScanMode.VERTICAL and self.n_targets <= 0:
            raise ValueError("n_targets must be positive")
        if self.probes_per_target < 1:
            raise ValueError("probes_per_target must be >= 1")
        if self.port_weights is not None:
            self.port_weights = np.asarray(self.port_weights, dtype=np.float64)
            if len(self.port_weights) != len(self.ports):
                raise ValueError("port_weights must align with ports")
            self.port_weights = self.port_weights / self.port_weights.sum()

    @property
    def end(self) -> float:
        """Session end timestamp."""
        return self.start + self.duration

    def effective_targets(self) -> np.ndarray:
        """Target ranges, defaulting to the full IPv4 space."""
        if self.target_ranges is None:
            return full_ipv4_ranges()
        return self.target_ranges

    def target_space_size(self) -> int:
        """Address count of the session's target space."""
        return ranges_size(self.effective_targets())


def _offsets_to_addrs(ranges: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Map linear offsets in [0, size(ranges)) to addresses."""
    sizes = ranges[:, 1] - ranges[:, 0]
    bounds = np.cumsum(sizes)
    which = np.searchsorted(bounds, offsets, side="right")
    starts = np.concatenate([[0], bounds[:-1]])
    return (ranges[which, 0] + (offsets - starts[which])).astype(np.uint32)


def _sample_addrs_with_replacement(
    rng: np.random.Generator, ranges: np.ndarray, count: int
) -> np.ndarray:
    total = ranges_size(ranges)
    offsets = rng.integers(0, total, size=count, dtype=np.int64)
    return _offsets_to_addrs(ranges, offsets)


@dataclass
class Scanner:
    """One scanning source IP and its activity schedule.

    Attributes:
        src: source address (integer IPv4).
        behavior: archetype label ("mirai", "masscan-sweep", ...); drives
            the GreyNoise-style tagging in :mod:`repro.labeling`.
        sessions: the scanner's activities over the scenario.
        org: acknowledged-scanner organization slug when the source
            belongs to a research org, else ``None``.
        seed: per-scanner RNG seed; emission into different views uses
            view-name-derived substreams so vantage points stay
            independent but reproducible.
    """

    src: int
    behavior: str
    sessions: list = field(default_factory=list)
    org: Optional[str] = None
    seed: int = 0

    def _rng_for_view(self, view: View) -> np.random.Generator:
        return np.random.default_rng((self.seed, view_rng_key(view)))

    def emit(
        self,
        view: View,
        window: Optional[tuple[float, float]] = None,
    ) -> PacketBatch:
        """Generate this scanner's packets landing inside ``view``.

        Emission is deterministic per (scanner, view, session,
        generation span): every session draws from its own RNG
        substream, so any time-slice of a session can be regenerated
        independently of the others.  A ``window`` therefore yields
        *exactly* the packets of the full emission whose timestamps fall
        inside it — windowed and full emission are slices of one
        underlying realization, which is what the lazy streaming layer
        (:mod:`repro.scanners.lazy`) relies on.

        Args:
            view: the monitored address region.
            window: optional [start, end) time clip.

        Returns:
            An unsorted :class:`PacketBatch` in deterministic generation
            order (callers sort at capture).
        """
        view_key = view_rng_key(view)
        view_ranges = view.ranges()
        batches = []
        for index, session in enumerate(self.sessions):
            if window is not None and (
                session.start >= window[1] or session.end <= window[0]
            ):
                continue
            batch = self._emit_session_windowed(
                index, session, view_ranges, view_key, window
            )
            if len(batch):
                batches.append(batch)
        return PacketBatch.concat(batches)

    def emit_window(self, view: View, t0: float, t1: float) -> PacketBatch:
        """Packets of the full emission with ``t0 <= ts < t1``, sorted.

        Concatenating ``emit_window`` over any partition of a span
        covering every session reproduces ``emit(view).sorted_by_time()``
        bit-identically — addresses, ports, timestamps and fingerprints
        (pinned by a hypothesis property test).  This is the unit the
        lazy capture source is built from.
        """
        return self.emit(view, window=(t0, t1)).sorted_by_time()

    def session_spans(self) -> np.ndarray:
        """Per-session [start, end) spans as an ``(n, 2)`` float array.

        The population-level interval index is built from these, so a
        windowed emission only touches scanners with overlapping
        sessions.
        """
        if not self.sessions:
            return np.empty((0, 2), dtype=np.float64)
        return np.array(
            [[s.start, s.end] for s in self.sessions], dtype=np.float64
        )

    # ------------------------------------------------------------------
    def _session_plan(
        self, session: ScanSession, view_ranges: np.ndarray
    ) -> tuple:
        """Deterministic generation plan for one session into one view.

        Returns ``(inter, hit_space, target_space, spans)`` where spans
        is the list of [start, end) generation sub-windows.  Non-RATE
        sessions are one span (COVERAGE/VERTICAL draw *distinct*
        targets, which cannot be split without breaking the
        enumerate-once semantics — but their in-view packet count is
        bounded by the view size, so one span is already small).  RATE
        sessions are a Poisson process, exactly decomposable, and are
        split so each span expects roughly
        :data:`RATE_SPAN_TARGET_PACKETS` packets.
        """
        inter = intersect_ranges(session.effective_targets(), view_ranges)
        hit_space = ranges_size(inter)
        if hit_space == 0:
            return inter, 0, 0, []
        target_space = session.target_space_size()
        if session.mode is not ScanMode.RATE:
            return inter, hit_space, target_space, [(session.start, session.end)]
        expected = (
            session.rate_pps * session.duration * hit_space / target_space
        )
        n_spans = max(1, int(math.ceil(expected / RATE_SPAN_TARGET_PACKETS)))
        if n_spans == 1:
            return inter, hit_space, target_space, [(session.start, session.end)]
        sub = session.duration / n_spans
        spans = [
            (session.start + j * sub, session.start + (j + 1) * sub)
            for j in range(n_spans)
        ]
        # Pin the last edge to the exact session end (float summation
        # may land a hair off; slicing contracts depend on exact edges).
        spans[-1] = (spans[-1][0], session.end)
        return inter, hit_space, target_space, spans

    def span_rngs(self, view_key: int, pairs: Sequence[tuple]) -> list:
        """Derive many span RNG streams in one vectorized pass.

        ``pairs`` is a sequence of ``(session_index, span_index)``
        tuples; the returned generators are bit-identical to
        ``np.random.default_rng((seed, view_key, session, span))`` per
        pair (see :mod:`repro.scanners.streams`), but the
        ``SeedSequence`` entropy mixing is amortized over the whole
        batch — the per-span fixed cost drops ~5x, which is what makes
        windowed emission touch tens of thousands of spans cheaply.
        """
        return span_generators(
            [(self.seed, view_key, index, span) for index, span in pairs]
        )

    def _emit_session_windowed(
        self,
        index: int,
        session: ScanSession,
        view_ranges: np.ndarray,
        view_key: int,
        window: Optional[tuple[float, float]],
    ) -> PacketBatch:
        """One session's packets clipped to ``window`` (exact slices)."""
        inter, hit_space, target_space, spans = self._session_plan(
            session, view_ranges
        )
        if hit_space == 0:
            return PacketBatch.empty()
        live = []
        for j, (s0, s1) in enumerate(spans):
            if window is not None:
                c0, c1 = max(s0, window[0]), min(s1, window[1])
                if c0 >= c1:
                    continue
            else:
                c0, c1 = s0, s1
            live.append((j, s0, s1, c0, c1))
        # One vectorized seed derivation for every span the window
        # touches, instead of a full SeedSequence chain per span.
        rngs = self.span_rngs(view_key, [(index, j) for j, *_ in live])
        parts = []
        for (j, s0, s1, c0, c1), rng in zip(live, rngs):
            batch = self._generate_span(
                session, index, j, s0, s1, inter, hit_space, target_space,
                view_key, rng=rng,
            )
            if c0 > s0 or c1 < s1:
                # Boolean mask, not searchsorted: spans are kept in
                # generation order (unsorted), and masking preserves
                # that order — which is what makes a window slice equal
                # the restriction of the full concat.
                batch = batch.select((batch.ts >= c0) & (batch.ts < c1))
            if len(batch):
                parts.append(batch)
        return PacketBatch.concat(parts)

    def _generate_span(
        self,
        session: ScanSession,
        index: int,
        span_index: int,
        s0: float,
        s1: float,
        inter: np.ndarray,
        hit_space: int,
        target_space: int,
        view_key: int,
        rng: Optional[np.random.Generator] = None,
    ) -> PacketBatch:
        """Generate one full [s0, s1) span of a session, unsorted.

        The RNG stream is keyed by (scanner seed, view, session, span),
        so a span regenerates bit-identically no matter which query
        window asked for it.  Rows stay in generation order; callers
        sort once per capture window, never per span.  ``rng`` lets
        batched callers (:meth:`span_rngs`) hand in the pre-derived
        stream; when omitted the span derives its own, identically.
        """
        if rng is None:
            rng = np.random.default_rng(
                (self.seed, view_key, index, span_index)
            )
        if session.mode is ScanMode.COVERAGE:
            dst, dport = self._coverage_hits(
                session, inter, hit_space, 1.0, rng
            )
        elif session.mode is ScanMode.RATE:
            dst, dport = self._rate_hits(
                session, inter, hit_space, target_space, s1 - s0, rng
            )
        else:
            dst, dport = self._vertical_hits(
                session, inter, hit_space, target_space, 1.0, rng
            )
        count = len(dst)
        if count == 0:
            return PacketBatch.empty()
        ts = s0 + rng.random(count) * (s1 - s0)
        if session.proto is Protocol.ICMP_ECHO:
            dport = np.zeros(count, dtype=np.uint16)
        ipid = self._fingerprint(session.tool, dst, dport, rng)
        src = np.full(count, self.src, dtype=np.uint32)
        proto = np.full(count, session.proto.value, dtype=np.uint8)
        return PacketBatch(
            ts=ts, src=src, dst=dst, dport=dport, proto=proto, ipid=ipid
        )

    def _coverage_hits(self, session, inter, hit_space, time_fraction, rng):
        p_hit = min(session.coverage * time_fraction, 1.0)
        dsts = []
        ports = []
        for port in session.ports:
            k = int(rng.binomial(hit_space, p_hit))
            if k == 0:
                continue
            offsets = sample_distinct_offsets(rng, hit_space, k)
            addrs = _offsets_to_addrs(inter, offsets)
            if session.probes_per_target > 1:
                addrs = np.repeat(addrs, session.probes_per_target)
            dsts.append(addrs)
            ports.append(np.full(len(addrs), port, dtype=np.uint16))
        if not dsts:
            return np.empty(0, np.uint32), np.empty(0, np.uint16)
        return np.concatenate(dsts), np.concatenate(ports)

    def _rate_hits(self, session, inter, hit_space, target_space, span, rng):
        lam = session.rate_pps * span * hit_space / target_space
        k = int(rng.poisson(lam))
        if k == 0:
            return np.empty(0, np.uint32), np.empty(0, np.uint16)
        dst = _sample_addrs_with_replacement(rng, inter, k)
        if len(session.ports) == 1:
            dport = np.full(k, session.ports[0], dtype=np.uint16)
        else:
            idx = rng.choice(len(session.ports), size=k, p=session.port_weights)
            dport = session.ports[idx]
        return dst, dport

    def _vertical_hits(
        self, session, inter, hit_space, target_space, time_fraction, rng
    ):
        p_view = hit_space / target_space
        n_effective = session.n_targets * time_fraction
        k = int(rng.binomial(int(round(n_effective)), p_view)) if n_effective >= 1 else int(
            rng.random() < n_effective * p_view
        )
        k = min(k, hit_space)
        if k == 0:
            return np.empty(0, np.uint32), np.empty(0, np.uint16)
        offsets = sample_distinct_offsets(rng, hit_space, k)
        addrs = _offsets_to_addrs(inter, offsets)
        dst = np.repeat(addrs, len(session.ports) * session.probes_per_target)
        dport = np.tile(
            np.repeat(session.ports, session.probes_per_target), k
        )
        return dst, dport

    @staticmethod
    def _fingerprint(tool, dst, dport, rng):
        if tool is Tool.ZMAP:
            return zmap_ipid(len(dst))
        if tool is Tool.MASSCAN:
            return masscan_ipid(dst, dport)
        return random_ipid(rng, len(dst))

    # ------------------------------------------------------------------
    # Analytic emission paths (flows and packet-stream monitors).
    #
    # Per-packet emission is only affordable for the (small) darknet
    # view.  The ISP substrates instead consume expected-rate math:
    # ``count_rows`` yields per-day, per-port packet counts for the
    # NetFlow path, and ``accumulate_stream`` adds per-second Poisson
    # packet counts for the mirrored-stream monitors.  Both derive from
    # the same sessions, so all vantage points stay mutually consistent.
    # ------------------------------------------------------------------
    def _session_view_total(self, session: ScanSession, view_ranges) -> float:
        """Expected packets a session sends into a view over its life."""
        inter = intersect_ranges(session.effective_targets(), view_ranges)
        hit_space = ranges_size(inter)
        if hit_space == 0:
            return 0.0
        target_space = session.target_space_size()
        if session.mode is ScanMode.COVERAGE:
            return (
                hit_space
                * min(session.coverage, 1.0)
                * len(session.ports)
                * session.probes_per_target
            )
        if session.mode is ScanMode.RATE:
            return session.rate_pps * session.duration * hit_space / target_space
        return (
            session.n_targets
            * (hit_space / target_space)
            * len(session.ports)
            * session.probes_per_target
        )

    def cost_estimate(
        self,
        view: Optional[View] = None,
        *,
        kind: str = "packets",
        day_seconds: float = 86_400.0,
    ) -> float:
        """Predicted relative processing cost of this scanner (cheap).

        The size-aware shard planner (:mod:`repro.core.schedule`) calls
        this once per scanner to bin-pack the population into balanced
        shards, so it must be orders of magnitude cheaper than the work
        it predicts — a few float operations per session, no RNG, no
        array allocation.

        ``kind="packets"`` predicts the expected packets the scanner
        emits into ``view`` (all of IPv4 when ``None``) over its whole
        schedule — rate × duration for RATE sessions, coverage × view
        size for COVERAGE, sampled-hit math for VERTICAL — the cost
        driver of generation and detection.  ``kind="flows"`` predicts
        flow-synthesis time in (day, port) count-cell units: the cells
        the scanner materializes plus the calibrated per-scanner and
        per-session fixed costs (:data:`FLOW_SCANNER_BASE_COST`,
        :data:`FLOW_SESSION_BASE_COST`) — a 100k-pps single-port
        scanner is heavy in packets but trivial in flow cells.

        Both include per-session floors so even a scanner whose
        sessions miss the view entirely costs more than an idle one,
        and the total is always positive (>= 1).
        """
        if kind not in ("packets", "flows"):
            raise ValueError(
                f"kind must be 'packets' or 'flows', got {kind!r}"
            )
        if kind == "flows":
            cost = FLOW_SCANNER_BASE_COST
            for session in self.sessions:
                days = math.ceil(session.duration / day_seconds)
                cost += FLOW_SESSION_BASE_COST + float(
                    len(session.ports)
                ) * max(days, 1)
            return cost
        cost = 1.0
        ranges = view.ranges() if view is not None else full_ipv4_ranges()
        for session in self.sessions:
            cost += 1.0 + self._session_view_total(session, ranges)
        return cost

    def count_rows(
        self,
        view: View,
        window: tuple,
        day_seconds: float,
        rng: np.random.Generator,
    ):
        """Per-day, per-service packet counts sent into ``view``.

        Yields ``(day_index, port, proto_value, count)`` tuples with
        Poisson-sampled counts; used by the NetFlow exporter, which
        applies 1:1000 packet sampling on top.

        Args:
            view: monitored region.
            window: [start, end) restriction in seconds.
            day_seconds: day length for day indexing.
            rng: random stream for count draws.
        """
        view_ranges = view.ranges()
        rows = []
        for session in self.sessions:
            total = self._session_view_total(session, view_ranges)
            if total <= 0:
                continue
            w0 = max(session.start, window[0])
            w1 = min(session.end, window[1])
            if w0 >= w1:
                continue
            first_day = int(w0 // day_seconds)
            last_day = int((w1 - 1e-9) // day_seconds)
            for day in range(first_day, last_day + 1):
                d0 = max(w0, day * day_seconds)
                d1 = min(w1, (day + 1) * day_seconds)
                frac = (d1 - d0) / session.duration
                expected = total * frac
                if expected <= 0:
                    continue
                if len(session.ports) == 1:
                    count = int(rng.poisson(expected))
                    if count:
                        rows.append(
                            (day, int(session.ports[0]), session.proto.value, count)
                        )
                elif session.mode is ScanMode.VERTICAL:
                    # Every sampled target receives the full port set, so
                    # all ports share one target count.
                    per_port = expected / len(session.ports)
                    k = int(rng.poisson(per_port))
                    if k:
                        for port in session.ports:
                            rows.append((day, int(port), session.proto.value, k))
                else:
                    weights = (
                        session.port_weights
                        if session.port_weights is not None
                        else np.full(len(session.ports), 1.0 / len(session.ports))
                    )
                    counts = rng.poisson(expected * weights)
                    for port, count in zip(session.ports, counts):
                        if count:
                            rows.append(
                                (day, int(port), session.proto.value, int(count))
                            )
        return rows

    def count_columns(
        self,
        view: View,
        window: tuple,
        day_seconds: float,
        rng: np.random.Generator,
    ) -> tuple:
        """Columnar :meth:`count_rows`: per-day, per-service counts as arrays.

        Returns aligned ``(day, port, proto, count)`` arrays — the same
        rows :meth:`count_rows` yields, in the same order, from the same
        random stream.  The bit-identity contract is exact: for a given
        ``rng`` state both methods consume the stream identically (all
        of a session's Poisson draws happen in day-major, then
        port-major order, whether drawn scalar-by-scalar or as one
        batched call), so the columnar flow-synthesis path can be
        checked row-for-row against the loop reference.

        Args:
            view: monitored region.
            window: [start, end) restriction in seconds.
            day_seconds: day length for day indexing.
            rng: random stream for count draws.
        """
        view_ranges = view.ranges()
        day_parts: list = []
        port_parts: list = []
        proto_parts: list = []
        count_parts: list = []
        for session in self.sessions:
            total = self._session_view_total(session, view_ranges)
            if total <= 0:
                continue
            w0 = max(session.start, window[0])
            w1 = min(session.end, window[1])
            if w0 >= w1:
                continue
            first_day = int(w0 // day_seconds)
            last_day = int((w1 - 1e-9) // day_seconds)
            days = np.arange(first_day, last_day + 1, dtype=np.int64)
            d0 = np.maximum(w0, days * day_seconds)
            d1 = np.minimum(w1, (days + 1) * day_seconds)
            expected = total * (d1 - d0) / session.duration
            # The loop skips zero-expectation days *before* drawing, so
            # the filter must happen before the batched draw too.
            positive = expected > 0
            days = days[positive]
            expected = expected[positive]
            if len(days) == 0:
                continue
            ports = session.ports
            n_ports = len(ports)
            if n_ports == 1:
                counts = rng.poisson(expected)
                day_col = days
                port_col = np.full(len(days), ports[0], dtype=np.uint16)
            elif session.mode is ScanMode.VERTICAL:
                # One target count per day, shared by the whole port set.
                shared = rng.poisson(expected / n_ports)
                day_col = np.repeat(days, n_ports)
                port_col = np.tile(ports, len(days))
                counts = np.repeat(shared, n_ports)
            else:
                weights = (
                    session.port_weights
                    if session.port_weights is not None
                    else np.full(n_ports, 1.0 / n_ports)
                )
                # (days, ports) in C order == the loop's per-day vectors.
                counts = rng.poisson(expected[:, None] * weights).ravel()
                day_col = np.repeat(days, n_ports)
                port_col = np.tile(ports, len(days))
            keep = counts > 0
            if not keep.any():
                continue
            day_parts.append(day_col[keep])
            port_parts.append(port_col[keep])
            count_parts.append(counts[keep].astype(np.int64))
            proto_parts.append(
                np.full(int(keep.sum()), session.proto.value, dtype=np.uint8)
            )
        if not day_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint16),
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(day_parts),
            np.concatenate(port_parts),
            np.concatenate(proto_parts),
            np.concatenate(count_parts),
        )

    def accumulate_stream(
        self,
        accumulator: np.ndarray,
        view: View,
        window: tuple,
        rng: np.random.Generator,
        rate_scale: float = 1.0,
    ) -> None:
        """Add this scanner's per-second packet counts to a monitor.

        Args:
            accumulator: int64 array of per-second counts; index 0 is
                ``window[0]``.
            view: monitored region.
            window: [start, end) covered by the accumulator.
            rng: random stream for Poisson draws.
            rate_scale: multiplier on the emission rate — used when the
                monitor only mirrors part of the view's traffic (e.g.
                one of several ingress routers).
        """
        if rate_scale <= 0:
            return
        view_ranges = view.ranges()
        horizon = len(accumulator)
        for session in self.sessions:
            total = self._session_view_total(session, view_ranges) * rate_scale
            if total <= 0:
                continue
            w0 = max(session.start, window[0])
            w1 = min(session.end, window[1])
            if w0 >= w1:
                continue
            rate = total / session.duration
            i0 = max(int(w0 - window[0]), 0)
            i1 = min(int(np.ceil(w1 - window[0])), horizon)
            if i1 <= i0:
                continue
            accumulator[i0:i1] += rng.poisson(rate, i1 - i0)

    # ------------------------------------------------------------------
    def first_activity(self) -> float:
        """Timestamp of the scanner's earliest session."""
        if not self.sessions:
            raise ValueError("scanner has no sessions")
        return min(s.start for s in self.sessions)

    def last_activity(self) -> float:
        """Timestamp of the scanner's latest session end."""
        if not self.sessions:
            raise ValueError("scanner has no sessions")
        return max(s.end for s in self.sessions)

    def distinct_ports(self) -> int:
        """Number of distinct ports across all sessions."""
        if not self.sessions:
            return 0
        return len(np.unique(np.concatenate([s.ports for s in self.sessions])))


def emit_population(
    scanners: Sequence[Scanner],
    view: View,
    window: Optional[tuple[float, float]] = None,
) -> PacketBatch:
    """Emit and time-sort packets of many scanners into one view."""
    batches = [scanner.emit(view, window) for scanner in scanners]
    return PacketBatch.concat(batches).sorted_by_time()
