"""Diurnal legitimate-traffic model.

Border routers carry user traffic with strong time-of-day and
day-of-week structure: weekday business-hours peaks, quieter nights,
and noticeably lower weekend volume.  The weekend dip matters for the
paper's Table 2: the aggressive hitters' packet *fraction* is highest
on Saturday/Sunday precisely because the legitimate denominator drops
while scanning is constant.

The model also folds in the scanning traffic of the (unmodeled)
non-aggressive remainder of the Internet as a small constant floor, so
router totals are never exactly equal to legit + detected-AH packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.clock import SimClock
from repro.traffic.cache import ContentCacheModel


@dataclass(frozen=True)
class DiurnalTrafficModel:
    """Per-second legitimate traffic rate for one monitored vantage.

    Attributes:
        base_pps: mean demand rate in packets per second.
        diurnal_amplitude: relative size of the time-of-day swing.
        weekend_factor: multiplier applied on Saturdays and Sundays.
        noise: relative standard deviation of per-second jitter.
        floor_pps: constant non-AH scanning floor at the border.
        cache: content-cache model shrinking border-visible demand.
        peak_hour: local hour of the diurnal maximum.
    """

    base_pps: float = 2_500.0
    diurnal_amplitude: float = 0.35
    weekend_factor: float = 0.62
    noise: float = 0.05
    floor_pps: float = 20.0
    cache: ContentCacheModel = ContentCacheModel(0.0)
    peak_hour: float = 20.0

    def __post_init__(self) -> None:
        if self.base_pps <= 0:
            raise ValueError("base_pps must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0 < self.weekend_factor <= 1:
            raise ValueError("weekend_factor must be in (0, 1]")

    # ------------------------------------------------------------------
    def mean_rate_at(self, ts: np.ndarray, clock: SimClock) -> np.ndarray:
        """Expected border pps at the given timestamps (no jitter)."""
        ts = np.asarray(ts, dtype=np.float64)
        day = np.floor(ts / clock.seconds_per_day).astype(np.int64)
        tod = (ts / clock.seconds_per_day - day) * 24.0
        phase = 2.0 * np.pi * (tod - self.peak_hour) / 24.0
        diurnal = 1.0 + self.diurnal_amplitude * np.cos(phase)
        weekend = np.array(
            [self.weekend_factor if clock.is_weekend(int(d)) else 1.0 for d in day]
        )
        demand = self.base_pps * diurnal * weekend
        return demand * self.cache.border_factor() + self.floor_pps

    def daily_total(
        self, day: int, clock: SimClock, rng: np.random.Generator
    ) -> int:
        """Total border packets over one simulated day.

        Integrates the mean rate at minute resolution and applies
        day-level lognormal jitter.
        """
        minutes = np.arange(0, clock.seconds_per_day, 60.0)
        ts = clock.day_start(day) + minutes
        mean_total = float(np.sum(self.mean_rate_at(ts, clock)) * 60.0)
        # Scale to the actual day length when it is not a whole number
        # of minutes (compressed-day scenarios).
        mean_total *= clock.seconds_per_day / (len(minutes) * 60.0)
        jitter = rng.lognormal(mean=0.0, sigma=self.noise)
        return max(int(mean_total * jitter), 1)

    def per_second_counts(
        self,
        window: tuple,
        clock: SimClock,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Poisson per-second packet counts over [window[0], window[1])."""
        start, end = window
        seconds = np.arange(start, end, 1.0)
        rates = self.mean_rate_at(seconds, clock)
        jitter = rng.normal(1.0, self.noise, size=len(rates)).clip(min=0.1)
        return rng.poisson(rates * jitter).astype(np.int64)
