"""Legitimate (non-scanning) traffic models for the monitored networks."""

from repro.traffic.cache import ContentCacheModel
from repro.traffic.legit import DiurnalTrafficModel

__all__ = ["ContentCacheModel", "DiurnalTrafficModel"]
