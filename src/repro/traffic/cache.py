"""Content-cache (hypergiant off-net) modeling.

The paper's §4 attributes much of the impact difference between Merit
and the campus network to content caching: Merit hosts hypergiant
caches *inside* the ISP, so cache-served user traffic (video, CDN
objects) never crosses the border routers — shrinking the denominator
against which the scanners' packets are measured.  The campus network
has no in-net caches (its upstream provides off-net caching), so all
of its traffic crosses the monitored border.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ContentCacheModel:
    """Fraction of user demand served by in-network caches.

    Attributes:
        cache_fraction: share of total user traffic that is served from
            caches inside the network and therefore *absent* from the
            border-router counters.  0 disables caching (campus case).
    """

    cache_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.cache_fraction < 1:
            raise ValueError("cache_fraction must be in [0, 1)")

    def border_factor(self) -> float:
        """Multiplier taking total demand to border-visible traffic."""
        return 1.0 - self.cache_fraction

    def amplification(self) -> float:
        """How much caching inflates any border-traffic *fraction*.

        A flow of scanner packets is a fixed numerator; removing cached
        traffic from the denominator multiplies the measured fraction by
        ``1 / border_factor()``.
        """
        return 1.0 / self.border_factor()
