"""Paper parameters and study-wide configuration.

All constants from the CoNEXT 2023 paper are collected here so that every
analysis module shares a single source of truth and so that the ablation
benchmarks can sweep them in one place.

The paper's measurement infrastructure (the ORION network telescope, Merit
NetFlow collectors and two mirrored packet streams) is replaced in this
reproduction by a deterministic simulation substrate.  The *analysis*
parameters below are taken verbatim from the paper; the *simulation scale*
parameters are scaled-down equivalents chosen so that scenarios run on a
laptop while preserving all scale-relative behaviors (see DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Size of the full IPv4 address space, the universe scanners draw from.
IPV4_SPACE = 2**32

#: Fraction of the dark address space an event must touch for its source
#: to qualify as aggressive under Definition 1 ("address dispersion").
#: The paper reuses the 10% "large scan" cut-off of Durumeric et al. 2014.
DISPERSION_FRACTION = 0.10

#: Tail mass used for the ECDF thresholds of Definitions 2 and 3.  The
#: paper sets alpha = 0.0001, i.e. the top-0.01% of events (Definition 2)
#: or of per-day distinct-port counts (Definition 3) mark a source as
#: aggressive.
ECDF_ALPHA = 1e-4

#: NetFlow packet sampling rate at the ISP's core routers (1:1000).
FLOW_SAMPLING_RATE = 1_000

#: Assumptions behind the darknet event ("logical scan") timeout rule.
#: The paper derives an ~10 minute timeout from the darknet size, an
#: assumed scanning rate of 100 pps and an assumed 2-day "long scan".
TIMEOUT_ASSUMED_RATE_PPS = 100.0
TIMEOUT_ASSUMED_SCAN_SECONDS = 2 * 86_400
#: Probability budget for erroneously splitting one long scan in two.
TIMEOUT_SPLIT_PROBABILITY = 0.05

#: The ORION telescope covers about 500,000 contiguous dark IPs; the
#: reproduction defaults to a /19 (8,192 addresses) for tractable runs.
PAPER_DARKNET_SIZE = 475_000
DEFAULT_DARK_PREFIX_LENGTH = 19

#: Capture window for streaming-mode runs: one simulated hour, matching
#: how the real telescope rotates pcap files.
DEFAULT_CHUNK_SECONDS = 3_600.0

#: Paper-reported /24 counts used for the Figure 2 normalization.
PAPER_MERIT_SLASH24 = 28_561
PAPER_CU_SLASH24 = 291

#: Number of organizations on the public "Acknowledged Scanners" list at
#: the time of the paper's analysis.
PAPER_ACKED_ORG_COUNT = 36


def event_timeout_seconds(
    dark_size: int,
    *,
    assumed_rate_pps: float = TIMEOUT_ASSUMED_RATE_PPS,
    assumed_scan_seconds: float = TIMEOUT_ASSUMED_SCAN_SECONDS,
    split_probability: float = TIMEOUT_SPLIT_PROBABILITY,
    total_space: int = IPV4_SPACE,
) -> float:
    """Compute the darknet event expiration timeout.

    The paper (§2, footnote 1) follows Moore et al.'s "flow timeout
    problem": the timeout must be long enough that a multi-day uniform
    scan is not split into many short events, yet short enough that
    distinct scans from the same source do not merge.

    A uniform scanner probing the whole IPv4 space at ``assumed_rate_pps``
    hits a darknet of ``dark_size`` addresses as a Poisson process with
    rate ``lam = assumed_rate_pps * dark_size / total_space``.  Over a
    scan of length ``assumed_scan_seconds`` the expected number of
    darknet inter-arrival gaps is ``n = lam * assumed_scan_seconds``; the
    probability that at least one exponential gap exceeds ``T`` is about
    ``n * exp(-lam * T)``.  Solving for the ``split_probability`` budget:

        T = ln(n / split_probability) / lam

    With the paper's numbers (475k dark IPs, 100 pps, 2 days) this yields
    roughly 10-16 minutes, matching the paper's "around 10 minutes".

    Args:
        dark_size: number of monitored dark addresses.
        assumed_rate_pps: Internet-wide packet rate of the reference
            "long scan".
        assumed_scan_seconds: duration of the reference long scan.
        split_probability: acceptable probability of splitting the
            reference scan at least once.
        total_space: size of the scanned universe (IPv4 by default).

    Returns:
        Timeout in seconds (always positive).
    """
    if dark_size <= 0:
        raise ValueError("dark_size must be positive")
    if not 0 < split_probability < 1:
        raise ValueError("split_probability must be in (0, 1)")
    lam = assumed_rate_pps * dark_size / float(total_space)
    n_gaps = max(lam * assumed_scan_seconds, 1.0)
    return math.log(n_gaps / split_probability) / lam


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of the three aggressive-hitter definitions."""

    #: Definition 1: minimum fraction of dark IPs touched by one event.
    dispersion_fraction: float = DISPERSION_FRACTION
    #: Definitions 2 and 3: ECDF tail mass marking the critical threshold.
    alpha: float = ECDF_ALPHA
    #: Floor for the Definition 2 packet threshold; guards degenerate
    #: ECDFs in tiny simulations (the paper's thresholds were 64,810 and
    #: 23,491 packets for its two year-scale datasets).
    min_packet_threshold: int = 2
    #: Floor for the Definition 3 distinct-ports threshold (paper: 6,542
    #: and 57,410 ports/day for 2021 and 2022).
    min_port_threshold: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.dispersion_fraction <= 1:
            raise ValueError("dispersion_fraction must be in (0, 1]")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")


@dataclass(frozen=True)
class EventConfig:
    """Parameters of the darknet event (logical scan) builder."""

    #: Gap after which an event is considered expired.  ``None`` derives
    #: the value from the darknet size via :func:`event_timeout_seconds`.
    timeout_seconds: float | None = None

    def resolve_timeout(self, dark_size: int) -> float:
        """Return the effective timeout for a darknet of ``dark_size``."""
        if self.timeout_seconds is not None:
            if self.timeout_seconds <= 0:
                raise ValueError("timeout_seconds must be positive")
            return self.timeout_seconds
        return event_timeout_seconds(dark_size)


@dataclass(frozen=True)
class StudyConfig:
    """Top-level configuration shared by the end-to-end pipeline."""

    detection: DetectionConfig = field(default_factory=DetectionConfig)
    events: EventConfig = field(default_factory=EventConfig)
    flow_sampling_rate: int = FLOW_SAMPLING_RATE

    def __post_init__(self) -> None:
        if self.flow_sampling_rate < 1:
            raise ValueError("flow_sampling_rate must be >= 1")
