"""Command-line driver: ``repro-scanners``.

Subcommands:

* ``summary`` — run a scenario and print the Table-1-style dataset
  description plus the AH population per definition.
* ``impact`` — the Table 2 network-impact rows for a flows scenario.
* ``blocklist`` — emit a daily AH blocklist (the paper's operational
  deliverable).
* ``trends`` — the Figure 3 daily time series.
* ``ports`` — the Figure 4 top-ports ranking.
* ``churn`` / ``report`` / ``mitigation`` — churn statistics, the full
  study report, and the border-blocking simulation.
* ``serve`` — the always-on multi-tenant ingestion service
  (:mod:`repro.serve`); unlike the study subcommands it runs no
  scenario, it listens for npz chunks and answers AH queries live.

Every study subcommand accepts ``--scenario`` with one of: ``tiny``,
``darknet-2021``, ``darknet-2022``, ``flows-week``, ``flows-day``,
``stream-72h``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.analysis.tables import format_table, render_count, render_percent
from repro.core.pipeline import StudyReport, run_study
from repro.scanners.ports import service_label
from repro.packet import Protocol
from repro.sim.scenario import (
    Scenario,
    darknet_year_scenario,
    flows_day_scenario,
    flows_week_scenario,
    stream_72h_scenario,
    tiny_scenario,
)

_SCENARIOS = {
    "tiny": tiny_scenario,
    "darknet-2021": lambda: darknet_year_scenario(2021),
    "darknet-2022": lambda: darknet_year_scenario(2022),
    "flows-week": flows_week_scenario,
    "flows-day": flows_day_scenario,
    "stream-72h": stream_72h_scenario,
}


def _scenario(name: str) -> Scenario:
    if name.endswith(".json"):
        from repro.sim.config_file import load_scenario

        return load_scenario(name)
    try:
        return _SCENARIOS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(_SCENARIOS)} "
            "or pass a .json scenario file"
        )


def _cmd_summary(report: StudyReport) -> None:
    summary = report.dataset_summary()
    print(f"Scenario: {report.result.scenario.name}")
    print(
        format_table(
            ["metric", "value"],
            [
                ("darknet packets", f"{summary['packets']:,}"),
                ("source IPs", f"{summary['source_ips']:,}"),
                ("dark IPs", f"{summary['dark_size']:,}"),
                ("events", f"{summary['events']:,}"),
                ("days", summary["days"]),
            ],
            align_right=False,
        )
    )
    rows = []
    for definition, result in sorted(report.detections.items()):
        rows.append(
            (
                f"Definition {definition}",
                len(result),
                f"{result.threshold:.0f}",
            )
        )
    print()
    print(format_table(["definition", "AH sources", "threshold"], rows))
    print(f"\nJaccard(def1, def2) = {report.definition_jaccard():.2f}")
    telemetry = report.result.telemetry
    if telemetry is not None:
        print()
        print(
            format_table(
                ["gauge", "value"],
                telemetry.summary_rows(),
                title="Streaming pipeline telemetry",
                align_right=False,
            )
        )


def _cmd_impact(report: StudyReport) -> None:
    cells = report.impact_cells(definition=1)
    clock = report.clock
    by_day: dict = {}
    for cell in cells:
        by_day.setdefault(cell.day, {})[cell.router] = cell
    routers = sorted({c.router for c in cells})
    headers = ["Date"] + [f"Router-{r + 1} pkts/pcnt" for r in routers]
    rows = []
    for day in sorted(by_day):
        row = [clock.label(day)]
        for router in routers:
            cell = by_day[day].get(router)
            if cell is None:
                row.append("-")
            else:
                row.append(
                    f"{render_count(cell.ah_packets)} ({render_percent(cell.fraction)})"
                )
        rows.append(row)
    print(
        format_table(
            headers, rows, title="Network impact of definition-1 AH", align_right=False
        )
    )


def _cmd_blocklist(report: StudyReport, day: Optional[int]) -> None:
    if day is None:
        day = report.result.scenario.days - 1
    blocklist = report.daily_blocklist(day)
    print(blocklist.render())
    print(
        f"# {len(blocklist)} entries "
        f"({len(blocklist.non_acknowledged())} non-acknowledged)",
        file=sys.stderr,
    )


def _cmd_trends(report: StudyReport) -> None:
    points = report.temporal_trends()
    rows = [
        (
            report.clock.label(p.day),
            p.daily_new_ah,
            p.active_ah,
            p.all_daily_sources,
            f"{p.ah_packets:,}",
            f"{p.total_packets:,}",
            render_percent(p.ah_packet_share, 1),
        )
        for p in points
    ]
    print(
        format_table(
            ["day", "daily AH", "active AH", "all sources", "AH pkts", "all pkts", "share"],
            rows,
            title="Temporal trends (definition 1)",
        )
    )


def _cmd_churn(report: StudyReport) -> None:
    from repro.core.churn import churn_summary, staleness, survival_curve

    detection = report.detections[1]
    summary = churn_summary(detection)
    curve = survival_curve(detection, max_days=7)
    rows = [
        ("days compared", summary["days"]),
        ("mean retention", render_percent(summary["mean_retention"], 1)),
        ("mean day-over-day Jaccard", f"{summary['mean_jaccard']:.2f}"),
        ("mean new AH per day", f"{summary['mean_arrivals']:.0f}"),
    ]
    rows += [
        (f"P(active after {k}d)", render_percent(float(v), 1))
        for k, v in enumerate(curve)
    ]
    rows += [
        (f"freshness @ {d}-day refresh", render_percent(staleness(detection, d), 1))
        for d in (1, 3, 7)
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="AH list churn (definition 1)",
            align_right=False,
        )
    )


def _cmd_mitigation(report: StudyReport, lag: int, max_entries: Optional[int]) -> None:
    from repro.core.mitigation import simulate_blocking, summarize

    flows, totals = report.result.collect_flows()
    flow_days = report.result.scenario.flow_days
    blocklists = {
        day: report.daily_blocklist(day) for day in range(max(flow_days) + 1)
    }
    cells = simulate_blocking(
        flows,
        totals,
        blocklists,
        report.detections[1].sources,
        lag_days=lag,
        max_entries=max_entries,
    )
    rows = [
        (
            report.clock.label(cell.day),
            f"Router-{cell.router + 1}",
            f"{cell.blocked_packets:,}",
            render_percent(cell.ah_coverage, 1),
            render_percent(cell.relief, 2),
        )
        for cell in cells
    ]
    print(
        format_table(
            ["day", "router", "blocked pkts", "AH coverage", "router relief"],
            rows,
            title=(
                "Border blocklist deployment "
                f"(non-ACKed AH, lag={lag}d, "
                f"entries={'all' if max_entries is None else max_entries})"
            ),
            align_right=False,
        )
    )
    summary = summarize(cells)
    print(
        f"\nOverall: {summary['blocked_packets']:,} packets blocked — "
        f"{render_percent(summary['ah_coverage'], 1)} of AH traffic, "
        f"{render_percent(summary['relief'], 2)} of all router packets."
    )


def _cmd_ports(report: StudyReport) -> None:
    rows = []
    for row in report.top_ports():
        rows.append(
            (
                service_label(row.port, Protocol(row.proto)),
                f"{row.packets:,}",
                render_percent(row.zmap_packets / row.packets, 1),
                render_percent(row.masscan_packets / row.packets, 1),
                render_percent(row.other_packets / row.packets, 1),
            )
        )
    print(
        format_table(
            ["service", "packets", "zmap", "masscan", "other"],
            rows,
            title="Top-25 ports targeted by definition-1 AH",
        )
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-scanners",
        description="Aggressive Internet-wide scanner study (CoNEXT'23 reproduction)",
    )
    parser.add_argument(
        "--scenario",
        default="tiny",
        help=(
            f"scenario preset ({', '.join(sorted(_SCENARIOS))}) "
            "or a path to a .json scenario file"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("batch", "streaming"),
        default="batch",
        help=(
            "batch: events + detection over the whole capture at once; "
            "streaming: lazily generated chunked capture -> incremental "
            "detection (same results; the capture is never materialized, "
            "so memory stays bounded; telemetry in the summary)"
        ),
    )
    parser.add_argument(
        "--chunk-hours",
        type=float,
        default=None,
        metavar="H",
        help="streaming chunk size in simulated hours (default: 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard work across N worker processes; in streaming mode "
            "each worker generates (or, with --capture-dir, replays) "
            "and detects its own source shard, and in any mode — batch "
            "included — the ISP flow synthesis behind impact/mitigation "
            "shards its scanner population across the same pool "
            "(results are identical for any N)"
        ),
    )
    parser.add_argument(
        "--schedule",
        choices=("static", "packed", "stealing"),
        default="stealing",
        help=(
            "how parallel work is laid out across --workers: static "
            "keeps the legacy layout (even contiguous/hash shards, one "
            "per worker); packed bin-packs shards by each scanner's "
            "predicted cost so every worker gets equal work; stealing "
            "(default) additionally over-decomposes into sub-tasks "
            "that idle workers steal from stragglers — results are "
            "bit-identical in every mode, only load balance changes"
        ),
    )
    parser.add_argument(
        "--capture-dir",
        default=None,
        metavar="DIR",
        help=(
            "detect over a save_packets_chunked directory instead of "
            "generating the capture (streaming mode only); every chunk "
            "archive is digest-verified against the directory manifest "
            "before use (see --on-corrupt for handling damaged chunks)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        dest="checkpoint_dir",
        help=(
            "checkpoint finished shard states under DIR and resume from "
            "them: re-running after a crash re-executes only the missing "
            "shards (results identical to an uninterrupted run); forces "
            "the sharded detection path even with one worker, and in "
            "any mode — batch included — the flow synthesis checkpoints "
            "its shards under DIR/flows"
        ),
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry a failed shard up to N times (with backoff) before "
            "giving up; also re-runs shards lost to worker-process "
            "crashes (default policy: 2)"
        ),
    )
    parser.add_argument(
        "--on-corrupt",
        choices=("raise", "quarantine"),
        default="raise",
        help=(
            "what to do with a damaged chunk archive under --capture-dir: "
            "raise (default) fails naming the file; quarantine skips it, "
            "detects over the survivors and accounts it in the run-health "
            "telemetry"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("summary", help="dataset + detection summary")
    sub.add_parser("impact", help="Table 2 network impact (flows scenarios)")
    block = sub.add_parser("blocklist", help="daily AH blocklist")
    block.add_argument("--day", type=int, default=None, help="day index")
    sub.add_parser("trends", help="Figure 3 time series")
    sub.add_parser("ports", help="Figure 4 top ports")
    sub.add_parser("churn", help="AH list churn / blocklist freshness")
    sub.add_parser("report", help="full study report (all analyses)")
    mitigation = sub.add_parser(
        "mitigation", help="simulate border blocking (flows scenarios)"
    )
    mitigation.add_argument("--lag", type=int, default=1, help="list deployment lag, days")
    mitigation.add_argument(
        "--max-entries", type=int, default=None, help="filter size cap"
    )
    serve = sub.add_parser(
        "serve",
        help="run the always-on multi-tenant ingestion service",
        description=(
            "Listen for npz packet chunks (repro.serve wire format) for "
            "any number of tenants and answer live AH queries; the "
            "study-wide flags above do not apply to this subcommand."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8377,
        help="TCP port; 0 picks a free one (default: %(default)s)",
    )
    serve.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="listen on a local socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist tenant registrations and periodic engine snapshots "
            "under DIR; a restarted server restores every tenant from "
            "its last verified snapshot (no DIR: everything is lost on "
            "exit)"
        ),
    )
    serve.add_argument(
        "--ingest-threads",
        type=int,
        default=2,
        metavar="N",
        help="thread-pool size for CPU-bound chunk folding (default: 2)",
    )
    serve.add_argument(
        "--fold-processes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fold-worker processes shared by all tenants; 0 folds "
            "in-process on the ingest threads (default: auto-size to "
            "the machine)"
        ),
    )
    serve.add_argument(
        "--journal-fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help=(
            "write-ahead journal fsync policy: 'always' survives power "
            "loss, 'batch' (default) survives any process crash with "
            "fsyncs amortized, 'off' relies on the page cache"
        ),
    )
    serve.add_argument(
        "--no-journal",
        action="store_true",
        help=(
            "disable the write-ahead chunk journal (202 acks are no "
            "longer crash-durable; chunks since the last snapshot are "
            "lost on a crash)"
        ),
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        # The service runs no study: dispatch before the study-flag
        # validation and the run_study call.
        if args.ingest_threads < 1:
            raise SystemExit("--ingest-threads must be >= 1")
        if args.fold_processes is not None and args.fold_processes < 0:
            raise SystemExit("--fold-processes must be >= 0")
        from repro.serve.server import run_server

        def _announce(address):
            host, port = address
            print(f"repro-serve listening on {host}:{port}", flush=True)

        run_server(
            snapshot_dir=args.snapshot_dir,
            host=args.host,
            port=args.port,
            unix_socket=args.unix_socket,
            ingest_threads=args.ingest_threads,
            fold_processes=args.fold_processes,
            journal=not args.no_journal,
            journal_fsync=args.journal_fsync,
            ready=None if args.unix_socket else _announce,
        )
        return 0
    chunk_seconds = (
        args.chunk_hours * 3_600.0 if args.chunk_hours is not None else None
    )
    if args.chunk_hours is not None and args.mode != "streaming":
        raise SystemExit("--chunk-hours requires --mode streaming")
    if args.chunk_hours is not None and args.chunk_hours <= 0:
        raise SystemExit("--chunk-hours must be positive")
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.capture_dir is not None and args.mode != "streaming":
        raise SystemExit("--capture-dir requires --mode streaming")
    if args.on_corrupt != "raise" and args.capture_dir is None:
        raise SystemExit("--on-corrupt only applies with --capture-dir")
    if args.shard_retries is not None and args.shard_retries < 0:
        raise SystemExit("--shard-retries must be >= 0")
    from repro.core.faults import ChunkCorruptionError, FaultError

    try:
        report = run_study(
            _scenario(args.scenario),
            mode=args.mode,
            chunk_seconds=chunk_seconds,
            workers=args.workers,
            schedule=args.schedule,
            capture_dir=args.capture_dir,
            checkpoint_dir=args.checkpoint_dir,
            shard_retries=args.shard_retries,
            on_corrupt=args.on_corrupt,
        )
    except ChunkCorruptionError as exc:
        raise SystemExit(
            f"{exc}\n(use --on-corrupt quarantine to skip damaged chunks "
            "and continue)"
        )
    except FaultError as exc:
        hint = (
            ""
            if args.checkpoint_dir is not None
            else "\n(re-run with --resume DIR to make the run resumable)"
        )
        raise SystemExit(f"{exc}{hint}")
    if args.command == "summary":
        _cmd_summary(report)
    elif args.command == "impact":
        _cmd_impact(report)
    elif args.command == "blocklist":
        _cmd_blocklist(report, args.day)
    elif args.command == "trends":
        _cmd_trends(report)
    elif args.command == "ports":
        _cmd_ports(report)
    elif args.command == "churn":
        _cmd_churn(report)
    elif args.command == "report":
        from repro.core.report import render_full_report

        print(render_full_report(report))
    elif args.command == "mitigation":
        _cmd_mitigation(report, args.lag, args.max_entries)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
