"""Shard-parallel streaming detection (``repro.parallel``).

The three aggressive-hitter definitions are all keyed per *source*
address: events group packets by (src, dport, proto), the dispersion
and volume rules judge per-source events, and the port rule counts
per-(src, day) distinct ports.  Detection is therefore embarrassingly
parallel across sources — hash-partition the capture by source address
and every flow, every event, and every per-source statistic lands
wholly inside one shard.

This module exploits that: :func:`parallel_detect` shards each capture
chunk by source, runs one independent
:class:`~repro.core.streaming.StreamingDetector` per shard (in worker
processes), folds the shard states back together through the explicit
``merge()`` methods on the detector and its per-definition structures,
and calls :meth:`~repro.core.streaming.StreamingDetector.finish` once
on the merged state.  Because thresholds (the volume and port ECDF
tails) are only derived *after* the merge — over exactly the sample a
serial run would have accumulated — the events, thresholds and AH sets
are **identical to the serial path for any shard count**.  A hypothesis
property test pins this invariant.

Two consumption modes:

* :func:`parallel_detect` — shard an in-memory chunk stream in the
  parent and ship per-shard sub-batches to the pool.
* :func:`parallel_detect_directory` — point the workers at a
  ``chunk-*.npz`` directory written by
  :func:`repro.io.packetlog.save_packets_chunked`; each worker reads
  every archive itself and keeps only its shard's packets, so no packet
  ever crosses a process pipe and parent memory stays at one chunk.

Every entry point executes through the fault-tolerant layer
(:mod:`repro.core.faults`): failed shards are retried with backoff, a
dead worker process respawns the pool and re-runs only the unfinished
shards, and — with ``checkpoint_dir`` set — each finished shard's state
is persisted atomically under a content digest so an interrupted run
resumes by re-executing exactly the missing shards
(:func:`resume_run`).  Because retry and resume re-run whole shards
from their inputs and the merge is always performed in shard-index
order, a faulted or resumed run is bit-identical to a fault-free one.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import DetectionConfig
from repro.core.detection import DetectionResult
from repro.core.events import EventTable
from repro.core.faults import (
    CheckpointStore,
    FaultPlan,
    RetryPolicy,
    run_sharded,
    sha256_hex,
)
from repro.core.engine import DetectionEngine
from repro.core.schedule import (
    DEFAULT_STEAL_FACTOR,
    SchedulePlan,
    plan_contiguous,
    plan_grouped,
    validate_mode,
)
from repro.core.streaming import StreamingDetector
from repro.core.telemetry import PipelineTelemetry, RunHealth
from repro.io.shm import (
    resolve_batches,
    share_shard_batches,
    want_shared_memory,
)
from repro.packet import PacketBatch

#: Hash fine-shards per worker when the scheduler runs over a chunk
#: directory: every task streams the whole archive sequence, so the
#: fan-out is kept low — 2x over-decomposition halves the straggler
#: tail for one extra pass of (cheap, page-cached) reads.
DIRECTORY_FINE_FACTOR = 2

#: Fibonacci-hash multiplier: decorrelates the shard index from address
#: structure (plain ``src % n`` would map whole prefixes to one shard).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def shard_of(src: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard index per source address (vectorized, deterministic).

    The same source always lands in the same shard — the invariant the
    whole parallel path rests on — and the multiplicative hash spreads
    adjacent addresses across shards.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    hashed = src.astype(np.uint64) * _HASH_MULTIPLIER
    return ((hashed >> np.uint64(33)) % np.uint64(n_shards)).astype(np.int64)


def shard_batch(batch: PacketBatch, n_shards: int) -> List[PacketBatch]:
    """Partition a packet batch into per-shard sub-batches.

    Row order within each shard is preserved, so a time-ordered batch
    yields time-ordered shards.
    """
    if n_shards == 1:
        return [batch]
    shard = shard_of(batch.src, n_shards)
    return [batch.select(shard == i) for i in range(n_shards)]


def merge_detectors(
    detectors: Sequence[StreamingDetector],
) -> StreamingDetector:
    """Fold shard detectors into one (in shard order, for determinism).

    Returns the first detector, now holding the union state; the rest
    are consumed and must be discarded.
    """
    if not detectors:
        raise ValueError("need at least one detector to merge")
    merged = detectors[0]
    for other in detectors[1:]:
        merged.merge(other)
    return merged


@dataclass(frozen=True)
class WorkerReport:
    """What one shard worker processed (telemetry, not results)."""

    shard: int
    packets: int
    events_finalized: int
    open_flows: int
    peak_open_flows: int
    #: wall-clock seconds spent inside the worker's detector loop.
    seconds: float
    watermark: Optional[float]
    #: wall-clock seconds spent generating this shard's capture (lazy
    #: shard-local generation only; stays 0 when packets were shipped).
    generate_seconds: float = 0.0
    #: RNG span streams derived during lazy generation (pre-dedup
    #: derivation units; 0 when packets were shipped).
    spans_derived: int = 0
    #: derived spans that actually produced packets (<= spans_derived).
    spans_emitted: int = 0
    #: chunk archives this worker skipped as corrupt (degraded-mode
    #: directory reads only; every worker sees the same archives, so
    #: the parent deduplicates when folding into ``RunHealth``).
    quarantined: Tuple[str, ...] = ()
    #: OS process id that executed the work — lets the parent tell
    #: which tasks of a logical shard were stolen by another worker.
    pid: int = 0
    #: planner-predicted work for this logical shard (0 = unplanned).
    planned_cost: float = 0.0
    #: tasks folded into this logical shard (1 = no over-decomposition).
    tasks: int = 1
    #: tasks executed by a different process than the shard's heaviest
    #: task — drained from the pool queue by an idle worker.
    stolen_tasks: int = 0


@dataclass
class ParallelResult:
    """Output of a shard-parallel detection run."""

    events: EventTable
    detections: Dict[int, DetectionResult]
    worker_reports: List[WorkerReport]

    @property
    def workers(self) -> int:
        return len(self.worker_reports)


def _run_shard(
    shard: int,
    batches: List[PacketBatch],
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig],
    day_seconds: float,
) -> Tuple[StreamingDetector, WorkerReport]:
    """Worker body: drive one shard's detector over its sub-batches.

    Top-level (not a closure) so it pickles under any multiprocessing
    start method.  ``batches`` is either the shard's batch list (the
    pickled hand-off) or a :class:`~repro.io.shm.ShmBatchList` handle,
    resolved here into read-only views of the parent's segment.
    Returns the *unfinished* detector — thresholds must only be derived
    after the merge.
    """
    t0 = time.perf_counter()
    batches = resolve_batches(batches)
    detector = StreamingDetector(timeout, dark_size, config, day_seconds)
    for batch in batches:
        detector.add_batch(batch)
    report = WorkerReport(
        shard=shard,
        packets=detector.packets_seen,
        events_finalized=detector.events_finalized,
        open_flows=detector.open_flows,
        peak_open_flows=detector.peak_open_flows,
        seconds=time.perf_counter() - t0,
        watermark=detector.watermark,
        pid=os.getpid(),
    )
    return detector, report


def _run_shard_directory(
    shard: int,
    n_shards: int,
    directory: str,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig],
    day_seconds: float,
    on_corrupt: str = "raise",
    fines: Optional[Tuple[int, ...]] = None,
) -> Tuple[StreamingDetector, WorkerReport]:
    """Worker body for chunk directories: read, filter to shard, fold.

    Every worker streams the full archive sequence but holds only one
    chunk at a time, and feeds its detector only the packets whose
    source hashes to its shard.  Under a schedule plan ``fines`` names
    the set of fine hash-shards (mod ``n_shards``) this task owns
    instead of the single ``shard`` value — the union filter keeps the
    source partition disjoint across tasks, so one detector per task
    stays correct.  Archives are verified against the directory's
    digest manifest; a damaged one raises (strict) or is skipped and
    reported back (``on_corrupt="quarantine"``) — every worker skips
    the *same* archives, so degraded-mode results stay deterministic
    across shard counts.
    """
    from repro.io.packetlog import iter_packets_verified

    t0 = time.perf_counter()
    detector = StreamingDetector(timeout, dark_size, config, day_seconds)
    quarantined: List[str] = []
    fine_ids = (
        None if fines is None else np.asarray(fines, dtype=np.int64)
    )
    for path, batch in iter_packets_verified(directory, on_corrupt):
        if batch is None:
            quarantined.append(str(path))
            continue
        if fine_ids is not None:
            batch = batch.select(
                np.isin(shard_of(batch.src, n_shards), fine_ids)
            )
        elif n_shards > 1:
            batch = batch.select(shard_of(batch.src, n_shards) == shard)
        if len(batch):
            detector.add_batch(batch)
    report = WorkerReport(
        shard=shard,
        packets=detector.packets_seen,
        events_finalized=detector.events_finalized,
        open_flows=detector.open_flows,
        peak_open_flows=detector.peak_open_flows,
        seconds=time.perf_counter() - t0,
        watermark=detector.watermark,
        quarantined=tuple(quarantined),
        pid=os.getpid(),
    )
    return detector, report


def _run_shard_lazy(
    shard: int,
    scanners: list,
    view,
    chunk_seconds: float,
    window,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig],
    day_seconds: float,
) -> Tuple[StreamingDetector, WorkerReport]:
    """Worker body for lazy generation: emit own shard, then detect.

    The worker receives its shard's *scanners* (a compact description of
    behavior, kilobytes) instead of their packets (gigabytes at scale),
    streams the shard's capture locally with a
    :class:`~repro.telescope.chunks.LazyCaptureSource`, and folds it
    into its detector chunk by chunk — raw packets never cross a
    process boundary, and no process ever materializes a full capture.
    """
    from repro.telescope.chunks import LazyCaptureSource

    t0 = time.perf_counter()
    detector = StreamingDetector(timeout, dark_size, config, day_seconds)
    source = LazyCaptureSource.from_population(
        scanners, view, chunk_seconds, window=window
    )
    generate_seconds = 0.0
    t_prev = time.perf_counter()
    for chunk in source:
        t_generated = time.perf_counter()
        generate_seconds += t_generated - t_prev
        detector.add_batch(chunk.packets)
        t_prev = time.perf_counter()
    report = WorkerReport(
        shard=shard,
        packets=detector.packets_seen,
        events_finalized=detector.events_finalized,
        open_flows=detector.open_flows,
        peak_open_flows=detector.peak_open_flows,
        seconds=time.perf_counter() - t0,
        watermark=detector.watermark,
        generate_seconds=generate_seconds,
        spans_derived=source.spans_derived,
        spans_emitted=source.spans_emitted,
        pid=os.getpid(),
    )
    return detector, report


def _finish_merged(
    shard_results: List[Tuple[StreamingDetector, WorkerReport]],
    telemetry: Optional[PipelineTelemetry],
) -> ParallelResult:
    """Merge shard states (in shard order), finish once, fold telemetry.

    A thin wrapper over :meth:`DetectionEngine.from_shards` — the merge
    order, single finish, and worker/merge-stage telemetry accounting
    all live in the engine now, shared with every other run path.
    """
    engine = DetectionEngine.from_shards(shard_results, telemetry=telemetry)
    events, detections = engine.finish()
    return ParallelResult(
        events=events,
        detections=detections,
        worker_reports=[report for _, report in shard_results],
    )


# ----------------------------------------------------------------------
# Fault-tolerance plumbing shared by the entry points
# ----------------------------------------------------------------------


def _resolve_health(telemetry: Optional[PipelineTelemetry]) -> RunHealth:
    """The RunHealth sink faults are accounted on (discarded if no
    telemetry was requested)."""
    return telemetry.health if telemetry is not None else RunHealth()


def _config_meta(config: Optional[DetectionConfig]) -> Optional[dict]:
    return None if config is None else dataclasses.asdict(config)


def _window_meta(window: Optional[tuple]) -> Optional[list]:
    # JSON round-trips tuples as lists; normalize so a resumed run's
    # metadata compares equal to the recorded one.
    return None if window is None else [float(edge) for edge in window]


def _checkpoint_store(
    checkpoint_dir, health: RunHealth, meta: dict
) -> Optional[CheckpointStore]:
    """Open (or adopt) a run's checkpoint directory; ``None`` disables
    checkpointing.  Mismatched run parameters raise — see
    :meth:`~repro.core.faults.CheckpointStore.require_meta`."""
    if checkpoint_dir is None:
        return None
    store = CheckpointStore(checkpoint_dir, health)
    store.require_meta(meta)
    return store


def _ship_payloads(payloads: List[List[PacketBatch]], shm, processes: bool):
    """Choose the pool hand-off for per-shard batch lists.

    Returns ``(worker_payloads, lease)``: either the lists themselves
    (pickled hand-off, ``lease=None``) or one
    :class:`~repro.io.shm.ShmBatchList` handle per shard backed by a
    single named segment the caller must close after the pool joins.
    The segment outlives any worker crash — retried and respawned
    shards re-attach by name — because only the parent unlinks it.
    """
    if not want_shared_memory(
        shm,
        processes,
        sum(batch.nbytes for batches in payloads for batch in batches),
    ):
        return payloads, None
    return share_shard_batches(payloads, "detect")


def _dump_detect_state(result: tuple) -> bytes:
    detector, report = result
    return pickle.dumps((detector.to_bytes(), report), protocol=4)


def _load_detect_state(payload: bytes) -> tuple:
    blob, report = pickle.loads(payload)
    return StreamingDetector.from_bytes(blob), report


def _dump_flow_state(result: tuple) -> bytes:
    from repro.flows.synthesis import flow_state_to_bytes

    columns, report = result
    return pickle.dumps((flow_state_to_bytes(columns), report), protocol=4)


def _load_flow_state(payload: bytes) -> tuple:
    from repro.flows.synthesis import flow_state_from_bytes

    blob, report = pickle.loads(payload)
    return flow_state_from_bytes(blob), report


# ----------------------------------------------------------------------
# Size-aware scheduling plumbing shared by the entry points
# ----------------------------------------------------------------------


def _scanner_cost(scanner, view, kind: str) -> float:
    """Predicted work for one scanner, 1.0 when it cannot say.

    Duck-typed so foreign scanner-like objects without
    :meth:`~repro.scanners.base.Scanner.cost_estimate` still schedule
    (uniform weight keeps the planner no worse than static for them).
    """
    estimate = getattr(scanner, "cost_estimate", None)
    if estimate is None:
        return 1.0
    return float(estimate(view, kind=kind))


def _source_groups(scanners: Sequence) -> List[List[int]]:
    """Group scanner indices by source address, first-occurrence order.

    Per-source detection state (events, flows, day/port statistics)
    must stay within one task, so all scanners sharing a source — the
    spoofed sentinel 0 included — form one indivisible planning unit.
    """
    by_src: Dict[int, List[int]] = {}
    for index, scanner in enumerate(scanners):
        by_src.setdefault(int(scanner.src), []).append(index)
    return list(by_src.values())


def _stolen_tasks(plan_tasks, reports) -> int:
    """Tasks of one logical shard executed away from its home worker.

    The home worker is wherever the shard's heaviest task ran; any
    sibling task that a different process drained from the pool queue
    counts as stolen.  In-process runs share one pid, so this is 0
    there — it measures actual pool dynamics, not the plan.
    """
    if len(reports) <= 1:
        return 0
    heavy = max(
        range(len(plan_tasks)),
        key=lambda i: (plan_tasks[i].cost, -i),
    )
    home_pid = reports[heavy].pid
    return sum(1 for report in reports if report.pid != home_pid)


def _fold_detect_tasks(
    plan: SchedulePlan,
    task_results: List[Tuple[StreamingDetector, WorkerReport]],
    make_detector,
) -> List[Tuple[StreamingDetector, WorkerReport]]:
    """Fold per-task detector states into one pair per logical shard.

    Detection merges are partition-independent, so task detectors fold
    in logical task order without changing results; the per-shard
    report aggregates the task reports and carries the plan/steal
    telemetry.  Output arity is exactly ``plan.workers`` — downstream
    merge and telemetry code sees the same shape as a static run.
    """
    folded: List[Tuple[StreamingDetector, WorkerReport]] = []
    for shard in range(plan.workers):
        tasks = plan.shard_tasks(shard)
        if not tasks:
            folded.append(
                (
                    make_detector(),
                    WorkerReport(
                        shard=shard,
                        packets=0,
                        events_finalized=0,
                        open_flows=0,
                        peak_open_flows=0,
                        seconds=0.0,
                        watermark=None,
                        planned_cost=0.0,
                        tasks=0,
                    ),
                )
            )
            continue
        reports = [task_results[task.index][1] for task in tasks]
        detector = merge_detectors(
            [task_results[task.index][0] for task in tasks]
        )
        watermarks = [
            report.watermark
            for report in reports
            if report.watermark is not None
        ]
        quarantined: List[str] = []
        for report in reports:
            for path in report.quarantined:
                if path not in quarantined:
                    quarantined.append(path)
        folded.append(
            (
                detector,
                WorkerReport(
                    shard=shard,
                    packets=sum(r.packets for r in reports),
                    events_finalized=sum(
                        r.events_finalized for r in reports
                    ),
                    open_flows=detector.open_flows,
                    peak_open_flows=max(
                        r.peak_open_flows for r in reports
                    ),
                    seconds=sum(r.seconds for r in reports),
                    watermark=max(watermarks) if watermarks else None,
                    generate_seconds=sum(
                        r.generate_seconds for r in reports
                    ),
                    spans_derived=sum(r.spans_derived for r in reports),
                    spans_emitted=sum(r.spans_emitted for r in reports),
                    quarantined=tuple(quarantined),
                    pid=reports[0].pid,
                    planned_cost=plan.planned_cost(shard),
                    tasks=len(tasks),
                    stolen_tasks=_stolen_tasks(tasks, reports),
                ),
            )
        )
    return folded


def _record_flow_workers(
    telemetry: PipelineTelemetry,
    plan: SchedulePlan,
    task_results: List[tuple],
) -> None:
    """Fold per-task flow reports into one telemetry entry per shard.

    Keeps the long-standing arity invariant — exactly ``plan.workers``
    ``flow_worker_stats`` entries whose scanner counts sum to the
    population — whatever the task decomposition was.
    """
    for shard in range(plan.workers):
        tasks = plan.shard_tasks(shard)
        reports = [task_results[task.index][1] for task in tasks]
        telemetry.record_flow_worker(
            shard=shard,
            scanners=sum(r.scanners for r in reports),
            rows=sum(r.rows for r in reports),
            seconds=sum(r.seconds for r in reports),
            planned_cost=plan.planned_cost(shard),
            tasks=len(tasks),
            stolen_tasks=_stolen_tasks(tasks, reports),
        )


def parallel_detect(
    chunks: Iterable,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
    *,
    workers: int,
    schedule: str = "static",
    shm: Optional[bool] = None,
    use_processes: bool = True,
    telemetry: Optional[PipelineTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_dir: Union[str, Path, None] = None,
) -> ParallelResult:
    """Shard-parallel equivalent of :func:`repro.core.streaming.stream_detect`.

    Args:
        chunks: time-ordered capture chunks — ``PacketBatch`` objects or
            anything with a ``.packets`` batch attribute (e.g.
            :class:`~repro.telescope.chunks.CaptureChunk`).
        workers: number of source shards, one detector (and, with
            ``use_processes``, one worker process) per shard.
        schedule: ``static`` hash-shards sources into exactly
            ``workers`` tasks (the legacy layout); ``packed`` and
            ``stealing`` hash into ``workers * steal-factor`` *fine*
            shards, count each fine shard's packets while chunking, and
            bin-pack the fine shards by measured packet count —
            ``packed`` into one task per worker, ``stealing`` into
            cost-capped sub-tasks drained by idle workers.  All modes
            produce identical events and detections.
        shm: hand shard payloads to the pool through a named
            shared-memory segment (:mod:`repro.io.shm`) instead of
            pickling them — workers map the segment read-only, so no
            packet byte crosses a process pipe.  ``None`` (default)
            decides automatically: shared memory when the pool uses
            processes, the platform supports it, and the payload is at
            least :data:`~repro.io.shm.SHM_MIN_BYTES`; ``True`` forces
            it whenever possible; ``False`` always pickles.  Results
            are bit-identical either way — the hand-off is pure
            transport.
        use_processes: run shards in a process pool; ``False`` runs them
            serially in-process (same shard/merge code path — useful for
            tests and as the degenerate ``workers=1`` case).
        telemetry: optional gauge sink; chunk-level counters are
            recorded while sharding, worker throughput after the join,
            and fault accounting on ``telemetry.health``.
        retry: per-shard retry/backoff/watchdog policy (defaults to
            :class:`~repro.core.faults.RetryPolicy`).
        fault_plan: deterministic fault injection (tests/CI only).
        checkpoint_dir: persist each finished shard's detector state
            here (atomic, digest-verified); re-running with the same
            directory and parameters resumes, re-executing only the
            missing shards.  The caller owns input identity for this
            in-memory entry point — feed the same chunk stream when
            resuming.

    Returns the merged :class:`ParallelResult` whose events and
    detections are identical to the serial streaming (and batch) path —
    also under any injected faults, retries, or resume.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    validate_mode(schedule)
    health = _resolve_health(telemetry)
    store = _checkpoint_store(
        checkpoint_dir,
        health,
        {
            "kind": "detect",
            "workers": workers,
            "schedule": schedule,
            "timeout": float(timeout),
            "dark_size": int(dark_size),
            "day_seconds": float(day_seconds),
            "config": _config_meta(config),
        },
    )
    static = schedule == "static"
    n_fine = workers if static else workers * DEFAULT_STEAL_FACTOR
    shards: List[List[PacketBatch]] = [[] for _ in range(workers)]
    pending: List[Optional[PacketBatch]] = []
    fine_packets = np.zeros(n_fine, dtype=np.int64)
    t_prev = time.perf_counter()
    shard_stage = telemetry.stage("shard") if telemetry is not None else None
    for chunk in chunks:
        batch = getattr(chunk, "packets", chunk)
        if len(batch) == 0:
            continue
        if static:
            for index, sub in enumerate(shard_batch(batch, workers)):
                if len(sub):
                    shards[index].append(sub)
        else:
            # Routing needs the task plan, and the plan needs every
            # chunk's fine-shard packet counts — so only count here and
            # route after the stream is exhausted.
            pending.append(batch)
            fine_packets += np.bincount(
                shard_of(batch.src, n_fine), minlength=n_fine
            )
        if telemetry is not None:
            now = time.perf_counter()
            shard_stage.add(len(batch), len(batch), now - t_prev)
            watermark = float(batch.ts.max())
            telemetry.record_chunk(
                packets=len(batch),
                events_finalized=0,
                open_flows=0,
                window_end=getattr(chunk, "end", watermark),
                watermark=watermark,
            )
            t_prev = time.perf_counter()

    if static:
        payloads, lease = _ship_payloads(
            shards, shm, use_processes and workers > 1
        )
        try:
            shard_results = run_sharded(
                _run_shard,
                [
                    (index, payloads[index], timeout, dark_size, config,
                     day_seconds)
                    for index in range(workers)
                ],
                policy=retry,
                plan=fault_plan,
                use_processes=use_processes and workers > 1,
                max_workers=workers,
                health=health,
                store=store,
                kind="detect",
                dumps=_dump_detect_state,
                loads=_load_detect_state,
            )
        finally:
            if lease is not None:
                lease.close()
        return _finish_merged(shard_results, telemetry)

    # Scheduled: bin-pack the fine hash-shards by measured packet count,
    # then route every chunk to each task with a union-of-fine-shards
    # mask.  One sub-batch per (chunk, task) keeps the chunks arriving
    # in time order within each task, and the union masks partition the
    # sources — one detector per task is exactly as correct as one per
    # hash shard.
    plan = plan_grouped(
        fine_packets.tolist(),
        [[fine] for fine in range(n_fine)],
        workers,
        schedule,
    )
    task_fines = [
        np.asarray(task.items, dtype=np.int64) for task in plan.tasks
    ]
    task_batches: List[List[PacketBatch]] = [[] for _ in plan.tasks]
    for position, batch in enumerate(pending):
        fine = shard_of(batch.src, n_fine)
        for index, fines in enumerate(task_fines):
            sub = batch.select(np.isin(fine, fines))
            if len(sub):
                task_batches[index].append(sub)
        pending[position] = None  # free as we go; peak stays ~one capture
    payloads, lease = _ship_payloads(
        task_batches, shm, use_processes and workers > 1
    )
    args = [
        (task.index, payloads[index], timeout, dark_size, config,
         day_seconds)
        for index, task in enumerate(plan.tasks)
    ]
    try:
        task_results = run_sharded(
            _run_shard,
            args,
            policy=retry,
            plan=fault_plan,
            use_processes=use_processes and workers > 1,
            max_workers=workers,
            submit_order=plan.submit_order(),
            health=health,
            store=store,
            kind="detect",
            dumps=_dump_detect_state,
            loads=_load_detect_state,
        )
    finally:
        if lease is not None:
            lease.close()
    shard_results = _fold_detect_tasks(
        plan,
        task_results,
        lambda: StreamingDetector(timeout, dark_size, config, day_seconds),
    )
    return _finish_merged(shard_results, telemetry)


def parallel_detect_directory(
    directory: Union[str, Path],
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
    *,
    workers: int,
    schedule: str = "static",
    use_processes: bool = True,
    telemetry: Optional[PipelineTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_dir: Union[str, Path, None] = None,
    on_corrupt: str = "raise",
) -> ParallelResult:
    """Shard-parallel detection over a ``save_packets_chunked`` directory.

    Each worker streams the archive sequence itself and filters to its
    shard, so raw packets never cross a process boundary; only the
    (much smaller) merged detector states travel back.  The directory
    is validated up front — a missing directory, no ``chunk-*.npz``
    archives, or a gap in the chunk sequence raise immediately with a
    clear message rather than failing mid-run.

    ``schedule="packed"``/``"stealing"`` decompose into
    ``workers * 2`` fine hash-shards and bin-pack them into tasks
    (``packed``: one per worker; ``stealing``: over-decomposed and
    drained by idle workers).  Packet counts are unknown before
    reading, so fine shards are weighted uniformly — the win here is
    finer granularity and stealing, not size prediction; results are
    identical in every mode.

    Chunk archives are digest-verified against the directory manifest.
    ``on_corrupt="raise"`` (default) surfaces the first damaged archive
    as a :class:`~repro.core.faults.ChunkCorruptionError` naming its
    path; ``"quarantine"`` skips damaged archives, accounts them on
    ``telemetry.health``, and detects over the survivors.

    With ``checkpoint_dir`` set, finished shard states persist there and
    a rerun — or :func:`resume_run` on the directory — re-executes only
    the missing shards; the run's parameters are recorded in
    ``run.json`` and a mismatched resume raises instead of merging
    incompatible states.
    """
    from repro.io.packetlog import CORRUPT_MODES, chunk_paths

    if workers < 1:
        raise ValueError("workers must be >= 1")
    validate_mode(schedule)
    if on_corrupt not in CORRUPT_MODES:
        raise ValueError(
            f"on_corrupt must be one of {CORRUPT_MODES}, got {on_corrupt!r}"
        )
    chunk_paths(directory)  # validate eagerly, before any process spawns
    health = _resolve_health(telemetry)
    store = _checkpoint_store(
        checkpoint_dir,
        health,
        {
            "kind": "directory",
            "directory": str(directory),
            "workers": workers,
            "schedule": schedule,
            "timeout": float(timeout),
            "dark_size": int(dark_size),
            "day_seconds": float(day_seconds),
            "config": _config_meta(config),
        },
    )
    if schedule == "static":
        plan = None
        args = [
            (
                index,
                workers,
                str(directory),
                timeout,
                dark_size,
                config,
                day_seconds,
                on_corrupt,
            )
            for index in range(workers)
        ]
    else:
        # Every task re-reads the archive sequence, so keep the fan-out
        # modest; counts are unknown before reading — uniform weights.
        n_fine = workers * DIRECTORY_FINE_FACTOR
        plan = plan_grouped(
            [1.0] * n_fine,
            [[fine] for fine in range(n_fine)],
            workers,
            schedule,
        )
        args = [
            (
                task.index,
                n_fine,
                str(directory),
                timeout,
                dark_size,
                config,
                day_seconds,
                on_corrupt,
                task.items,
            )
            for task in plan.tasks
        ]
    shard_results = run_sharded(
        _run_shard_directory,
        args,
        policy=retry,
        plan=fault_plan,
        use_processes=use_processes and workers > 1,
        max_workers=workers,
        submit_order=plan.submit_order() if plan is not None else None,
        health=health,
        store=store,
        kind="detect",
        dumps=_dump_detect_state,
        loads=_load_detect_state,
    )
    if plan is not None:
        shard_results = _fold_detect_tasks(
            plan,
            shard_results,
            lambda: StreamingDetector(
                timeout, dark_size, config, day_seconds
            ),
        )
    for _, report in shard_results:
        for path in report.quarantined:
            health.record_quarantine(path)
    if telemetry is not None:
        telemetry.total_packets = sum(
            report.packets for _, report in shard_results
        )
    return _finish_merged(shard_results, telemetry)


def resume_run(
    run_dir: Union[str, Path],
    *,
    use_processes: bool = True,
    telemetry: Optional[PipelineTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    on_corrupt: str = "raise",
) -> ParallelResult:
    """Resume a checkpointed :func:`parallel_detect_directory` run.

    Reads the run parameters recorded in ``<run_dir>/run.json``,
    reloads every shard state whose checkpoint verifies, and re-executes
    only the shards that are missing or damaged — the merged result is
    bit-identical to a fault-free run.  Runs whose inputs are not
    file-addressable (in-memory chunks, lazy generation, flow slices)
    resume by re-invoking their entry point with the same
    ``checkpoint_dir`` instead.
    """
    store = CheckpointStore(run_dir)
    meta = store.load_meta()
    if meta is None:
        raise FileNotFoundError(
            f"no run.json under {run_dir} — not a checkpointed run "
            "directory"
        )
    if meta.get("kind") != "directory":
        raise ValueError(
            f"run {run_dir} was checkpointed by a "
            f"{meta.get('kind')!r} entry point, which does not record "
            "its inputs on disk; resume it by re-invoking that entry "
            "point with the same checkpoint_dir"
        )
    config = (
        None if meta["config"] is None else DetectionConfig(**meta["config"])
    )
    return parallel_detect_directory(
        meta["directory"],
        meta["timeout"],
        meta["dark_size"],
        config,
        meta["day_seconds"],
        workers=meta["workers"],
        schedule=meta.get("schedule", "static"),
        use_processes=use_processes,
        telemetry=telemetry,
        retry=retry,
        checkpoint_dir=run_dir,
        on_corrupt=on_corrupt,
    )


def shard_scanners(scanners: Sequence, n_shards: int) -> List[list]:
    """Partition a scanner population by source-address shard.

    Uses the same Fibonacci hash as :func:`shard_of`, so generating a
    shard's scanners locally produces exactly the packets that sharding
    the materialized capture would have routed to that worker (every
    packet carries its scanner's source).  Scanners with the spoofed
    sentinel source 0 land in ``shard_of(0)``'s worker; their forged
    per-packet sources would scatter under packet sharding, but
    detection is per-source and each forged source contributes one
    packet, so results are unaffected.  Population order is preserved
    within each shard (part of the tie-breaking contract).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return [list(scanners)]
    sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
    shard = shard_of(sources, n_shards)
    return [
        [s for s, idx in zip(scanners, shard) if idx == i]
        for i in range(n_shards)
    ]


@dataclass(frozen=True)
class FlowWorkerReport:
    """What one flow-synthesis worker produced (telemetry, not results)."""

    shard: int
    #: scanners synthesized by this worker.
    scanners: int
    #: flow rows (true-count cells) produced — the pre-sampling unit,
    #: not the (smaller) exported row count after flow sampling.
    rows: int
    #: wall-clock seconds inside the worker's synthesis loop.
    seconds: float
    #: OS process id that executed the work (steal accounting).
    pid: int = 0


def _run_flow_shard(
    shard: int,
    scanners: list,
    start_index: int,
    mixes: np.ndarray,
    view,
    window,
    day_seconds: float,
    base: int,
):
    """Worker body: synthesize one contiguous population slice.

    Top-level (not a closure) so it pickles under any multiprocessing
    start method.  ``start_index`` keys the per-scanner streams, so the
    slice's columns are exactly the serial pass's columns for those
    scanners regardless of which worker runs it.
    """
    from repro.flows.synthesis import synthesize_flow_columns

    t0 = time.perf_counter()
    columns = synthesize_flow_columns(
        scanners, mixes, view, window, day_seconds, base,
        start_index=start_index,
    )
    report = FlowWorkerReport(
        shard=shard,
        scanners=len(scanners),
        rows=len(columns),
        seconds=time.perf_counter() - t0,
        pid=os.getpid(),
    )
    return columns, report


def parallel_flow_columns(
    scanners: Sequence,
    mixes: np.ndarray,
    view,
    window,
    day_seconds: float,
    base: int,
    *,
    workers: int,
    schedule: str = "static",
    use_processes: bool = True,
    telemetry: Optional[PipelineTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_dir: Union[str, Path, None] = None,
):
    """Shard-parallel columnar flow synthesis.

    Unlike detection — where state is keyed per source and shards are
    hash-partitioned — flow synthesis has *no* cross-scanner state:
    scanner ``i`` draws only from its own ``(base, salt, i)`` stream.
    The population is therefore split into **contiguous** index slices,
    and concatenating the per-task columns in logical task order
    reproduces the serial population order exactly — the merge is a
    concat, and results are bit-identical to serial for any worker
    count and schedule mode (hypothesis-tested 1..8).

    Args:
        scanners: full population slice to synthesize, in order.
        mixes: per-scanner router-mix matrix, aligned with ``scanners``.
        view: the ISP transit view.
        window: [start, end) collection period.
        day_seconds: day length for day indexing.
        base: the run's flow base seed.
        workers: number of contiguous shards / worker processes.
        schedule: ``static`` cuts even *count* slices
            (``np.array_split``, the legacy layout); ``packed`` cuts at
            cumulative :meth:`~repro.scanners.base.Scanner.cost_estimate`
            quantiles so each worker gets equal predicted work;
            ``stealing`` over-decomposes into cost-capped sub-tasks
            submitted heaviest-first, so idle workers drain stragglers.
        use_processes: ``False`` runs shards serially in-process (same
            shard/merge code path; useful for tests).
        telemetry: optional gauge sink for per-worker throughput.

    Returns:
        The merged :class:`~repro.flows.netflow.FlowColumns`.
    """
    from repro.flows.netflow import FlowColumns

    if workers < 1:
        raise ValueError("workers must be >= 1")
    validate_mode(schedule)
    scanners = list(scanners)
    if schedule == "static":
        costs = np.ones(len(scanners), dtype=np.float64)
    else:
        costs = np.array(
            [_scanner_cost(s, view, "flows") for s in scanners],
            dtype=np.float64,
        )
    plan = plan_contiguous(costs, workers, schedule)
    health = _resolve_health(telemetry)
    store = _checkpoint_store(
        checkpoint_dir,
        health,
        {
            "kind": "flows",
            "workers": workers,
            "schedule": schedule,
            "n_tasks": plan.n_tasks,
            "day_seconds": float(day_seconds),
            "base": int(base),
            "window": _window_meta(window),
            "n_scanners": len(scanners),
            "population": sha256_hex(
                np.array(
                    [int(s.src) for s in scanners], dtype=np.uint64
                ).tobytes()
            ),
        },
    )
    args = [
        (
            task.index,
            [scanners[i] for i in task.items],
            task.items[0] if task.items else 0,
            mixes[list(task.items)],
            view,
            window,
            day_seconds,
            base,
        )
        for task in plan.tasks
    ]
    task_results = run_sharded(
        _run_flow_shard,
        args,
        policy=retry,
        plan=fault_plan,
        use_processes=use_processes and workers > 1,
        max_workers=workers,
        submit_order=plan.submit_order() if schedule != "static" else None,
        health=health,
        store=store,
        kind="flows",
        dumps=_dump_flow_state,
        loads=_load_flow_state,
    )
    if telemetry is not None:
        if schedule == "static":
            for _, report in task_results:
                telemetry.record_flow_worker(
                    shard=report.shard,
                    scanners=report.scanners,
                    rows=report.rows,
                    seconds=report.seconds,
                )
        else:
            _record_flow_workers(telemetry, plan, task_results)
    return FlowColumns.concat([columns for columns, _ in task_results])


def parallel_generate_detect(
    scanners: Sequence,
    view,
    chunk_seconds: float,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
    *,
    workers: int,
    schedule: str = "static",
    window: Optional[tuple] = None,
    use_processes: bool = True,
    telemetry: Optional[PipelineTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_dir: Union[str, Path, None] = None,
) -> ParallelResult:
    """Shard-parallel detection with shard-local lazy generation.

    The synthetic-capture twin of :func:`parallel_detect_directory`:
    instead of sharding packets, the parent shards the *population* by
    source address and each worker lazily generates its own shard's
    capture (:class:`~repro.telescope.chunks.LazyCaptureSource`) while
    detecting.  Raw packets never cross a process pipe and no process —
    parent or worker — ever materializes a capture, so peak memory per
    worker is one chunk plus open generation spans and open flows.

    Results are identical to the serial and batch paths for any worker
    count: sharding scanners by source is equivalent to sharding their
    packets (every packet carries its scanner's source), and thresholds
    are derived once, after the merge.

    Args:
        scanners: the full population, in emission order.
        view: the monitored address region (the telescope's view).
        chunk_seconds: generation window length (epoch-aligned).
        timeout: event inactivity timeout.
        dark_size: telescope aperture (threshold normalization).
        config: detection thresholds configuration.
        day_seconds: day length for per-day statistics.
        workers: number of source shards / worker processes.
        schedule: ``static`` hash-shards the population by source (the
            legacy layout); ``packed``/``stealing`` group scanners by
            source address, predict each group's packet output with
            :meth:`~repro.scanners.base.Scanner.cost_estimate`, and LPT
            bin-pack the groups — ``stealing`` further splits each
            worker's groups into stealable sub-tasks submitted
            heaviest-first.  Same-source scanners always stay together
            (per-source detection state), and results are identical in
            every mode.
        window: overall [start, end) restriction (the scenario window).
        use_processes: ``False`` runs shards serially in-process (same
            code path; useful for tests).
        telemetry: optional gauge sink; per-worker generate/detect
            throughput is recorded after the join.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    validate_mode(schedule)
    scanners = list(scanners)
    health = _resolve_health(telemetry)
    store = _checkpoint_store(
        checkpoint_dir,
        health,
        {
            "kind": "generate",
            "workers": workers,
            "schedule": schedule,
            "chunk_seconds": float(chunk_seconds),
            "timeout": float(timeout),
            "dark_size": int(dark_size),
            "day_seconds": float(day_seconds),
            "window": _window_meta(window),
            "config": _config_meta(config),
            "n_scanners": len(scanners),
            "population": sha256_hex(
                np.array(
                    [int(s.src) for s in scanners], dtype=np.uint64
                ).tobytes()
            ),
        },
    )
    if schedule == "static":
        plan = None
        shards = shard_scanners(scanners, workers)
        args = [
            (
                index, shards[index], view, chunk_seconds, window,
                timeout, dark_size, config, day_seconds,
            )
            for index in range(workers)
        ]
    else:
        # Same-source scanners are one indivisible unit (per-source
        # detection state); any source-disjoint partition of the
        # population yields identical merged results, so the planner is
        # free to bin-pack the groups by predicted packet output.
        groups = _source_groups(scanners)
        costs = [
            sum(_scanner_cost(scanners[i], view, "packets") for i in group)
            for group in groups
        ]
        plan = plan_grouped(costs, groups, workers, schedule)
        args = [
            (
                task.index, [scanners[i] for i in task.items], view,
                chunk_seconds, window, timeout, dark_size, config,
                day_seconds,
            )
            for task in plan.tasks
        ]
    shard_results = run_sharded(
        _run_shard_lazy,
        args,
        policy=retry,
        plan=fault_plan,
        use_processes=use_processes and workers > 1,
        max_workers=workers,
        submit_order=plan.submit_order() if plan is not None else None,
        health=health,
        store=store,
        kind="detect",
        dumps=_dump_detect_state,
        loads=_load_detect_state,
    )
    if plan is not None:
        shard_results = _fold_detect_tasks(
            plan,
            shard_results,
            lambda: StreamingDetector(
                timeout, dark_size, config, day_seconds
            ),
        )
    if telemetry is not None:
        telemetry.total_packets = sum(
            report.packets for _, report in shard_results
        )
        watermarks = [
            report.watermark
            for _, report in shard_results
            if report.watermark is not None
        ]
        if watermarks:
            telemetry.watermark = max(watermarks)
    return _finish_merged(shard_results, telemetry)
