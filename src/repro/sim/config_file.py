"""User-defined scenarios from JSON configuration files.

Downstream users want to run the pipeline against their own worlds —
a bigger telescope, a different scanner mix, another alpha — without
writing Python.  A scenario file is a JSON object whose keys mirror the
:class:`~repro.sim.scenario.Scenario` surface:

.. code-block:: json

    {
      "name": "my-study",
      "seed": 42,
      "start_date": "2022-03-01",
      "days": 10,
      "dark_prefix_length": 20,
      "alpha": 0.002,
      "dispersion_fraction": 0.1,
      "with_isp": true,
      "with_campus": false,
      "flow_days": [3, 4, 5],
      "population": {"n_sweepers": 120, "n_mirai_aggressive": 30}
    }

Unknown keys are rejected (typos must not silently fall back to
defaults).  ``population`` accepts any
:class:`~repro.scanners.population.PopulationConfig` field except the
derived ones (``seed``, ``duration``), which the loader wires up.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import json
from pathlib import Path
from typing import Union

from repro.config import DetectionConfig
from repro.net.internet import InternetConfig
from repro.scanners.population import PopulationConfig
from repro.sim.clock import SimClock
from repro.sim.scenario import Scenario

_TOP_LEVEL_KEYS = {
    "name",
    "seed",
    "start_date",
    "days",
    "seconds_per_day",
    "dark_prefix_length",
    "alpha",
    "dispersion_fraction",
    "event_timeout",
    "chunk_seconds",
    "workers",
    "with_isp",
    "with_campus",
    "flow_days",
    "stream_window_days",
    "population",
}

#: Population fields the file may set (seed/duration are derived).
_POPULATION_KEYS = {
    f.name for f in dataclasses.fields(PopulationConfig)
} - {"seed", "duration"}


def scenario_from_dict(spec: dict) -> Scenario:
    """Build a :class:`Scenario` from a parsed configuration object."""
    unknown = set(spec) - _TOP_LEVEL_KEYS
    if unknown:
        raise ValueError(f"unknown scenario keys: {sorted(unknown)}")

    name = spec.get("name", "custom")
    seed = int(spec.get("seed", 1))
    days = int(spec.get("days", 7))
    if days < 1:
        raise ValueError("days must be >= 1")
    start = _dt.date.fromisoformat(spec.get("start_date", "2022-01-01"))
    clock = SimClock(
        start_date=start,
        seconds_per_day=float(spec.get("seconds_per_day", 86_400.0)),
    )
    duration = days * clock.seconds_per_day

    population_spec = dict(spec.get("population", {}))
    unknown = set(population_spec) - _POPULATION_KEYS
    if unknown:
        raise ValueError(f"unknown population keys: {sorted(unknown)}")
    population = PopulationConfig(
        seed=seed, duration=duration, **population_spec
    )

    detection = DetectionConfig(
        alpha=float(spec.get("alpha", 2e-3)),
        dispersion_fraction=float(spec.get("dispersion_fraction", 0.1)),
    )

    flow_days = tuple(int(d) for d in spec.get("flow_days", ()))
    if any(not 0 <= d < days for d in flow_days):
        raise ValueError("flow_days must lie within the scenario")

    stream_window = None
    if "stream_window_days" in spec:
        w0, w1 = spec["stream_window_days"]
        if not 0 <= w0 < w1 <= days:
            raise ValueError("stream_window_days must be within the scenario")
        stream_window = (
            w0 * clock.seconds_per_day,
            w1 * clock.seconds_per_day,
        )

    workers = int(spec["workers"]) if "workers" in spec else None
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")

    with_campus = bool(spec.get("with_campus", stream_window is not None))
    with_isp = bool(
        spec.get("with_isp", bool(flow_days) or stream_window is not None)
    )
    if (flow_days or stream_window) and not with_isp:
        raise ValueError("flow/stream collection requires with_isp")
    if stream_window and not with_campus:
        raise ValueError("stream collection requires with_campus")

    return Scenario(
        name=name,
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=int(spec.get("dark_prefix_length", 19)),
        population=population,
        detection=detection,
        internet=InternetConfig(seed=seed * 3 + 1),
        with_isp=with_isp,
        with_campus=with_campus,
        flow_days=flow_days,
        stream_window=stream_window,
        event_timeout=(
            float(spec["event_timeout"]) if "event_timeout" in spec else None
        ),
        chunk_seconds=(
            float(spec["chunk_seconds"]) if "chunk_seconds" in spec else None
        ),
        workers=workers,
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a JSON file."""
    path = Path(path)
    with path.open() as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ValueError(f"scenario file must hold a JSON object: {path}")
    return scenario_from_dict(spec)
