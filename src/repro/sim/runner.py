"""Drives a scenario end-to-end: Internet -> scanners -> telescope ->
events -> detections, with lazy ISP flow / stream collection on top.

``run_scenario`` is the single entry point every example and benchmark
uses; the returned :class:`ScenarioResult` caches the expensive pieces
so the analyses can be re-run cheaply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import DEFAULT_CHUNK_SECONDS
from repro.core.detection import DetectionResult, detect_all
from repro.core.events import EventTable, build_events
from repro.core.engine import DetectionEngine
from repro.core.telemetry import PipelineTelemetry
from repro.flows.isp import ISPNetwork, build_campus_like, build_merit_like
from repro.flows.netflow import NetflowExporter
from repro.flows.stream import StreamMonitor
from repro.net.internet import Internet, build_internet
from repro.scanners.population import ScannerPopulation, build_population
from repro.sim.scenario import Scenario
from repro.telescope.capture import DarknetCapture
from repro.telescope.darknet import Telescope


@dataclass
class ScenarioResult:
    """Everything a scenario produced, plus lazy ISP collection."""

    scenario: Scenario
    internet: Internet
    telescope: Telescope
    population: ScannerPopulation
    events: EventTable
    detections: Dict[int, DetectionResult]
    merit: Optional[ISPNetwork] = None
    campus: Optional[ISPNetwork] = None
    #: how the events/detections were produced ("batch" or "streaming").
    mode: str = "batch"
    #: pipeline counters/gauges; populated only by streaming runs.
    telemetry: Optional[PipelineTelemetry] = None
    #: worker count the run was configured with; lazy flow collection
    #: shards its synthesis across this many processes (results are
    #: identical for any value).
    workers: Optional[int] = None
    #: schedule mode the run was configured with (``static``/``packed``/
    #: ``stealing``); lazy flow collection plans its shards the same
    #: way.  Results are identical in every mode.
    schedule: str = "stealing"
    #: checkpoint/run directory the run was configured with; lazy flow
    #: collection checkpoints its shards under ``<dir>/flows``.
    checkpoint_dir: Optional[str] = None
    #: per-shard retry budget the run was configured with.
    shard_retries: Optional[int] = None
    #: materialized capture; ``None`` after lazy-generation runs until
    #: an analysis asks for it through the ``capture`` property.
    _capture: Optional[DarknetCapture] = field(default=None, repr=False)
    _flow_cache: Optional[tuple] = field(default=None, repr=False)
    _stream_cache: Optional[dict] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def capture(self) -> DarknetCapture:
        """The darknet capture, materialized on first access.

        Streaming and parallel runs generate the capture lazily and
        never hold it whole; the packet-level analyses (Table 1, the
        characterization figures...) still can ask for the full batch
        here, which rebuilds it deterministically — bit-identical to
        what the pipeline consumed — and caches it on the result.
        """
        if self._capture is None:
            self._capture = self.telescope.capture(
                self.population.scanners, self.scenario.window()
            )
        return self._capture

    @property
    def clock(self):
        """The scenario's calendar."""
        return self.scenario.clock

    @property
    def dark_size(self) -> int:
        """Number of dark addresses observed."""
        return self.telescope.size

    def ah_sources(self, definition: int = 1) -> set:
        """The AH set for one definition."""
        return self.detections[definition].sources

    def flow_scanners(self) -> list:
        """Scanners materialized at the ISP routers: the union of all
        detected AH plus every acknowledged-org scanner (needed for the
        Table 4 ACKed impact)."""
        wanted = set()
        for result in self.detections.values():
            wanted |= result.sources
        wanted |= self.population.acked.all_fleet_ips()
        return self.population.scanners_for(wanted)

    # ------------------------------------------------------------------
    def collect_flows(
        self,
        exporter: Optional[NetflowExporter] = None,
        seed_offset: int = 101,
        workers: Optional[int] = None,
    ) -> tuple:
        """NetFlow at the ISP for the scenario's flow days.

        Returns ``(flow_table, totals)``; cached after the first call
        with default arguments.  Synthesis shards across ``workers``
        processes (defaulting to the run's worker count) — the table is
        bit-identical for any value, so the cache is shared.
        """
        if exporter is None and self._flow_cache is not None:
            return self._flow_cache
        if self.merit is None:
            raise RuntimeError("scenario was built without an ISP model")
        if not self.scenario.flow_days:
            raise RuntimeError("scenario has no flow days configured")
        if workers is None:
            workers = self.workers
        rng = np.random.default_rng(self.scenario.seed + seed_offset)
        days = self.scenario.flow_days
        window = (
            min(days) * self.clock.seconds_per_day,
            (max(days) + 1) * self.clock.seconds_per_day,
        )
        retry = None
        if self.shard_retries is not None:
            from repro.core.faults import RetryPolicy

            retry = RetryPolicy(max_retries=self.shard_retries)
        flow_checkpoint = None
        if self.checkpoint_dir is not None:
            from pathlib import Path

            flow_checkpoint = Path(self.checkpoint_dir) / "flows"
        table, true_totals = self.merit.collect_scanner_flows(
            self.flow_scanners(),
            window,
            self.clock,
            rng,
            exporter,
            workers=workers,
            schedule=self.schedule,
            telemetry=self.telemetry,
            retry=retry,
            checkpoint_dir=flow_checkpoint,
        )
        totals = self.merit.router_day_totals(days, true_totals, self.clock, rng)
        result = (table, totals)
        if exporter is None:
            self._flow_cache = result
        return result

    def record_streams(
        self,
        ah_sources: Optional[set] = None,
        seed_offset: int = 202,
    ) -> dict:
        """Per-second stream series at both stations (Figure 1/2)."""
        if ah_sources is None and self._stream_cache is not None:
            return self._stream_cache
        if self.merit is None or self.campus is None:
            raise RuntimeError("scenario was built without stream stations")
        window = self.scenario.stream_window
        if window is None:
            raise RuntimeError("scenario has no stream window configured")
        sources = ah_sources if ah_sources is not None else self.ah_sources(1)
        scanners = self.population.scanners_for(sources)
        rng = np.random.default_rng(self.scenario.seed + seed_offset)
        out = {}
        for network in (self.merit, self.campus):
            monitor = StreamMonitor(network=network, clock=self.clock)
            out[network.name] = monitor.record(scanners, window, rng)
        if ah_sources is None:
            self._stream_cache = out
        return out


def _build_world_base(scenario: Scenario) -> tuple:
    """Build the simulated world for a scenario — without the capture.

    Returns ``(internet, telescope, population, merit, campus,
    timeout)``.  Capture materialization is a separate (batch-only)
    step: the streaming and parallel modes generate packets lazily out
    of this world model and never hold the capture whole.
    """
    internet = build_internet(scenario.internet)
    dark_prefix = internet.allocator.allocate(scenario.dark_prefix_length)
    telescope = Telescope.from_prefix(dark_prefix)

    merit = campus = None
    if scenario.with_isp:
        merit, internet = build_merit_like(internet, dark_prefix)
    if scenario.with_campus:
        campus, internet = build_campus_like(internet)

    population = build_population(
        internet, telescope.prefixes.ranges(), scenario.population
    )
    timeout = (
        scenario.event_timeout
        if scenario.event_timeout is not None
        else telescope.default_timeout()
    )
    return internet, telescope, population, merit, campus, timeout


def build_world(scenario: Scenario) -> tuple:
    """Build the simulated world and materialized capture for a scenario.

    Returns ``(internet, telescope, population, capture, merit, campus,
    timeout)`` — the state the batch detection mode starts from.
    Exposed separately from :func:`run_scenario` so benchmarks and
    tools can obtain a scenario's capture without running detection.
    Streaming/parallel runs use :func:`_build_world_base` plus lazy
    generation instead and never call this.
    """
    internet, telescope, population, merit, campus, timeout = (
        _build_world_base(scenario)
    )
    capture = telescope.capture(population.scanners, scenario.window())
    return internet, telescope, population, capture, merit, campus, timeout


def _parallel_events_and_detections(
    telescope: Telescope,
    population: ScannerPopulation,
    timeout: float,
    scenario: Scenario,
    chunk_seconds: float,
    workers: int,
    schedule: str = "stealing",
    retry=None,
    checkpoint_dir=None,
) -> tuple:
    """Run the shard-parallel pipeline with shard-local lazy generation.

    Returns ``(events, detections, telemetry)`` — identical results to
    the serial streaming (and batch) paths.  The parent ships each
    worker its shard's *scanners*; every worker generates its own
    shard's capture locally (:func:`repro.parallel.parallel_generate_detect`),
    so raw packets never cross a process pipe and nothing ever holds the
    full capture.  ``retry``/``checkpoint_dir`` plug the fault-tolerant
    execution layer (:mod:`repro.core.faults`) into the run.
    """
    from repro.parallel import parallel_generate_detect

    telemetry = PipelineTelemetry(chunk_seconds=chunk_seconds)
    result = parallel_generate_detect(
        population.scanners,
        telescope.view(),
        chunk_seconds,
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        workers=workers,
        schedule=schedule,
        window=scenario.window(),
        telemetry=telemetry,
        retry=retry,
        checkpoint_dir=checkpoint_dir,
    )
    return result.events, result.detections, telemetry


def _directory_events_and_detections(
    capture_dir,
    telescope: Telescope,
    timeout: float,
    scenario: Scenario,
    chunk_seconds: float,
    workers: int,
    schedule: str = "stealing",
    retry=None,
    checkpoint_dir=None,
    on_corrupt: str = "raise",
) -> tuple:
    """Run shard-parallel detection over a saved chunk directory.

    The replay twin of :func:`_parallel_events_and_detections`: packets
    come from ``save_packets_chunked`` archives under ``capture_dir``
    instead of being generated, with each archive digest-verified
    against the directory manifest (``on_corrupt`` selects strict or
    quarantine handling of damaged chunks).
    """
    from repro.parallel import parallel_detect_directory

    telemetry = PipelineTelemetry(chunk_seconds=chunk_seconds)
    result = parallel_detect_directory(
        capture_dir,
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        workers=workers,
        schedule=schedule,
        telemetry=telemetry,
        retry=retry,
        checkpoint_dir=checkpoint_dir,
        on_corrupt=on_corrupt,
    )
    return result.events, result.detections, telemetry


def _stream_events_and_detections(
    telescope: Telescope,
    population: ScannerPopulation,
    timeout: float,
    scenario: Scenario,
    chunk_seconds: float,
) -> tuple:
    """Run the lazy-generation -> incremental-detection pipeline.

    Returns ``(events, detections, telemetry)``.  The detections are
    identical to the batch path's (``detect_all`` over ``build_events``)
    — the streaming layer only changes *when* work happens, never what
    is computed — while peak memory is bounded by one chunk plus open
    generation spans and the open-flow state: the capture is generated
    window by window (:meth:`Telescope.stream`), never materialized.

    A thin driver over :class:`~repro.core.engine.DetectionEngine`: the
    runner only times the generation side of the loop; chunk routing,
    detect-stage accounting and the finish-time flush live in the
    engine (shared with the pool paths and the :mod:`repro.serve`
    service).
    """
    source = telescope.stream(
        population.scanners, chunk_seconds, window=scenario.window()
    )
    telemetry = PipelineTelemetry(chunk_seconds=chunk_seconds)
    engine = DetectionEngine(
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        telemetry=telemetry,
    )
    generate_stage = telemetry.stage("generate")

    t_prev = time.perf_counter()
    for chunk in source:
        t_chunked = time.perf_counter()
        generate_stage.add(len(chunk), len(chunk), t_chunked - t_prev)
        engine.ingest(chunk)
        t_prev = time.perf_counter()

    events, detections = engine.finish()
    return events, detections, telemetry


def run_scenario(
    scenario: Scenario,
    *,
    mode: str = "batch",
    chunk_seconds: Optional[float] = None,
    workers: Optional[int] = None,
    schedule: str = "stealing",
    capture_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    shard_retries: Optional[int] = None,
    on_corrupt: str = "raise",
) -> ScenarioResult:
    """Execute a scenario: build the world, capture and detect.

    The simulation order mirrors the real measurement pipeline: the
    address plan and monitored networks exist first, the scanner
    population probes everything, the telescope records its share, the
    event builder summarizes, and the three detectors produce AH lists.

    Args:
        scenario: what to simulate.
        mode: ``"batch"`` builds events and detects over the full
            capture at once; ``"streaming"`` drives the chunked
            capture -> incremental detection pipeline instead (same
            detections, bounded memory, telemetry attached).
        chunk_seconds: streaming window size; defaults to the
            scenario's ``chunk_seconds``, then to
            :data:`repro.config.DEFAULT_CHUNK_SECONDS`.
        workers: shard work across this many worker processes —
            identical results for any count.  With ``mode="streaming"``
            the capture is sharded by source address and detector states
            merged (:mod:`repro.parallel`); in *any* mode the columnar
            ISP flow synthesis behind ``collect_flows`` shards its
            population across the same pool.  Defaults to the scenario's
            ``workers``; ``None`` or 1 runs the serial pipelines.
        schedule: how parallel work is laid out across the pool —
            ``static`` (legacy contiguous/hash shards, one per worker),
            ``packed`` (size-aware bin packing by predicted cost) or
            ``stealing`` (the default: packed plus over-decomposition
            into sub-tasks that idle workers steal).  Results are
            bit-identical in every mode; only load balance changes.
        capture_dir: detect over a ``save_packets_chunked`` directory
            instead of generating the capture (streaming mode only);
            archives are digest-verified against the chunk manifest.
        checkpoint_dir: persist finished shard states here; re-running
            (or :func:`repro.parallel.resume_run`) re-executes only the
            missing shards.  Forces the sharded detection path even with
            one worker, and routes flow collection's checkpoints to
            ``<dir>/flows``.
        shard_retries: per-shard retry budget for transient worker
            failures (default policy when ``None``).
        on_corrupt: ``"raise"`` (default) fails on the first damaged
            chunk archive, naming it; ``"quarantine"`` skips damaged
            archives and accounts them in ``telemetry.health``.
    """
    from repro.core.schedule import validate_mode

    if mode not in ("batch", "streaming"):
        raise ValueError(f"unknown mode: {mode!r}")
    validate_mode(schedule)
    if workers is None:
        workers = scenario.workers
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if capture_dir is not None and mode != "streaming":
        raise ValueError("capture_dir requires mode='streaming'")
    retry = None
    if shard_retries is not None:
        if shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        from repro.core.faults import RetryPolicy

        retry = RetryPolicy(max_retries=shard_retries)
    (
        internet,
        telescope,
        population,
        merit,
        campus,
        timeout,
    ) = _build_world_base(scenario)
    telemetry = None
    capture = None
    if mode == "streaming":
        if chunk_seconds is None:
            chunk_seconds = (
                scenario.chunk_seconds
                if scenario.chunk_seconds is not None
                else DEFAULT_CHUNK_SECONDS
            )
        if capture_dir is not None:
            events, detections, telemetry = _directory_events_and_detections(
                capture_dir, telescope, timeout, scenario, chunk_seconds,
                workers if workers is not None else 1,
                schedule=schedule,
                retry=retry,
                checkpoint_dir=checkpoint_dir,
                on_corrupt=on_corrupt,
            )
        elif (workers is not None and workers > 1) or checkpoint_dir is not None:
            events, detections, telemetry = _parallel_events_and_detections(
                telescope, population, timeout, scenario, chunk_seconds,
                workers if workers is not None else 1,
                schedule=schedule,
                retry=retry,
                checkpoint_dir=checkpoint_dir,
            )
        else:
            events, detections, telemetry = _stream_events_and_detections(
                telescope, population, timeout, scenario, chunk_seconds
            )
    else:
        capture = telescope.capture(population.scanners, scenario.window())
        events = build_events(capture.packets, timeout)
        detections = detect_all(
            events,
            telescope.size,
            scenario.detection,
            scenario.clock.seconds_per_day,
        )
    # The ISP models were built before the population, but their
    # internet snapshot lacks nothing the flows need: router assignment
    # only reads AS country data, which is identical in both snapshots.
    if merit is not None:
        merit.internet = internet
    if campus is not None:
        campus.internet = internet
    return ScenarioResult(
        scenario=scenario,
        internet=internet,
        telescope=telescope,
        population=population,
        events=events,
        detections=detections,
        merit=merit,
        campus=campus,
        mode=mode,
        telemetry=telemetry,
        workers=workers,
        schedule=schedule,
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        shard_retries=shard_retries,
        _capture=capture,
    )
