"""Simulation time and calendar.

All timestamps in the simulator are float seconds since scenario start.
The clock maps those onto calendar days so that the analyses can speak
the paper's language: daily AH lists, weekend/weekday impact contrasts,
per-day packet fractions.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class SimClock:
    """Maps simulation seconds onto calendar days.

    Args:
        start_date: calendar date of simulation second 0.
        seconds_per_day: length of one simulated day.  Scenarios may
            compress days (fewer simulated seconds per day) to keep
            runtimes short; every rate-like metric documents whether it
            is per simulated second or per day.
    """

    start_date: _dt.date = _dt.date(2022, 1, 1)
    seconds_per_day: float = SECONDS_PER_DAY

    def __post_init__(self) -> None:
        if self.seconds_per_day <= 0:
            raise ValueError("seconds_per_day must be positive")

    def day_index(self, ts):
        """Day index (0-based) for a timestamp or array of timestamps."""
        if isinstance(ts, np.ndarray):
            return np.floor(ts / self.seconds_per_day).astype(np.int64)
        return int(ts // self.seconds_per_day)

    def day_start(self, day: int) -> float:
        """Timestamp of the first second of a day."""
        return day * self.seconds_per_day

    def day_bounds(self, day: int) -> tuple[float, float]:
        """Half-open ``[start, end)`` bounds of a day."""
        return self.day_start(day), self.day_start(day + 1)

    def date_of(self, day: int) -> _dt.date:
        """Calendar date of a day index."""
        return self.start_date + _dt.timedelta(days=int(day))

    def label(self, day: int) -> str:
        """Paper-style label, e.g. ``2022-01-15 (Sat)``."""
        date = self.date_of(day)
        return f"{date.isoformat()} ({date.strftime('%a')})"

    def is_weekend(self, day: int) -> bool:
        """True when the day falls on Saturday or Sunday."""
        return self.date_of(day).weekday() >= 5

    def weekday_name(self, day: int) -> str:
        """Three-letter weekday name."""
        return self.date_of(day).strftime("%a")

    def day_count(self, duration: float) -> int:
        """Number of (possibly partial) days in a duration."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return int(np.ceil(duration / self.seconds_per_day))
