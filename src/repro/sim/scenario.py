"""Scenario presets matching the paper's datasets.

Every experiment runs against one of four scenario shapes:

* ``darknet_year_scenario(2021)`` / ``(2022)`` — the Darknet-1 and
  Darknet-2 datasets, scaled from 12/9.5 months to 28 simulated days.
* ``flows_week_scenario()`` — the Flows-1 week (2022-01-15 .. 01-21)
  with NetFlow collection at the three core routers.
* ``flows_day_scenario()`` — the Flows-2 day (2022-10-01).
* ``stream_72h_scenario()`` — the 72-hour mirrored packet streams at
  the ISP and campus stations (late November 2022).

Scaling note: the telescope is a /19 (8,192 dark addresses vs ORION's
~475k) and populations are scaled to match.  All *scale-relative*
parameters keep their paper values (10% dispersion, 1:1000 sampling);
the ECDF tail mass ``alpha`` is rescaled from the paper's 1e-4 because
it is a percentile over the event population, whose size shrinks with
the simulation (see DESIGN.md and EXPERIMENTS.md).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, replace
from typing import Optional

from repro.config import DetectionConfig
from repro.net.internet import InternetConfig
from repro.scanners.population import PopulationConfig
from repro.sim.clock import SimClock

#: ECDF tail mass used by the scaled scenarios (paper: 1e-4 over tens of
#: billions of events; here roughly a million events per run, so the
#: same structural tail sits at a larger percentile).
SCALED_ALPHA = 2.0e-3


@dataclass(frozen=True)
class Scenario:
    """A fully specified simulation run."""

    name: str
    seed: int
    clock: SimClock
    days: int
    dark_prefix_length: int
    population: PopulationConfig
    detection: DetectionConfig
    internet: InternetConfig
    #: build the ISP (three-router) model and campus model.
    with_isp: bool = True
    with_campus: bool = False
    #: day indexes for NetFlow collection (empty = no flow dataset).
    flow_days: tuple = ()
    #: [start, end) for the packet-stream stations (None = no streams).
    stream_window: Optional[tuple] = None
    #: override for the darknet event timeout (None = derive from the
    #: telescope aperture per the paper's rule).
    event_timeout: Optional[float] = None
    #: capture window size for streaming-mode runs (None = the default
    #: from :data:`repro.config.DEFAULT_CHUNK_SECONDS`).
    chunk_seconds: Optional[float] = None
    #: source-shard worker processes for streaming-mode runs (None or 1
    #: = serial; see :mod:`repro.parallel` — results are identical for
    #: any worker count).
    workers: Optional[int] = None

    @property
    def duration(self) -> float:
        """Scenario length in simulated seconds."""
        return self.days * self.clock.seconds_per_day

    def window(self) -> tuple:
        """[start, end) of the whole scenario."""
        return (0.0, self.duration)


def _population_for_year(year: int, days: int, seed: int) -> PopulationConfig:
    """Year-calibrated population sizes.

    2022 has more daily aggressive hitters than 2021 (paper Figure 3:
    1,452 vs 1,779 daily on average) and its Definition-3 population is
    smaller but more extreme (port thresholds 6,542 vs 57,410/day).
    """
    duration = days * 86_400.0
    if year <= 2021:
        # 2021: a modest omniscanner tier — smaller than the ECDF's
        # alpha-tail — so the definition-3 threshold falls into the
        # multiport range (the paper's 6,542 ports/day) and the def-3
        # population is comparatively broad.
        return PopulationConfig(
            seed=seed,
            duration=duration,
            year=2021,
            n_sweepers=460,
            n_mirai_aggressive=115,
            n_mirai_small=2_600,
            n_omniscanners=26,
            omni_port_low=800,
            omni_port_high=5_000,
            n_multiport=380,
            n_small_scanners=32_000,
            n_misconfig=27_000,
        )
    # 2022: the exhaustive-port tier has grown past the alpha-tail, so
    # the threshold jumps into the omniscanner port range (the paper's
    # 57,410 ports/day) and the def-3 population narrows to that tier.
    return PopulationConfig(
        seed=seed,
        duration=duration,
        year=2022,
        n_sweepers=560,
        n_mirai_aggressive=150,
        n_mirai_small=3_000,
        n_omniscanners=55,
        omni_port_low=3_000,
        omni_port_high=9_000,
        omni_targets_low=3e5,
        omni_targets_high=1.2e6,
        n_multiport=400,
        n_small_scanners=30_000,
        n_misconfig=25_000,
    )


def darknet_year_scenario(
    year: int,
    *,
    days: int = 28,
    seed: Optional[int] = None,
    dark_prefix_length: int = 19,
) -> Scenario:
    """The Darknet-1 (2021) / Darknet-2 (2022) longitudinal datasets."""
    seed = seed if seed is not None else 20_000 + year
    clock = SimClock(start_date=_dt.date(year, 1, 1))
    return Scenario(
        name=f"darknet-{year}",
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=dark_prefix_length,
        population=_population_for_year(year, days, seed),
        detection=DetectionConfig(alpha=SCALED_ALPHA),
        internet=InternetConfig(seed=seed * 3 + 1),
        with_isp=False,
    )


def flows_week_scenario(
    *,
    seed: int = 31_022,
    dark_prefix_length: int = 19,
) -> Scenario:
    """Flows-1: the week of 2022-01-15 (Sat) .. 2022-01-21 (Fri).

    The scenario starts a few days earlier so that multi-day AH careers
    are already underway when collection begins, and runs the darknet
    in parallel (the AH lists come from the same period's events).
    """
    start = _dt.date(2022, 1, 10)
    clock = SimClock(start_date=start)
    days = 16
    first_flow_day = (_dt.date(2022, 1, 15) - start).days
    flow_days = tuple(range(first_flow_day, first_flow_day + 7))
    return Scenario(
        name="flows-week",
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=dark_prefix_length,
        population=_population_for_year(2022, days, seed),
        detection=DetectionConfig(alpha=SCALED_ALPHA),
        internet=InternetConfig(seed=seed * 3 + 1),
        with_isp=True,
        with_campus=False,
        flow_days=flow_days,
    )


def _scale_population(config: PopulationConfig, factor: float) -> PopulationConfig:
    """Scale the population counts (used when a scenario's duration is
    much shorter than the 28-day reference, so the per-day density of
    active scanners stays comparable)."""

    def scale(n: int) -> int:
        """Scale one population count, keeping at least one."""
        return max(1, int(round(n * factor)))

    return replace(
        config,
        n_sweepers=scale(config.n_sweepers),
        n_mirai_aggressive=scale(config.n_mirai_aggressive),
        n_mirai_small=scale(config.n_mirai_small),
        n_omniscanners=scale(config.n_omniscanners),
        n_multiport=scale(config.n_multiport),
        n_small_scanners=scale(config.n_small_scanners),
        n_misconfig=scale(config.n_misconfig),
    )


def flows_day_scenario(
    *,
    seed: int = 31_023,
    dark_prefix_length: int = 19,
) -> Scenario:
    """Flows-2: the single day 2022-10-01 (Sat).

    The population is scaled to the 6-day horizon so the per-day density
    of active AH matches the year-scale scenarios (the paper's Oct-1
    impact, ~1.9-2.6%, is measured against the same background Internet
    as the January week).
    """
    start = _dt.date(2022, 9, 27)
    clock = SimClock(start_date=start)
    days = 6
    flow_day = (_dt.date(2022, 10, 1) - start).days
    return Scenario(
        name="flows-day",
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=dark_prefix_length,
        population=_scale_population(
            _population_for_year(2022, days, seed), 0.3
        ),
        detection=DetectionConfig(alpha=SCALED_ALPHA),
        internet=InternetConfig(seed=seed * 3 + 1),
        with_isp=True,
        with_campus=False,
        flow_days=(flow_day,),
    )


def stream_72h_scenario(
    *,
    seed: int = 31_124,
    dark_prefix_length: int = 19,
) -> Scenario:
    """The 72-hour mirrored packet streams (ISP + campus stations).

    Starts on a Sunday so the cumulative AH fraction visibly declines
    into the week, as the paper observes (weekend -> weekday denominator
    growth).
    """
    start = _dt.date(2022, 11, 27)  # Sunday
    clock = SimClock(start_date=start)
    days = 3
    return Scenario(
        name="stream-72h",
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=dark_prefix_length,
        # Scale the population to the 3-day horizon (slightly above the
        # per-day density of the year scenarios: the stream experiment
        # needs a healthy AH packet rate for per-second fractions).
        population=_scale_population(
            _population_for_year(2022, days, seed), 0.15
        ),
        detection=DetectionConfig(alpha=SCALED_ALPHA),
        internet=InternetConfig(seed=seed * 3 + 1),
        with_isp=True,
        with_campus=True,
        stream_window=(0.0, days * 86_400.0),
    )


def tiny_scenario(
    *,
    seed: int = 1_234,
    days: int = 4,
    dark_prefix_length: int = 21,
) -> Scenario:
    """A miniature scenario for tests: seconds to run, same code paths."""
    clock = SimClock(start_date=_dt.date(2022, 1, 1))
    population = PopulationConfig(
        seed=seed,
        duration=days * 86_400.0,
        year=2022,
        n_sweepers=25,
        n_mirai_aggressive=8,
        n_mirai_small=60,
        n_omniscanners=3,
        omni_port_low=300,
        omni_port_high=1_200,
        n_multiport=15,
        n_small_scanners=400,
        n_misconfig=300,
        n_backscatter=8,
        n_spoofed_scans=2,
        acked_fleet_scale=1.0,
    )
    return Scenario(
        name="tiny",
        seed=seed,
        clock=clock,
        days=days,
        dark_prefix_length=dark_prefix_length,
        population=population,
        detection=DetectionConfig(alpha=0.008),
        internet=InternetConfig(seed=seed * 3 + 1, core_as_count=60, tail_as_count=40),
        with_isp=True,
        with_campus=True,
        flow_days=tuple(range(days)),
        stream_window=(0.0, min(days, 1) * 86_400.0),
    )
