"""Simulation engine: clock/calendar, scenario presets and the runner.

The runner pulls in the ISP substrate, which itself needs the clock
from this package — so the runner symbols are loaded lazily to keep the
import graph acyclic.
"""

from repro.sim.clock import SimClock
from repro.sim.scenario import (
    Scenario,
    darknet_year_scenario,
    flows_day_scenario,
    flows_week_scenario,
    stream_72h_scenario,
    tiny_scenario,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "SimClock",
    "darknet_year_scenario",
    "flows_day_scenario",
    "flows_week_scenario",
    "run_scenario",
    "stream_72h_scenario",
    "tiny_scenario",
]


def __getattr__(name):
    if name in ("ScenarioResult", "run_scenario"):
        from repro.sim import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
