"""Packet records in structure-of-arrays form.

The paper's analyses only need five facts per scanning packet: when it
was sent, by whom, to where, on which port, and with which protocol —
plus the IP-ID field that carries the ZMap/Masscan tool fingerprints.
``PacketBatch`` holds those as parallel numpy arrays so that scanner
models can emit millions of packets per scenario and every downstream
join (telescope capture, flow sampling, AH membership) stays vectorized.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class Protocol(enum.IntEnum):
    """Traffic types observed at the telescope.

    The first three are the paper's "scanning packet" types; the last
    two are non-scanning telescope noise (DDoS backscatter: SYN-ACK and
    RST responses from spoofed-victim attacks) that the event pipeline
    must filter out.  Codes for the TCP sub-types are synthetic — the
    real distinction lives in TCP flags, which the simulator folds into
    this one enum for compactness.
    """

    TCP_SYN = 6
    UDP = 17
    ICMP_ECHO = 1
    TCP_SYNACK = 201
    TCP_RST = 202

    def label(self) -> str:
        """Human-readable name matching the paper's Table 3 rows."""
        return _PROTO_LABELS[self]

    @property
    def is_scanning(self) -> bool:
        """Whether the paper counts this type as a scanning packet."""
        return self in SCANNING_PROTOCOLS


#: The paper's §2 "scanning packets": TCP-SYN, UDP, ICMP echo request.
SCANNING_PROTOCOLS = frozenset(
    {Protocol.TCP_SYN, Protocol.UDP, Protocol.ICMP_ECHO}
)

_PROTO_LABELS = {
    Protocol.TCP_SYN: "TCP-SYN",
    Protocol.UDP: "UDP",
    Protocol.ICMP_ECHO: "ICMP Ech Rqst",
    Protocol.TCP_SYNACK: "TCP-SYNACK (backscatter)",
    Protocol.TCP_RST: "TCP-RST (backscatter)",
}

#: Canonical column order of a :class:`PacketBatch` — the one schema
#: every columnar surface (npz archives, shared-memory blocks, the
#: chunk-ingest wire format) lays packets out in.
COLUMNS = ("ts", "src", "dst", "dport", "proto", "ipid")


@dataclass
class PacketBatch:
    """A column-oriented batch of packets.

    Attributes:
        ts: send timestamps, seconds since scenario start (float64).
        src: source addresses (uint32).
        dst: destination addresses (uint32).
        dport: destination ports (uint16; 0 for ICMP).
        proto: protocol codes from :class:`Protocol` (uint8).
        ipid: IP identification field carrying tool fingerprints (uint16).
    """

    ts: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    dport: np.ndarray
    proto: np.ndarray
    ipid: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.ts)
        arrays = (self.src, self.dst, self.dport, self.proto, self.ipid)
        if any(len(a) != n for a in arrays):
            raise ValueError("PacketBatch columns must share one length")
        self.ts = np.asarray(self.ts, dtype=np.float64)
        self.src = np.asarray(self.src, dtype=np.uint32)
        self.dst = np.asarray(self.dst, dtype=np.uint32)
        self.dport = np.asarray(self.dport, dtype=np.uint16)
        self.proto = np.asarray(self.proto, dtype=np.uint8)
        self.ipid = np.asarray(self.ipid, dtype=np.uint16)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "PacketBatch":
        """A batch with zero packets."""
        return cls(
            ts=np.empty(0, dtype=np.float64),
            src=np.empty(0, dtype=np.uint32),
            dst=np.empty(0, dtype=np.uint32),
            dport=np.empty(0, dtype=np.uint16),
            proto=np.empty(0, dtype=np.uint8),
            ipid=np.empty(0, dtype=np.uint16),
        )

    @classmethod
    def concat(cls, batches: Sequence["PacketBatch"]) -> "PacketBatch":
        """Concatenate batches (order preserved, no sorting)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(
            ts=np.concatenate([b.ts for b in batches]),
            src=np.concatenate([b.src for b in batches]),
            dst=np.concatenate([b.dst for b in batches]),
            dport=np.concatenate([b.dport for b in batches]),
            proto=np.concatenate([b.proto for b in batches]),
            ipid=np.concatenate([b.ipid for b in batches]),
        )

    # ------------------------------------------------------------------
    # Core container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ts)

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all columns (no container overhead)."""
        return sum(getattr(self, name).nbytes for name in COLUMNS)

    def select(self, mask_or_index: np.ndarray) -> "PacketBatch":
        """Return a new batch with only the masked/indexed rows."""
        return PacketBatch(
            ts=self.ts[mask_or_index],
            src=self.src[mask_or_index],
            dst=self.dst[mask_or_index],
            dport=self.dport[mask_or_index],
            proto=self.proto[mask_or_index],
            ipid=self.ipid[mask_or_index],
        )

    def sorted_by_time(self) -> "PacketBatch":
        """Return a copy ordered by timestamp (stable)."""
        order = np.argsort(self.ts, kind="stable")
        return self.select(order)

    def time_slice(self, start: float, end: float) -> "PacketBatch":
        """Packets with ``start <= ts < end`` (no sort assumed)."""
        mask = (self.ts >= start) & (self.ts < end)
        return self.select(mask)

    def iter_time_chunks(
        self, chunk_seconds: float, align_to_epoch: bool = True
    ):
        """Yield ``(window_start, window_end, sub_batch)`` per time chunk.

        The batch is time-sorted once and sliced with binary searches, so
        each chunk is a cheap view.  Window edges are computed as
        ``first_edge + i * chunk_seconds`` (never accumulated), so edges
        stay exact over arbitrarily long captures.  With
        ``align_to_epoch`` the first edge is snapped down to a multiple
        of ``chunk_seconds`` (hourly-pcap-style calendar windows);
        otherwise it starts at the first packet's timestamp.  Every
        window in the covered span is yielded, including empty ones.
        """
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        if len(self) == 0:
            return
        batch = self.sorted_by_time()
        first_ts = float(batch.ts[0])
        last_ts = float(batch.ts[-1])
        if align_to_epoch:
            first_edge = math.floor(first_ts / chunk_seconds) * chunk_seconds
        else:
            first_edge = first_ts
        n_chunks = int(math.floor((last_ts - first_edge) / chunk_seconds)) + 1
        # Guard the pathological float case where last_ts lands exactly
        # on the final computed edge (windows are half-open).
        while first_edge + n_chunks * chunk_seconds <= last_ts:
            n_chunks += 1
        edges = first_edge + np.arange(n_chunks + 1, dtype=np.float64) * chunk_seconds
        bounds = np.searchsorted(batch.ts, edges, side="left")
        for i in range(n_chunks):
            yield (
                float(edges[i]),
                float(edges[i + 1]),
                batch.select(slice(int(bounds[i]), int(bounds[i + 1]))),
            )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def unique_sources(self) -> np.ndarray:
        """Sorted unique source addresses."""
        return np.unique(self.src)

    def unique_destinations(self) -> np.ndarray:
        """Sorted unique destination addresses."""
        return np.unique(self.dst)

    def protocol_counts(self) -> dict:
        """Packet counts per :class:`Protocol`."""
        out = {}
        for proto in Protocol:
            out[proto] = int(np.count_nonzero(self.proto == proto.value))
        return out

    def validate_invariants(self) -> None:
        """Raise if the batch violates structural invariants.

        Used by property-based tests and debug assertions: ICMP packets
        must carry port 0 and protocol codes must be known.
        """
        known = np.isin(self.proto, [p.value for p in Protocol])
        if not bool(np.all(known)):
            raise ValueError("unknown protocol code in batch")
        icmp = self.proto == Protocol.ICMP_ECHO.value
        if np.any(self.dport[icmp] != 0):
            raise ValueError("ICMP packets must use dport 0")


def merge_sorted(batches: Iterable[PacketBatch]) -> PacketBatch:
    """Concatenate then time-sort batches; convenience for capture paths."""
    return PacketBatch.concat(list(batches)).sorted_by_time()
