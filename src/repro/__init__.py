"""Reproduction of "Aggressive Internet-Wide Scanners: Network Impact
and Longitudinal Characterization" (CoNEXT 2023).

The package provides:

* a synthetic Internet / scanner / telescope / ISP simulation substrate
  (the paper's restricted datasets cannot be redistributed), and
* the paper's full analysis pipeline: darknet events, the three
  aggressive-hitter definitions, network-impact measurement, and the
  longitudinal characterization and validation studies.

Quickstart::

    from repro import run_study, tiny_scenario

    report = run_study(tiny_scenario())
    print(report.dataset_summary())
    print(len(report.detections[1]), "aggressive hitters (definition 1)")
"""

from repro.config import DetectionConfig, EventConfig, StudyConfig, event_timeout_seconds
from repro.core.detection import detect_all, jaccard
from repro.core.events import build_events
from repro.core.pipeline import StudyReport, run_study
from repro.core.streaming import (
    StreamingDetector,
    StreamingEventBuilder,
    stream_detect,
)
from repro.core.telemetry import PipelineTelemetry
from repro.sim.runner import run_scenario
from repro.telescope.chunks import CaptureChunk, ChunkedCaptureSource
from repro.sim.scenario import (
    Scenario,
    darknet_year_scenario,
    flows_day_scenario,
    flows_week_scenario,
    stream_72h_scenario,
    tiny_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CaptureChunk",
    "ChunkedCaptureSource",
    "DetectionConfig",
    "EventConfig",
    "PipelineTelemetry",
    "Scenario",
    "StreamingDetector",
    "StreamingEventBuilder",
    "StudyConfig",
    "StudyReport",
    "__version__",
    "build_events",
    "darknet_year_scenario",
    "detect_all",
    "event_timeout_seconds",
    "flows_day_scenario",
    "flows_week_scenario",
    "jaccard",
    "run_scenario",
    "run_study",
    "stream_detect",
    "stream_72h_scenario",
    "tiny_scenario",
]
