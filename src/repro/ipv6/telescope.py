"""IPv6 telescope and aggressive-hitter detection.

An IPv6 telescope cannot announce "all unused space"; it observes the
probes sent to *stale hitlist entries* — addresses that were once
responsive but whose prefixes have since gone dark.  Captured probes
are converted into the v4 pipeline's :class:`~repro.packet.PacketBatch`
via 32-bit address interning, so the event builder, the ECDF machinery
and the detection definitions are reused unchanged.

Definition 1 adapts naturally: instead of "10% of the dark IPv4 space",
a source is aggressive when one of its events covers 10% of the *dark
hitlist entries* — the only enumerable notion of coverage in IPv6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import DetectionConfig
from repro.core.detection import DetectionResult, detect_all
from repro.core.events import EventTable, build_events
from repro.ipv6.hitlist import Hitlist
from repro.ipv6.scanner import Ipv6Scanner
from repro.packet import PacketBatch


class AddressInterner:
    """Bijective mapping from 128-bit addresses to dense 32-bit ids."""

    def __init__(self) -> None:
        self._forward: Dict[int, int] = {}
        self._reverse: list = []

    def intern(self, address: int) -> int:
        """Return the id for an address, assigning one if new."""
        address = int(address)
        existing = self._forward.get(address)
        if existing is not None:
            return existing
        new_id = len(self._reverse)
        if new_id >= 2**32:
            raise OverflowError("interner exhausted the 32-bit id space")
        self._forward[address] = new_id
        self._reverse.append(address)
        return new_id

    def resolve(self, interned: int) -> int:
        """Original address for an id."""
        return self._reverse[int(interned)]

    def __len__(self) -> int:
        return len(self._reverse)


@dataclass
class Ipv6Capture:
    """Probes observed at the dark hitlist entries, in v4-pipeline form."""

    packets: PacketBatch
    sources: AddressInterner
    targets: AddressInterner

    def source_addresses(self, interned: Sequence[int]) -> list:
        """Map interned source ids back to IPv6 integers."""
        return [self.sources.resolve(i) for i in interned]


@dataclass
class Ipv6Telescope:
    """Observes traffic to the hitlist's dark entries."""

    hitlist: Hitlist

    @property
    def dark_size(self) -> int:
        """Observable (dark) hitlist entry count."""
        return self.hitlist.dark_size

    def capture(self, scanners: Sequence[Ipv6Scanner]) -> Ipv6Capture:
        """Collect the scanners' probes landing on dark entries."""
        sources = AddressInterner()
        targets = AddressInterner()
        dark = self.hitlist.dark
        ts: list = []
        src: list = []
        dst: list = []
        dport: list = []
        proto: list = []
        for scanner in scanners:
            for probe in scanner.emit(self.hitlist):
                if not dark[probe.target_index]:
                    continue
                ts.append(probe.ts)
                src.append(sources.intern(probe.src))
                dst.append(targets.intern(self.hitlist.addresses[probe.target_index]))
                dport.append(probe.dport)
                proto.append(probe.proto.value)
        n = len(ts)
        batch = PacketBatch(
            ts=np.array(ts, dtype=np.float64),
            src=np.array(src, dtype=np.uint32),
            dst=np.array(dst, dtype=np.uint32),
            dport=np.array(dport, dtype=np.uint16),
            proto=np.array(proto, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        ).sorted_by_time()
        return Ipv6Capture(packets=batch, sources=sources, targets=targets)


@dataclass
class Ipv6Detection:
    """Detection output translated back to IPv6 addresses."""

    results: Dict[int, DetectionResult]
    capture: Ipv6Capture
    events: EventTable

    def hitters(self, definition: int = 1) -> set:
        """AH source addresses (128-bit ints) for one definition."""
        return {
            self.capture.sources.resolve(i)
            for i in self.results[definition].sources
        }


def detect_ipv6_hitters(
    telescope: Ipv6Telescope,
    scanners: Sequence[Ipv6Scanner],
    *,
    timeout: float = 3_600.0,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> Ipv6Detection:
    """End-to-end IPv6 AH detection.

    Args:
        telescope: the dark-hitlist observer.
        scanners: the IPv6 scanner population.
        timeout: event expiration (hitlist probing is sparse, so the
            default is a flat hour rather than the v4 aperture rule).
        config: detection thresholds (scaled alpha recommended).
        day_seconds: day length for the daily breakdowns.

    Returns:
        The capture, events and per-definition results.
    """
    capture = telescope.capture(scanners)
    events = build_events(capture.packets, timeout)
    results = detect_all(
        events,
        telescope.dark_size,
        config or DetectionConfig(alpha=5e-3),
        day_seconds,
    )
    return Ipv6Detection(results=results, capture=capture, events=events)
