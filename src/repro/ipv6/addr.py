"""IPv6 address helpers.

Addresses are 128-bit Python integers; parsing/formatting delegates to
the standard library's ``ipaddress`` module so compressed forms round
trip correctly.
"""

from __future__ import annotations

import ipaddress

MAX_IPV6 = 2**128 - 1


def parse_ipv6(text: str) -> int:
    """Parse an IPv6 address (any RFC 5952 form) to an integer."""
    return int(ipaddress.IPv6Address(text))


def format_ipv6(value: int) -> str:
    """Render an integer as a compressed IPv6 address."""
    if not 0 <= value <= MAX_IPV6:
        raise ValueError(f"address out of range: {value}")
    return str(ipaddress.IPv6Address(value))


def prefix_base_v6(address: int, length: int) -> int:
    """Lowest address of the /length prefix containing ``address``."""
    if not 0 <= length <= 128:
        raise ValueError(f"prefix length out of range: {length}")
    shift = 128 - length
    return (int(address) >> shift) << shift


def in_prefix_v6(address: int, base: int, length: int) -> bool:
    """Prefix membership test."""
    return prefix_base_v6(address, length) == prefix_base_v6(base, length)
