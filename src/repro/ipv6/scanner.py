"""Hitlist-driven IPv6 scanner behaviors.

Richter et al. (IMC'22) find IPv6 scanning dominated by a few heavy
sources working from hitlists, with target selection biased toward
low-byte and EUI-64 addresses (the guessable patterns).  Three tiers
are modeled:

* *aggressive* scanners covering a large fraction of the hitlist —
  the IPv6 analogue of the paper's AH;
* *pattern miners* probing only the guessable patterns;
* *dabblers* probing small random samples (background).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ipv6.hitlist import AddressPattern, Hitlist
from repro.packet import Protocol

#: Service mix for IPv6 probes (web/DNS-heavy, per IMC'22 observations).
_V6_PORTS: tuple = ((443, 0.3), (80, 0.25), (53, 0.15), (22, 0.12), (25, 0.08), (8080, 0.1))


@dataclass
class Ipv6Probe:
    """One probe toward a hitlist entry."""

    ts: float
    src: int
    target_index: int
    dport: int
    proto: Protocol


@dataclass
class Ipv6Scanner:
    """One IPv6 scanning source.

    Attributes:
        src: 128-bit source address.
        behavior: archetype label.
        coverage: fraction of its candidate pool probed per session.
        patterns: restriction of the candidate pool (None = whole list).
        sessions: list of (start, duration) activity windows.
        seed: per-scanner RNG seed.
    """

    src: int
    behavior: str
    coverage: float
    sessions: list
    patterns: tuple = ()
    seed: int = 0

    def candidate_indexes(self, hitlist: Hitlist) -> np.ndarray:
        """The hitlist entries this scanner may target."""
        if not self.patterns:
            return np.arange(len(hitlist), dtype=np.int64)
        wanted = set(self.patterns)
        mask = np.array([p in wanted for p in hitlist.patterns], dtype=bool)
        return np.flatnonzero(mask)

    def emit(self, hitlist: Hitlist) -> list:
        """Generate this scanner's probes against the hitlist."""
        rng = np.random.default_rng((self.seed, 0x76))
        candidates = self.candidate_indexes(hitlist)
        ports = np.array([p for p, _ in _V6_PORTS])
        weights = np.array([w for _, w in _V6_PORTS])
        weights = weights / weights.sum()
        probes: list = []
        for start, duration in self.sessions:
            k = int(rng.binomial(len(candidates), min(self.coverage, 1.0)))
            if k == 0:
                continue
            chosen = rng.choice(candidates, size=k, replace=False)
            ts = start + rng.random(k) * duration
            dports = ports[rng.choice(len(ports), size=k, p=weights)]
            for t, idx, port in zip(ts, chosen, dports):
                probes.append(
                    Ipv6Probe(
                        ts=float(t),
                        src=self.src,
                        target_index=int(idx),
                        dport=int(port),
                        proto=Protocol.TCP_SYN,
                    )
                )
        return probes


def _source_address(rng: np.random.Generator, i: int) -> int:
    """A scanner source under a distinct documentation /48."""
    base = (0x20010DB8 << 96) | (1 << 79)  # disjoint from hitlist prefixes
    return base | (i << 64) | int(rng.integers(1, 2**32))


def build_ipv6_population(
    rng: np.random.Generator,
    duration: float,
    *,
    n_aggressive: int = 6,
    n_pattern_miners: int = 20,
    n_dabblers: int = 150,
) -> list:
    """The IPv6 scanner population.

    Heavily skewed, as observed in the wild: a handful of heavy
    hitlist-sweepers over a long tail of small probers.
    """
    scanners: list = []
    i = 0
    for _ in range(n_aggressive):
        sessions = [
            (rng.uniform(0, duration * 0.5), rng.uniform(0.2, 0.5) * duration)
        ]
        scanners.append(
            Ipv6Scanner(
                src=_source_address(rng, i),
                behavior="v6-aggressive",
                coverage=float(rng.uniform(0.4, 0.95)),
                sessions=sessions,
                seed=1_000 + i,
            )
        )
        i += 1
    for _ in range(n_pattern_miners):
        sessions = [
            (rng.uniform(0, duration * 0.7), rng.uniform(0.05, 0.2) * duration)
        ]
        scanners.append(
            Ipv6Scanner(
                src=_source_address(rng, i),
                behavior="v6-pattern-miner",
                coverage=float(rng.uniform(0.2, 0.6)),
                sessions=sessions,
                patterns=(AddressPattern.LOW_BYTE, AddressPattern.EUI64),
                seed=1_000 + i,
            )
        )
        i += 1
    for _ in range(n_dabblers):
        sessions = [
            (rng.uniform(0, duration * 0.9), rng.uniform(0.01, 0.05) * duration)
        ]
        scanners.append(
            Ipv6Scanner(
                src=_source_address(rng, i),
                behavior="v6-dabbler",
                coverage=float(rng.uniform(0.001, 0.02)),
                sessions=sessions,
                seed=1_000 + i,
            )
        )
        i += 1
    return scanners
