"""IPv6 scanner analysis — the paper's stated future work.

The paper (§6/§7) leaves "analysis of AH IPv6 scanners" to future work,
citing Richter et al. (IMC'22): IPv6 scanning is *hitlist-driven* —
the address space is too vast to sweep, so scanners probe curated lists
of known-responsive addresses (and extrapolated patterns).  This
subpackage implements that model end-to-end:

* a synthetic IPv6 address plan and target *hitlist* with realistic
  address-pattern classes (low-byte, EUI-64, privacy/random);
* hitlist-driven scanner behaviors, including aggressive hitters that
  cover large fractions of the hitlist;
* an IPv6 telescope observing the hitlist entries that have gone dark
  (stale entries now pointing into unused space);
* detection that adapts Definition 1 to hitlist coverage and reuses the
  v4 event/ECDF machinery through 32-bit address interning.
"""

from repro.ipv6.addr import format_ipv6, parse_ipv6
from repro.ipv6.hitlist import AddressPattern, Hitlist, HitlistConfig, build_hitlist
from repro.ipv6.scanner import Ipv6Scanner, build_ipv6_population
from repro.ipv6.telescope import Ipv6Telescope, detect_ipv6_hitters

__all__ = [
    "AddressPattern",
    "Hitlist",
    "HitlistConfig",
    "Ipv6Scanner",
    "Ipv6Telescope",
    "build_hitlist",
    "build_ipv6_population",
    "detect_ipv6_hitters",
    "format_ipv6",
    "parse_ipv6",
]
