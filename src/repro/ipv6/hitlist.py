"""Synthetic IPv6 target hitlists.

IPv6 scanners cannot sweep the space; they work from *hitlists* of
known-responsive addresses (published research hitlists, DNS harvests,
passive collection).  Entries follow recognizable assignment patterns —
low-byte server addresses (``...::1``), EUI-64 SLAAC addresses embedding
a MAC, and high-entropy privacy addresses — and a fraction of any
hitlist is stale: the prefix was renumbered or withdrawn, so probes to
those entries now land in unused ("dark") space, which is exactly what
an IPv6 telescope observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class AddressPattern(enum.Enum):
    """Assignment pattern of a hitlist entry."""

    LOW_BYTE = "low-byte"
    EUI64 = "eui-64"
    PRIVACY = "privacy"


@dataclass(frozen=True)
class HitlistConfig:
    """Knobs for the synthetic hitlist."""

    seed: int = 606
    #: number of origin /48 prefixes.
    prefix_count: int = 400
    #: hitlist entries per prefix (lognormal-ish spread around this).
    entries_per_prefix: float = 60.0
    #: fraction of entries whose prefix has gone dark (telescope bait).
    dark_fraction: float = 0.12
    #: pattern mixture (low-byte, EUI-64, privacy).
    pattern_mix: tuple = (0.45, 0.30, 0.25)

    def __post_init__(self) -> None:
        if not 0 < self.dark_fraction < 1:
            raise ValueError("dark_fraction must be in (0, 1)")
        if abs(sum(self.pattern_mix) - 1.0) > 1e-9:
            raise ValueError("pattern_mix must sum to 1")


@dataclass
class Hitlist:
    """The assembled hitlist.

    Attributes:
        addresses: 128-bit entry addresses (Python ints; the space does
            not fit numpy integer dtypes).
        patterns: per-entry :class:`AddressPattern`.
        dark: boolean array marking entries that now point into unused
            space (the telescope's aperture).
        prefix_of: per-entry index of the owning /48.
    """

    addresses: list
    patterns: list
    dark: np.ndarray
    prefix_of: np.ndarray
    config: HitlistConfig = field(default_factory=HitlistConfig)

    def __len__(self) -> int:
        return len(self.addresses)

    def dark_indexes(self) -> np.ndarray:
        """Entry indexes the telescope can observe."""
        return np.flatnonzero(self.dark)

    @property
    def dark_size(self) -> int:
        """Number of dark entries — the definition-1 denominator."""
        return int(np.count_nonzero(self.dark))

    def pattern_counts(self) -> dict:
        """Entry counts per address pattern."""
        out: dict = {}
        for pattern in self.patterns:
            out[pattern] = out.get(pattern, 0) + 1
        return out


def _entry_address(
    rng: np.random.Generator, prefix_base: int, pattern: AddressPattern
) -> int:
    """One interface identifier under a /48 + random /64 subnet."""
    subnet = int(rng.integers(0, 2**16))
    base = prefix_base | (subnet << 64)
    if pattern is AddressPattern.LOW_BYTE:
        iid = int(rng.integers(1, 256))
    elif pattern is AddressPattern.EUI64:
        mac_high = int(rng.integers(0, 2**24))
        mac_low = int(rng.integers(0, 2**24))
        # EUI-64: OUI | fffe | NIC, with the universal/local bit set.
        iid = ((mac_high ^ 0x020000) << 40) | (0xFFFE << 24) | mac_low
    else:
        iid = int(rng.integers(1, 2**64, dtype=np.uint64))
    return base | iid


def build_hitlist(config: HitlistConfig = HitlistConfig()) -> Hitlist:
    """Build the deterministic synthetic hitlist.

    Prefixes are /48s drawn under 2001:db8::/32 (the documentation
    prefix — the synthetic data can never collide with real networks).
    Dark entries cluster by prefix: renumbering kills whole prefixes,
    not individual hosts.
    """
    rng = np.random.default_rng(config.seed)
    doc_base = 0x20010DB8 << 96
    patterns_pool = list(AddressPattern)

    addresses: list = []
    patterns: list = []
    dark_flags: list = []
    prefix_of: list = []
    dark_prefix = rng.random(config.prefix_count) < config.dark_fraction
    for p in range(config.prefix_count):
        prefix_base = doc_base | (p << 80)
        count = max(1, int(rng.lognormal(np.log(config.entries_per_prefix), 0.8)))
        draws = rng.choice(3, size=count, p=list(config.pattern_mix))
        for d in draws:
            pattern = patterns_pool[int(d)]
            addresses.append(_entry_address(rng, prefix_base, pattern))
            patterns.append(pattern)
            dark_flags.append(bool(dark_prefix[p]))
            prefix_of.append(p)
    return Hitlist(
        addresses=addresses,
        patterns=patterns,
        dark=np.array(dark_flags, dtype=bool),
        prefix_of=np.array(prefix_of, dtype=np.int64),
        config=config,
    )
