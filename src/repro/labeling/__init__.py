"""External-intelligence substrates: acknowledged scanners and honeypots.

Stands in for the two third-party feeds the paper validates against —
the public "Acknowledged Scanners" list and the GreyNoise honeypot
database — neither of which is available offline.
"""

from repro.labeling.acknowledged import (
    AckedOrg,
    AcknowledgedRegistry,
    default_org_specs,
)
from repro.labeling.greynoise import Classification, GreyNoiseDB, build_greynoise

__all__ = [
    "AckedOrg",
    "AcknowledgedRegistry",
    "Classification",
    "GreyNoiseDB",
    "build_greynoise",
    "default_org_specs",
]
