"""A GreyNoise-style distributed honeypot database.

GreyNoise operates honeypot sensors across many cloud regions and tags
every IP seen contacting them (benign / malicious / unknown plus
behavior tags such as "Mirai" or "ZMap Client").  The paper uses a month
of GN data to (i) check that ~99% of darknet-detected AH also appear at
GN — evidence the hitters scan Internet-wide rather than locally — and
(ii) characterize the non-acknowledged AH via tags (Table 9, Figure 6).

This module derives an equivalent database from the simulation's ground
truth: a scanner is "seen" by the distributed sensors with a probability
reflecting how Internet-wide its targeting is, and tags follow its
behavior archetype and favorite service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.fingerprint import Tool
from repro.packet import Protocol
from repro.scanners.base import Scanner


class Classification(enum.Enum):
    """GreyNoise-style intent classification."""

    BENIGN = "benign"
    MALICIOUS = "malicious"
    UNKNOWN = "unknown"


#: Tag derived from the scanner's dominant service, mirroring Table 9.
_PORT_TAGS: dict = {
    (23, Protocol.TCP_SYN): "Telnet Bruteforcer",
    (2323, Protocol.TCP_SYN): "Telnet Bruteforcer",
    (22, Protocol.TCP_SYN): "SSH Bruteforcer",
    (80, Protocol.TCP_SYN): "Web Crawler",
    (443, Protocol.TCP_SYN): "Web Crawler",
    (8080, Protocol.TCP_SYN): "Web Crawler",
    (8443, Protocol.TCP_SYN): "TLS/SSL Crawler",
    (2375, Protocol.TCP_SYN): "Docker Scanner",
    (6443, Protocol.TCP_SYN): "Kubernetes Crawler",
    (6379, Protocol.TCP_SYN): "Redis Scanner",
    (6380, Protocol.TCP_SYN): "Redis Scanner",
    (3389, Protocol.TCP_SYN): "Looks Like RDP Worm",
    (445, Protocol.TCP_SYN): "SMBv1 Crawler",
    (5060, Protocol.UDP): "Sipvicious",
    (0, Protocol.ICMP_ECHO): "Ping Scanner",
    (1433, Protocol.TCP_SYN): "MSSQL Bruteforcer",
    (3306, Protocol.TCP_SYN): "MySQL Scanner",
    (9200, Protocol.TCP_SYN): "Elasticsearch Scanner",
    (8545, Protocol.TCP_SYN): "Ethereum Node Scanner",
    (5555, Protocol.TCP_SYN): "ADB Worm",
    (37215, Protocol.TCP_SYN): "Miniigd UPnP Worm CVE-2014-8361",
    (9530, Protocol.TCP_SYN): "Shenzhen TVT Bruteforcer",
    (5900, Protocol.TCP_SYN): "VNC Scanner",
}

#: Probability a scanner of each archetype is observed by the
#: distributed sensors during a month in which it is active.  Uniform
#: Internet-wide scanners are nearly always seen; targeted noise rarely.
_VISIBILITY: dict = {
    "masscan-sweep": 0.995,
    "mirai": 0.995,
    "research": 0.999,
    "research-moderate": 0.9,
    "omniscanner": 0.99,
    "multiport": 0.9,
    "mirai-small": 0.7,
    "small-scan": 0.5,
    "misconfig": 0.02,
}


@dataclass
class GreyNoiseRecord:
    """One tagged IP in the honeypot database."""

    address: int
    classification: Classification
    tags: tuple


@dataclass
class GreyNoiseDB:
    """Queryable tag database keyed by address."""

    records: Dict[int, GreyNoiseRecord] = field(default_factory=dict)

    def __contains__(self, address: int) -> bool:
        return int(address) in self.records

    def __len__(self) -> int:
        return len(self.records)

    def get(self, address: int) -> Optional[GreyNoiseRecord]:
        """The record for an address, or ``None`` when unseen."""
        return self.records.get(int(address))

    def coverage(self, addresses: Iterable[int]) -> float:
        """Fraction of the given addresses present in the database."""
        addresses = [int(a) for a in addresses]
        if not addresses:
            return 0.0
        hits = sum(1 for a in addresses if a in self.records)
        return hits / len(addresses)

    def classification_counts(self, addresses: Iterable[int]) -> Dict[str, int]:
        """Breakdown of the addresses by GN classification.

        Addresses absent from the database are counted under
        ``"not-seen"`` — the complement of the coverage check.
        """
        out = {c.value: 0 for c in Classification}
        out["not-seen"] = 0
        for address in addresses:
            record = self.records.get(int(address))
            if record is None:
                out["not-seen"] += 1
            else:
                out[record.classification.value] += 1
        return out

    def tag_counts(self, addresses: Iterable[int]) -> Dict[str, int]:
        """IP counts per tag over the given addresses (Table 9)."""
        counts: Dict[str, int] = {}
        for address in addresses:
            record = self.records.get(int(address))
            if record is None:
                continue
            for tag in record.tags:
                counts[tag] = counts.get(tag, 0) + 1
        return counts


def _dominant_service(scanner: Scanner, rng: np.random.Generator) -> tuple:
    """The (port, protocol) the scanner most identifies with."""
    sessions = scanner.sessions
    if not sessions:
        return 0, Protocol.TCP_SYN
    session = sessions[int(rng.integers(0, len(sessions)))]
    if len(session.ports) == 1:
        return int(session.ports[0]), session.proto
    # Multi-port scanners: pick a frequent port for tagging purposes.
    return int(session.ports[int(rng.integers(0, len(session.ports)))]), session.proto


def _tags_for(scanner: Scanner, rng: np.random.Generator) -> tuple:
    tags: list = []
    behavior = scanner.behavior
    if behavior in ("mirai", "mirai-small"):
        tags.append("Mirai")
    if behavior == "omniscanner":
        tags.append("Port Sweeper")
    tools = {s.tool for s in scanner.sessions}
    if Tool.ZMAP in tools:
        tags.append("ZMap Client")
    port, proto = _dominant_service(scanner, rng)
    port_tag = _PORT_TAGS.get((port, proto))
    if port_tag and port_tag not in tags:
        tags.append(port_tag)
    if not tags:
        tags.append(
            "Go HTTP Client" if rng.random() < 0.5 else "Python Requests Client"
        )
    return tuple(tags)


def _classification_for(
    scanner: Scanner, rng: np.random.Generator
) -> Classification:
    if scanner.org is not None:
        return Classification.BENIGN
    behavior = scanner.behavior
    if behavior in ("mirai", "mirai-small"):
        # Botnet traffic is overwhelmingly flagged malicious.
        return (
            Classification.MALICIOUS
            if rng.random() < 0.9
            else Classification.UNKNOWN
        )
    if behavior in ("masscan-sweep", "omniscanner", "multiport"):
        # Figure 6: a large minority malicious, the majority unknown.
        return (
            Classification.MALICIOUS
            if rng.random() < 0.3
            else Classification.UNKNOWN
        )
    return (
        Classification.MALICIOUS
        if rng.random() < 0.15
        else Classification.UNKNOWN
    )


def build_greynoise(
    scanners: Sequence[Scanner],
    rng: np.random.Generator,
    window: Optional[tuple] = None,
) -> GreyNoiseDB:
    """Derive the honeypot database for an observation window.

    Args:
        scanners: the full scanner population (ground truth).
        rng: random stream for visibility draws and tagging.
        window: optional [start, end) restriction; scanners with no
            session overlapping the window are skipped.

    Returns:
        The populated :class:`GreyNoiseDB`.
    """
    db = GreyNoiseDB()
    for scanner in scanners:
        if window is not None:
            active = any(
                s.start < window[1] and s.end > window[0]
                for s in scanner.sessions
            )
            if not active:
                continue
        visibility = _VISIBILITY.get(scanner.behavior, 0.5)
        if rng.random() > visibility:
            continue
        db.records[int(scanner.src)] = GreyNoiseRecord(
            address=int(scanner.src),
            classification=_classification_for(scanner, rng),
            tags=_tags_for(scanner, rng),
        )
    return db
