"""The "Acknowledged Scanners" registry.

The paper uses Collins' public list of scanners that disclose their
intent: 36 organizations with published source IPs, complemented by a
48-keyword reverse-DNS match (because the published lists lag behind
the orgs' actual fleets — the paper found ~7,600 org IPs missing from
the list).  This module reproduces that ecosystem:

* a fixed catalogue of synthetic research organizations;
* a *published list snapshot* covering only part of each org's fleet;
* PTR records for most org IPs, so keyword matching recovers the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.net.rdns import ReverseDNS


@dataclass(frozen=True)
class AckedOrg:
    """One acknowledged scanning organization."""

    slug: str
    name: str
    #: rDNS keyword that identifies the org's scanner hostnames.
    keyword: str
    #: Fraction of the org's fleet present on the published list.
    list_coverage: float = 0.2
    #: Fraction of the org's fleet with resolvable PTR records.
    ptr_coverage: float = 0.95
    #: Relative size of the org's scanner fleet.
    fleet_weight: float = 1.0
    #: Whether the org runs aggressive (AH-grade) surveys at all.
    aggressive: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.list_coverage <= 1:
            raise ValueError("list_coverage must be in [0, 1]")
        if not 0 <= self.ptr_coverage <= 1:
            raise ValueError("ptr_coverage must be in [0, 1]")


def default_org_specs(count: int = 36) -> tuple:
    """The default catalogue of synthetic research organizations.

    Names are generic; a handful of large outfits carry most of the
    fleet weight, echoing the real list where a few organizations
    (large security vendors and universities) dominate.
    """
    majors = (
        AckedOrg("surveycorp", "Survey Corp Research", "surveycorp", 0.5, 0.98, 8.0),
        AckedOrg("netcensus", "Net Census Project", "netcensus", 0.4, 0.95, 6.0),
        AckedOrg("scanlab", "ScanLab University", "scanlab", 0.3, 0.95, 4.0),
        AckedOrg("probewatch", "ProbeWatch Inc", "probewatch", 0.3, 0.9, 3.0),
        AckedOrg("ipatlas", "IP Atlas Observatory", "ipatlas", 0.25, 0.9, 3.0),
        AckedOrg("webmapper", "Web Mapper Foundation", "webmapper", 0.2, 0.9, 2.0),
    )
    minors = tuple(
        AckedOrg(
            slug=f"research-{i:02d}",
            name=f"Research Org {i:02d}",
            keyword=f"research{i:02d}",
            list_coverage=0.15,
            ptr_coverage=0.9,
            fleet_weight=1.0,
            # Roughly a fifth of listed orgs never scan aggressively
            # (the paper matched 29 of 36 orgs as AH over 22 months).
            aggressive=(i % 5 != 0),
        )
        for i in range(len(majors), count)
    )
    return majors + minors


@dataclass
class AcknowledgedRegistry:
    """The acknowledged-scanner ecosystem after fleet assignment.

    Attributes:
        orgs: the organization catalogue.
        fleets: org slug -> array of the org's scanner addresses.
        published: org slug -> set of addresses on the public list
            snapshot (the incomplete view downstream matching works from).
        keywords: the rDNS keyword list (one per org, like the paper's
            48-keyword file).
        rdns: PTR store covering most fleet addresses.
    """

    orgs: tuple
    fleets: Dict[str, np.ndarray] = field(default_factory=dict)
    published: Dict[str, set] = field(default_factory=dict)
    keywords: tuple = ()
    rdns: ReverseDNS = field(default_factory=ReverseDNS)

    @classmethod
    def build(
        cls,
        orgs: Sequence[AckedOrg],
        fleets: Dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> "AcknowledgedRegistry":
        """Assemble the registry from org fleet assignments.

        Args:
            orgs: organization catalogue.
            fleets: org slug -> scanner addresses (from the population
                builder).
            rng: random stream deciding list/PTR coverage.
        """
        registry = cls(orgs=tuple(orgs))
        registry.keywords = tuple(org.keyword for org in orgs)
        for org in orgs:
            fleet = np.asarray(fleets.get(org.slug, np.empty(0)), dtype=np.uint32)
            registry.fleets[org.slug] = fleet
            if len(fleet) == 0:
                registry.published[org.slug] = set()
                continue
            on_list = rng.random(len(fleet)) < org.list_coverage
            registry.published[org.slug] = {int(a) for a in fleet[on_list]}
            has_ptr = rng.random(len(fleet)) < org.ptr_coverage
            registry.rdns.register_many(
                (int(a) for a in fleet[has_ptr]),
                "scan-{dashed}." + org.keyword + ".example",
            )
        return registry

    # ------------------------------------------------------------------
    def published_ips(self) -> set:
        """Union of all published list addresses."""
        out: set = set()
        for ips in self.published.values():
            out |= ips
        return out

    def all_fleet_ips(self) -> set:
        """Union of every org's true fleet (ground truth, not public)."""
        out: set = set()
        for fleet in self.fleets.values():
            out |= {int(a) for a in fleet}
        return out

    def org_of(self, address: int) -> Optional[str]:
        """Ground-truth org of an address, or ``None``."""
        for slug, fleet in self.fleets.items():
            if int(address) in {int(a) for a in fleet}:
                return slug
        return None

    def match(self, address: int) -> Optional[tuple]:
        """Match one address the way the paper does (§5, Table 6).

        Returns ``(org_slug, how)`` where ``how`` is ``"ip"`` for a
        published-list hit or ``"domain"`` for a reverse-DNS keyword
        hit, or ``None`` when the address cannot be attributed.
        The IP match is checked first, mirroring the paper's order.
        """
        addr = int(address)
        for org in self.orgs:
            if addr in self.published[org.slug]:
                return org.slug, "ip"
        record = self.rdns.resolve(addr)
        if record is not None:
            lowered = record.lower()
            for org in self.orgs:
                if org.keyword in lowered:
                    return org.slug, "domain"
        return None

    def match_many(self, addresses: Iterable[int]) -> Dict[int, tuple]:
        """Bulk :meth:`match`; unmatched addresses are omitted."""
        published_index = {
            addr: org.slug
            for org in self.orgs
            for addr in self.published[org.slug]
        }
        out: Dict[int, tuple] = {}
        for address in addresses:
            addr = int(address)
            slug = published_index.get(addr)
            if slug is not None:
                out[addr] = (slug, "ip")
                continue
            record = self.rdns.resolve(addr)
            if record is None:
                continue
            lowered = record.lower()
            for org in self.orgs:
                if org.keyword in lowered:
                    out[addr] = (org.slug, "domain")
                    break
        return out
