"""Series extraction and terminal-friendly rendering for the figures.

The figure benchmarks print the same series the paper plots; for quick
visual sanity checks a unicode sparkline renderer is included.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a series as a unicode sparkline.

    Args:
        values: the series.
        width: optional downsampling width (mean-pooled buckets).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if width is not None and arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _BARS[0] * len(arr)
    scaled = ((arr - lo) / (hi - lo) * (len(_BARS) - 1)).round().astype(int)
    return "".join(_BARS[i] for i in scaled)


def series_stats(values: Sequence[float]) -> dict:
    """min/mean/median/p95/max summary of a series."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"n": 0}
    return {
        "n": int(arr.size),
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def downsample(values: Sequence[float], bucket: int, reduce: str = "mean") -> np.ndarray:
    """Bucket a long per-second series (e.g. to per-minute points).

    Args:
        values: the series.
        bucket: bucket size in samples.
        reduce: "mean", "max" or "sum".
    """
    if bucket < 1:
        raise ValueError("bucket must be >= 1")
    arr = np.asarray(list(values), dtype=np.float64)
    n = (len(arr) // bucket) * bucket
    if n == 0:
        return np.empty(0)
    blocks = arr[:n].reshape(-1, bucket)
    if reduce == "mean":
        return blocks.mean(axis=1)
    if reduce == "max":
        return blocks.max(axis=1)
    if reduce == "sum":
        return blocks.sum(axis=1)
    raise ValueError(f"unknown reduction {reduce!r}")
