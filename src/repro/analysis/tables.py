"""Plain-text table rendering.

The benchmark harness prints each reproduced table in the paper's
layout; these helpers keep the formatting consistent and dependency
free.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def render_percent(fraction: float, digits: int = 2) -> str:
    """``0.0415`` -> ``'4.15%'``."""
    return f"{fraction * 100:.{digits}f}%"


def render_count(value: float) -> str:
    """Human-scaled count: 15_200_000 -> '15.2M'."""
    value = float(value)
    for unit, scale in (("B", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(value) >= scale:
            return f"{value / scale:.1f}{unit}"
    return f"{value:.0f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: column names.
        rows: row cell values (stringified).
        title: optional title line above the table.
        align_right: right-align data columns (numeric tables).

    Returns:
        The table as one string (no trailing newline).
    """
    string_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if align_right else cell.ljust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in string_rows)
    return "\n".join(lines)
