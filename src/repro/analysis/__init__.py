"""Presentation layer: text renderers for the paper's tables/figures."""

from repro.analysis.tables import format_table, render_percent
from repro.analysis.figures import sparkline, series_stats

__all__ = ["format_table", "render_percent", "series_stats", "sparkline"]
