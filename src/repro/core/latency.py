"""Detection latency: how fast does an aggressive scan cross the bar?

The paper's §6 recalls the classic telescope result (Moore et al.):
with a large enough aperture, "one can detect even moderately paced
scans within only a few seconds with very high probability".  For the
address-dispersion definition this is a concrete, measurable quantity:
the time from a qualifying event's first darknet packet until the
event has touched the threshold number of distinct dark addresses.

:func:`detection_latencies` replays the capture per qualifying event
and reports that time-to-threshold; the aperture ablation sweeps the
telescope size to show the latency scaling the paper alludes to
(latency ~ threshold / darknet hit rate, and both scale with aperture —
so the *relative* latency improves with bigger telescopes because the
absolute hit rate grows while the 10% bar grows only linearly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.detection import DetectionResult
from repro.packet import PacketBatch


@dataclass(frozen=True)
class LatencyRecord:
    """Time-to-threshold for one qualifying event."""

    src: int
    dport: int
    proto: int
    start: float
    latency: float
    unique_needed: int

    @property
    def detected_at(self) -> float:
        """Absolute timestamp at which the event crossed the bar."""
        return self.start + self.latency


def _event_latency(
    ts: np.ndarray, dst: np.ndarray, threshold: int
) -> Optional[float]:
    """Seconds from the first packet until `threshold` distinct dsts.

    ``ts`` must be sorted ascending.  Returns None when the event never
    reaches the threshold (should not happen for qualifying events).
    """
    seen: set = set()
    for i in range(len(ts)):
        seen.add(int(dst[i]))
        if len(seen) >= threshold:
            return float(ts[i] - ts[0])
    return None


def detection_latencies(
    packets: PacketBatch,
    detection: DetectionResult,
    dark_size: int,
    dispersion_fraction: float = 0.10,
    max_events: Optional[int] = None,
) -> list:
    """Time-to-threshold for every definition-1 qualifying event.

    Args:
        packets: the darknet capture (time-sorted or not).
        detection: the definition-1 result (its ``qualifying_events``
            drive the replay).
        dark_size: telescope aperture.
        dispersion_fraction: the definition's coverage bar.
        max_events: optional cap for quick looks (the heaviest events
            dominate runtime; ``None`` replays everything).

    Returns:
        List of :class:`LatencyRecord`, one per qualifying event
        (capped), ordered by event start.
    """
    events = detection.qualifying_events
    if events is None or len(events) == 0:
        return []
    threshold = int(np.ceil(dispersion_fraction * dark_size))

    order = np.argsort(events.start, kind="stable")
    indexes = order if max_events is None else order[:max_events]

    # Index packets by flow key once.
    sort = np.lexsort((packets.ts, packets.src, packets.dport, packets.proto))
    s_src = packets.src[sort]
    s_dport = packets.dport[sort]
    s_proto = packets.proto[sort]
    s_ts = packets.ts[sort]
    s_dst = packets.dst[sort]
    # Composite key for searchsorted range extraction.
    key = (
        (s_proto.astype(np.uint64) << np.uint64(48))
        | (s_dport.astype(np.uint64) << np.uint64(32))
        | s_src.astype(np.uint64)
    )

    records = []
    for i in indexes:
        event_key = (
            (np.uint64(events.proto[i]) << np.uint64(48))
            | (np.uint64(events.dport[i]) << np.uint64(32))
            | np.uint64(events.src[i])
        )
        lo = int(np.searchsorted(key, event_key, side="left"))
        hi = int(np.searchsorted(key, event_key, side="right"))
        # Restrict the flow's packets to the event's time span.
        t0 = int(np.searchsorted(s_ts[lo:hi], events.start[i], side="left"))
        t1 = int(np.searchsorted(s_ts[lo:hi], events.end[i], side="right"))
        ts = s_ts[lo + t0 : lo + t1]
        dst = s_dst[lo + t0 : lo + t1]
        latency = _event_latency(ts, dst, threshold)
        if latency is None:
            continue
        records.append(
            LatencyRecord(
                src=int(events.src[i]),
                dport=int(events.dport[i]),
                proto=int(events.proto[i]),
                start=float(events.start[i]),
                latency=latency,
                unique_needed=threshold,
            )
        )
    return records


def latency_summary(records: list) -> dict:
    """Median/percentile summary of detection latencies (seconds)."""
    if not records:
        return {"n": 0}
    latencies = np.array([r.latency for r in records])
    return {
        "n": len(records),
        "median": float(np.median(latencies)),
        "p10": float(np.percentile(latencies, 10)),
        "p90": float(np.percentile(latencies, 90)),
        "max": float(latencies.max()),
    }
