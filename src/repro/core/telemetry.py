"""Operational telemetry for the streaming pipeline.

A live telescope deployment needs to know, per stage, how fast data is
moving (packets/s into the event builder, events/s out of it), how much
state the pipeline is holding (open flows — the only unbounded-looking
structure, which the timeout actually bounds) and how far processing
lags behind the data (watermark lag).  ``PipelineTelemetry`` collects
those from the chunk loop in :func:`repro.sim.runner.run_scenario` and
renders a compact table for the CLI summary.

Nothing here affects results — the telemetry layer only observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StageStats:
    """Throughput accounting for one pipeline stage."""

    name: str
    #: units consumed (packets for capture/build, events for detection).
    items_in: int = 0
    #: units produced (packets chunked, events finalized...).
    items_out: int = 0
    seconds: float = 0.0

    def add(self, items_in: int, items_out: int, seconds: float) -> None:
        self.items_in += int(items_in)
        self.items_out += int(items_out)
        self.seconds += float(seconds)

    @property
    def throughput(self) -> Optional[float]:
        """Items consumed per second of stage time (None before data)."""
        if self.seconds <= 0.0:
            return None
        return self.items_in / self.seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "items_in": self.items_in,
            "items_out": self.items_out,
            "seconds": self.seconds,
            "throughput": self.throughput,
        }


@dataclass
class WorkerStats:
    """Throughput and state gauges for one shard worker.

    Recorded by the shard-parallel path (:mod:`repro.parallel`) after
    the pool joins; the per-worker peak-open gauges sum into the run's
    aggregate memory high-water mark because shards run concurrently.
    """

    shard: int
    packets: int = 0
    events: int = 0
    peak_open_flows: int = 0
    seconds: float = 0.0
    #: wall seconds the worker spent *generating* its shard's capture
    #: (lazy shard-local generation only; 0 when packets were shipped).
    generate_seconds: float = 0.0
    #: RNG span streams derived while generating — the pre-dedup unit
    #: of the batched span derivation (0 when packets were shipped).
    spans_derived: int = 0
    #: derived spans that actually produced packets; the gap to
    #: ``spans_derived`` is derivation work with no emitted packets.
    spans_emitted: int = 0
    #: work the size-aware planner predicted for this shard (0 when the
    #: run used static sharding — no plan existed).
    planned_cost: float = 0.0
    #: schedulable tasks this shard was decomposed into (1 = the shard
    #: ran whole, as static/packed shards do).
    tasks: int = 1
    #: tasks of this shard executed by a different pool process than
    #: its heaviest task — drained off a straggler by an idle worker.
    stolen_tasks: int = 0

    @property
    def throughput(self) -> Optional[float]:
        """Packets consumed per second of worker wall time."""
        if self.seconds <= 0.0:
            return None
        return self.packets / self.seconds

    @property
    def generate_throughput(self) -> Optional[float]:
        """Packets generated per second of worker generation time."""
        if self.generate_seconds <= 0.0:
            return None
        return self.packets / self.generate_seconds

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "packets": self.packets,
            "events": self.events,
            "peak_open_flows": self.peak_open_flows,
            "seconds": self.seconds,
            "generate_seconds": self.generate_seconds,
            "spans_derived": self.spans_derived,
            "spans_emitted": self.spans_emitted,
            "throughput": self.throughput,
            "generate_throughput": self.generate_throughput,
            "planned_cost": self.planned_cost,
            "tasks": self.tasks,
            "stolen_tasks": self.stolen_tasks,
        }


@dataclass
class FlowWorkerStats:
    """Throughput gauges for one flow-synthesis shard worker.

    Recorded by the shard-parallel columnar flow path
    (:func:`repro.parallel.parallel_flow_columns`) after the pool
    joins; rows are true-count flow cells, the unit the synthesis
    stage produces.
    """

    shard: int
    scanners: int = 0
    #: true-count flow cells synthesized (pre-sampling) — NOT the
    #: exported flow rows the NetFlow exporter emits after 1:1000
    #: sampling; see ``benchmarks/test_perf_flows.py`` for both units.
    rows: int = 0
    seconds: float = 0.0
    #: work the size-aware planner predicted for this shard (0 when the
    #: run used static sharding — no plan existed).
    planned_cost: float = 0.0
    #: schedulable tasks this shard was decomposed into.
    tasks: int = 1
    #: tasks of this shard executed by a different pool process than
    #: its heaviest task (work stealing in action).
    stolen_tasks: int = 0

    @property
    def throughput(self) -> Optional[float]:
        """Flow rows produced per second of worker wall time."""
        if self.seconds <= 0.0:
            return None
        return self.rows / self.seconds

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "scanners": self.scanners,
            "rows": self.rows,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "planned_cost": self.planned_cost,
            "tasks": self.tasks,
            "stolen_tasks": self.stolen_tasks,
        }


@dataclass
class ServeStats:
    """Per-tenant ingest-path accounting for the serve layer.

    The always-on service (:mod:`repro.serve`) folds queued wire chunks
    in adaptive micro-batches: the tenant worker drains everything
    queued up to a byte/chunk budget and folds it as one coalesced
    batch.  This block records how that path behaved — how long chunks
    waited in the queue, how many chunks each fold coalesced, and how
    much wall time the folds took.  Nothing here affects results.
    """

    #: wire chunks accepted into the tenant queue (HTTP 202s).
    chunks_received: int = 0
    #: wire bytes accepted into the tenant queue.
    bytes_received: int = 0
    #: coalesced fold calls executed (<= chunks_received).
    folds: int = 0
    #: packets folded into the engine by those calls.
    packets_folded: int = 0
    #: wall seconds spent inside fold calls.
    fold_seconds: float = 0.0
    #: total queue wait (enqueue -> dequeue of the oldest chunk per fold).
    queue_wait_seconds: float = 0.0
    #: worst single queue wait observed.
    max_queue_wait_seconds: float = 0.0
    #: largest number of chunks one fold coalesced.
    max_coalesced_chunks: int = 0
    #: histogram: chunks-coalesced-per-fold -> number of folds.
    coalesce_histogram: Dict[int, int] = field(default_factory=dict)
    #: chunk records appended to the write-ahead journal.
    journal_appends: int = 0
    #: journal bytes written (records incl. framing).
    journal_bytes: int = 0
    #: fsync calls the journal issued (policy-dependent).
    journal_fsyncs: int = 0
    #: journal appends that failed (chunk answered 429, not acked).
    journal_failures: int = 0
    #: chunks answered 202 as already-admitted duplicates (retransmits).
    duplicate_chunks: int = 0
    #: chunks re-folded from the journal at boot/heal time.
    replayed_chunks: int = 0

    def record_enqueued(self, n_bytes: int) -> None:
        """Account one wire chunk accepted into the queue."""
        self.chunks_received += 1
        self.bytes_received += int(n_bytes)

    def record_journal_append(self, n_bytes: int, fsyncs: int = 0) -> None:
        """Account one durable journal append (pre-ack)."""
        self.journal_appends += 1
        self.journal_bytes += int(n_bytes)
        self.journal_fsyncs += int(fsyncs)

    def record_journal_failure(self) -> None:
        """Account one failed journal append (chunk refused, 429)."""
        self.journal_failures += 1

    def record_duplicate(self) -> None:
        """Account one retransmitted chunk deduplicated by digest."""
        self.duplicate_chunks += 1

    def record_replay(self, chunks: int) -> None:
        """Account chunks re-folded from the journal after a restart."""
        self.replayed_chunks += int(chunks)

    def record_fold(
        self,
        chunks: int,
        packets: int,
        seconds: float,
        queue_wait: float,
    ) -> None:
        """Account one coalesced fold call."""
        chunks = int(chunks)
        self.folds += 1
        self.packets_folded += int(packets)
        self.fold_seconds += float(seconds)
        self.queue_wait_seconds += float(queue_wait)
        self.max_queue_wait_seconds = max(
            self.max_queue_wait_seconds, float(queue_wait)
        )
        self.max_coalesced_chunks = max(self.max_coalesced_chunks, chunks)
        self.coalesce_histogram[chunks] = (
            self.coalesce_histogram.get(chunks, 0) + 1
        )

    @property
    def mean_coalesced_chunks(self) -> Optional[float]:
        """Average chunks folded per fold call (None before data)."""
        if self.folds == 0:
            return None
        return sum(
            chunks * count for chunks, count in self.coalesce_histogram.items()
        ) / self.folds

    @property
    def fold_packets_per_second(self) -> Optional[float]:
        """Packets folded per second of fold wall time."""
        if self.fold_seconds <= 0.0:
            return None
        return self.packets_folded / self.fold_seconds

    def as_dict(self) -> dict:
        """JSON-friendly form (histogram keys become strings)."""
        return {
            "chunks_received": self.chunks_received,
            "bytes_received": self.bytes_received,
            "folds": self.folds,
            "packets_folded": self.packets_folded,
            "fold_seconds": self.fold_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "max_queue_wait_seconds": self.max_queue_wait_seconds,
            "max_coalesced_chunks": self.max_coalesced_chunks,
            "mean_coalesced_chunks": self.mean_coalesced_chunks,
            "fold_packets_per_second": self.fold_packets_per_second,
            "coalesce_histogram": {
                str(chunks): count
                for chunks, count in sorted(self.coalesce_histogram.items())
            },
            "journal_appends": self.journal_appends,
            "journal_bytes": self.journal_bytes,
            "journal_fsyncs": self.journal_fsyncs,
            "journal_failures": self.journal_failures,
            "duplicate_chunks": self.duplicate_chunks,
            "replayed_chunks": self.replayed_chunks,
        }


@dataclass
class RunHealth:
    """Fault-tolerance accounting for one run.

    Everything the resilient execution layer (:mod:`repro.core.faults`)
    did to keep the run alive: shard retries, pool respawns after a
    worker died, watchdog interventions, checkpoint traffic, and chunk
    archives quarantined by degraded-mode readers.  All zeros on a
    healthy run; nothing here affects results.
    """

    #: shard attempts re-run after a retryable failure.
    retries: int = 0
    #: process pools torn down and respawned (worker hard-death).
    respawns: int = 0
    #: pools presumed wedged and torn down by the watchdog.
    watchdog_timeouts: int = 0
    #: shard states reloaded from verified checkpoints (work skipped).
    checkpoint_hits: int = 0
    #: shard states persisted to the checkpoint directory.
    checkpoint_writes: int = 0
    #: checkpoints discarded on digest/header mismatch (shard re-run).
    checkpoint_corrupt: int = 0
    #: chunk archives skipped by degraded-mode readers (deduplicated).
    quarantined_chunks: List[str] = field(default_factory=list)

    def record_quarantine(self, path: str) -> None:
        """Account one damaged chunk (idempotent per path — several
        shard workers read the same archives)."""
        if path not in self.quarantined_chunks:
            self.quarantined_chunks.append(path)

    @property
    def quarantined(self) -> int:
        return len(self.quarantined_chunks)

    def any_events(self) -> bool:
        """Whether anything fault-related happened at all."""
        return bool(
            self.retries
            or self.respawns
            or self.watchdog_timeouts
            or self.checkpoint_hits
            or self.checkpoint_writes
            or self.checkpoint_corrupt
            or self.quarantined_chunks
        )

    def summary_rows(self) -> List[tuple]:
        """(label, value) pairs for the CLI telemetry table."""
        rows = [
            ("shard retries", str(self.retries)),
            ("pool respawns", str(self.respawns)),
            ("watchdog timeouts", str(self.watchdog_timeouts)),
            (
                "checkpoints",
                f"{self.checkpoint_hits} reused, "
                f"{self.checkpoint_writes} written, "
                f"{self.checkpoint_corrupt} corrupt",
            ),
            ("quarantined chunks", str(self.quarantined)),
        ]
        rows += [
            ("quarantined", path) for path in self.quarantined_chunks
        ]
        return rows

    def as_dict(self) -> dict:
        """The full health block, with every key present even when all
        counters are zero — JSON consumers (the bench matrix files, the
        service's ``/health`` endpoint) must never key-error on a clean
        run."""
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "watchdog_timeouts": self.watchdog_timeouts,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_corrupt": self.checkpoint_corrupt,
            "quarantined": self.quarantined,
            "quarantined_chunks": list(self.quarantined_chunks),
            "any_events": self.any_events(),
        }


@dataclass
class PipelineTelemetry:
    """Counters and gauges for one streaming pipeline run."""

    chunk_seconds: Optional[float] = None
    chunks: int = 0
    total_packets: int = 0
    total_events: int = 0
    #: high-water mark of the open-flow state (memory gauge).
    peak_open_flows: int = 0
    #: open flows remaining when the run finished (0 after a flush).
    final_open_flows: int = 0
    #: largest single chunk, in packets.
    peak_chunk_packets: int = 0
    #: timestamp of the newest packet folded in.
    watermark: Optional[float] = None
    #: worst observed (chunk end edge - watermark) gap: how stale the
    #: detector's view was, at its worst, relative to the data's clock.
    max_watermark_lag: float = 0.0
    stages: Dict[str, StageStats] = field(default_factory=dict)
    #: per-shard worker gauges; non-empty only for parallel runs.
    worker_stats: List[WorkerStats] = field(default_factory=list)
    #: per-shard flow-synthesis gauges; non-empty only when the columnar
    #: flow stage ran sharded.
    flow_worker_stats: List[FlowWorkerStats] = field(default_factory=list)
    #: fault-tolerance accounting (retries, respawns, checkpoints,
    #: quarantined chunks); all zeros on a healthy run.
    health: RunHealth = field(default_factory=RunHealth)

    def stage(self, name: str) -> StageStats:
        """Get or create the named stage accumulator."""
        if name not in self.stages:
            self.stages[name] = StageStats(name)
        return self.stages[name]

    @property
    def workers(self) -> int:
        """Number of shard workers (0 for serial runs)."""
        return len(self.worker_stats)

    def record_worker(
        self,
        shard: int,
        packets: int,
        events: int,
        peak_open_flows: int,
        seconds: float,
        generate_seconds: float = 0.0,
        spans_derived: int = 0,
        spans_emitted: int = 0,
        planned_cost: float = 0.0,
        tasks: int = 1,
        stolen_tasks: int = 0,
    ) -> None:
        """Fold one shard worker's report into the gauges.

        The run-level ``peak_open_flows`` becomes the *sum* of the
        worker peaks: shards run concurrently, so the fleet's aggregate
        open-flow state is bounded by (and, at the worst moment, close
        to) that sum.
        """
        self.worker_stats.append(
            WorkerStats(
                shard=int(shard),
                packets=int(packets),
                events=int(events),
                peak_open_flows=int(peak_open_flows),
                seconds=float(seconds),
                generate_seconds=float(generate_seconds),
                spans_derived=int(spans_derived),
                spans_emitted=int(spans_emitted),
                planned_cost=float(planned_cost),
                tasks=int(tasks),
                stolen_tasks=int(stolen_tasks),
            )
        )
        self.peak_open_flows = max(
            self.peak_open_flows,
            sum(w.peak_open_flows for w in self.worker_stats),
        )

    def record_flow_worker(
        self,
        shard: int,
        scanners: int,
        rows: int,
        seconds: float,
        planned_cost: float = 0.0,
        tasks: int = 1,
        stolen_tasks: int = 0,
    ) -> None:
        """Fold one flow-synthesis worker's report into the gauges."""
        self.flow_worker_stats.append(
            FlowWorkerStats(
                shard=int(shard),
                scanners=int(scanners),
                rows=int(rows),
                seconds=float(seconds),
                planned_cost=float(planned_cost),
                tasks=int(tasks),
                stolen_tasks=int(stolen_tasks),
            )
        )

    def record_chunk(
        self,
        packets: int,
        events_finalized: int,
        open_flows: int,
        window_end: float,
        watermark: Optional[float],
    ) -> None:
        """Fold one processed chunk into the gauges."""
        self.chunks += 1
        self.total_packets += int(packets)
        self.total_events += int(events_finalized)
        self.peak_open_flows = max(self.peak_open_flows, int(open_flows))
        self.peak_chunk_packets = max(self.peak_chunk_packets, int(packets))
        if watermark is not None:
            self.watermark = watermark
            self.max_watermark_lag = max(
                self.max_watermark_lag, float(window_end) - float(watermark)
            )

    # ------------------------------------------------------------------
    def summary_rows(self) -> List[tuple]:
        """(label, value) pairs for the CLI telemetry table."""
        rows: List[tuple] = [
            ("chunks", str(self.chunks)),
            ("chunk seconds", _fmt_opt(self.chunk_seconds)),
            ("packets", f"{self.total_packets:,}"),
            ("events", f"{self.total_events:,}"),
            ("peak open flows", f"{self.peak_open_flows:,}"),
            ("final open flows", f"{self.final_open_flows:,}"),
            ("peak chunk packets", f"{self.peak_chunk_packets:,}"),
            ("watermark", _fmt_opt(self.watermark)),
            ("max watermark lag", f"{self.max_watermark_lag:.1f}s"),
        ]
        if self.worker_stats:
            rows.append(("workers", str(self.workers)))
            for worker in self.worker_stats:
                throughput = worker.throughput
                rate = (
                    f"{throughput:,.0f}/s" if throughput is not None else "n/a"
                )
                detail = (
                    f"{worker.packets:,} pkts, {worker.events:,} events, "
                    f"peak {worker.peak_open_flows:,} open, "
                    f"{worker.seconds:.2f}s ({rate})"
                )
                if worker.generate_seconds > 0.0:
                    gen = worker.generate_throughput
                    gen_rate = f"{gen:,.0f}/s" if gen is not None else "n/a"
                    detail += (
                        f", gen {worker.generate_seconds:.2f}s ({gen_rate})"
                    )
                if worker.spans_derived > 0:
                    detail += (
                        f", spans {worker.spans_derived:,} derived / "
                        f"{worker.spans_emitted:,} emitted"
                    )
                if worker.tasks > 1 or worker.planned_cost > 0.0:
                    detail += (
                        f", plan {worker.planned_cost:,.0f} over "
                        f"{worker.tasks} task(s), "
                        f"{worker.stolen_tasks} stolen"
                    )
                rows.append((f"worker {worker.shard}", detail))
        for worker in self.flow_worker_stats:
            throughput = worker.throughput
            rate = (
                f"{throughput:,.0f} rows/s"
                if throughput is not None
                else "n/a"
            )
            detail = (
                f"{worker.scanners:,} scanners, {worker.rows:,} rows, "
                f"{worker.seconds:.2f}s ({rate})"
            )
            if worker.tasks > 1 or worker.planned_cost > 0.0:
                detail += (
                    f", plan {worker.planned_cost:,.0f} over "
                    f"{worker.tasks} task(s), {worker.stolen_tasks} stolen"
                )
            rows.append((f"flows worker {worker.shard}", detail))
        if self.health.any_events():
            rows.extend(self.health.summary_rows())
        for stage in self.stages.values():
            throughput = stage.throughput
            rate = (
                f"{throughput:,.0f}/s" if throughput is not None else "n/a"
            )
            rows.append(
                (
                    f"stage {stage.name}",
                    f"{stage.items_in:,} in, {stage.items_out:,} out, "
                    f"{stage.seconds:.2f}s ({rate})",
                )
            )
        return rows

    def as_dict(self) -> dict:
        """JSON-friendly form for reports."""
        return {
            "chunk_seconds": self.chunk_seconds,
            "chunks": self.chunks,
            "total_packets": self.total_packets,
            "total_events": self.total_events,
            "peak_open_flows": self.peak_open_flows,
            "final_open_flows": self.final_open_flows,
            "peak_chunk_packets": self.peak_chunk_packets,
            "watermark": self.watermark,
            "max_watermark_lag": self.max_watermark_lag,
            "stages": {k: v.as_dict() for k, v in self.stages.items()},
            "workers": [w.as_dict() for w in self.worker_stats],
            "flow_workers": [w.as_dict() for w in self.flow_worker_stats],
            "health": self.health.as_dict(),
        }


def _fmt_opt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:,.1f}"
