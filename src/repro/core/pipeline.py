"""End-to-end study orchestration.

``run_study`` executes a scenario and wraps the result in a
:class:`StudyReport` whose methods compute every table and figure of
the paper from the simulated datasets.  The benchmarks, the examples
and the CLI all go through this one surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core import characterize, impact, lists, validation
from repro.core.detection import definition_overlap, jaccard
from repro.labeling.greynoise import GreyNoiseDB, build_greynoise
from repro.sim.runner import ScenarioResult, run_scenario
from repro.sim.scenario import Scenario


@dataclass
class StudyReport:
    """Computed views over one scenario's datasets."""

    result: ScenarioResult
    _gn_cache: Optional[GreyNoiseDB] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Shared ingredients
    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The scenario's calendar."""
        return self.result.clock

    @property
    def detections(self):
        """Per-definition detection results."""
        return self.result.detections

    def greynoise(self) -> GreyNoiseDB:
        """The honeypot database for the scenario window (cached)."""
        if self._gn_cache is None:
            rng = np.random.default_rng(self.result.scenario.seed + 909)
            self._gn_cache = build_greynoise(
                self.result.population.scanners,
                rng,
                self.result.scenario.window(),
            )
        return self._gn_cache

    def acked_match(self, definition: int = 1) -> validation.AckedMatchResult:
        """Acknowledged-scanner attribution for one definition."""
        return validation.match_acknowledged(
            self.detections[definition].sources,
            self.result.population.acked,
            self.result.capture,
        )

    # ------------------------------------------------------------------
    # Table 1 — dataset description
    # ------------------------------------------------------------------
    def dataset_summary(self) -> dict:
        """Table 1: packets, sources, events, dark size, days."""
        summary = self.result.capture.summary()
        summary["events"] = len(self.result.events)
        summary["days"] = self.result.scenario.days
        return summary

    # ------------------------------------------------------------------
    # Tables 2-4, 8 — network impact
    # ------------------------------------------------------------------
    def impact_cells(self, definition: int = 1) -> list:
        """Table 2: per-(router, day) AH packet volume and share."""
        flows, totals = self.result.collect_flows()
        return impact.daily_impact(
            flows, totals, self.detections[definition].sources
        )

    def protocol_table(self) -> Dict[int, dict]:
        """Table 3: darknet-vs-flow protocol mix per definition."""
        flows, _ = self.result.collect_flows()
        flow_day = max(self.result.scenario.flow_days)
        day_flows = flows.select(flows.day == flow_day)
        batch = self.result.capture.day_slice(
            flow_day, self.clock.seconds_per_day
        )
        out = {}
        for definition, result in self.detections.items():
            out[definition] = impact.protocol_breakdown(
                batch, day_flows, result.sources
            )
        return out

    def acked_impact_table(self) -> Dict[int, dict]:
        """Table 4: ACKed scanners' impact per router per definition."""
        flows, totals = self.result.collect_flows()
        flow_day = max(self.result.scenario.flow_days)
        out = {}
        for definition in sorted(self.detections):
            matched = self.acked_match(definition).matched_sources()
            out[definition] = impact.acked_impact(
                flows, totals, matched, day=flow_day
            )
        return out

    def router_coverage_table(self) -> Dict[int, list]:
        """Table 8: per-definition router coverage of the active AH."""
        flows, _ = self.result.collect_flows()
        flow_days = set(self.result.scenario.flow_days)
        out = {}
        for definition, result in self.detections.items():
            active = {
                day: srcs
                for day, srcs in result.daily_active.items()
                if day in flow_days
            }
            out[definition] = impact.router_coverage(
                flows, active, self.result.merit.router_count
            )
        return out

    # ------------------------------------------------------------------
    # Table 5 / 7 — origins and definition overlaps
    # ------------------------------------------------------------------
    def origins_table(self, definition: int = 1, top_n: int = 10) -> tuple:
        """Table 5: top origin networks with ACKed counts."""
        acked = self.acked_match(definition).matched_sources()
        return characterize.origins(
            self.detections[definition].sources,
            self.result.internet.registry,
            self.result.capture,
            acked_sources=acked,
            top_n=top_n,
        )

    def definition_overlap_table(self) -> dict:
        """Table 7: populations and intersections across definitions."""
        return definition_overlap(
            self.detections, self.result.internet.registry
        )

    def definition_jaccard(self, a: int = 1, b: int = 2) -> float:
        """Jaccard similarity of two definitions' AH sets."""
        return jaccard(self.detections[a].sources, self.detections[b].sources)

    # ------------------------------------------------------------------
    # Table 6 / 9, Figure 6 — validation
    # ------------------------------------------------------------------
    def acked_validation_table(self) -> Dict[int, validation.AckedMatchResult]:
        """Table 6: ACKed matching per definition."""
        return {d: self.acked_match(d) for d in sorted(self.detections)}

    def greynoise_overlap(self, definition: int = 1) -> float:
        """Average daily honeypot coverage of the active AH."""
        return validation.greynoise_overlap(
            self.detections[definition].daily_active, self.greynoise()
        )

    def greynoise_breakdown(self, definition: int = 1) -> Dict[str, int]:
        """Figure 6 (left): intent classification of the AH."""
        matched = self.acked_match(definition).matched_sources()
        return validation.greynoise_breakdown(
            self.detections[definition].sources, matched, self.greynoise()
        )

    def greynoise_tags_table(self, definition: int = 1, top_n: int = 20) -> list:
        """Table 9: top honeypot tags of the non-ACKed AH."""
        matched = self.acked_match(definition).matched_sources()
        return validation.greynoise_tags(
            self.detections[definition].sources,
            matched,
            self.greynoise(),
            top_n=top_n,
        )

    # ------------------------------------------------------------------
    # Figures 3, 4, 6R — characterization
    # ------------------------------------------------------------------
    def temporal_trends(self, definition: int = 1) -> list:
        """Figure 3: daily/active AH counts and packet shares."""
        return characterize.temporal_trends(
            self.result.events,
            self.detections[definition],
            range(self.result.scenario.days),
            self.clock.seconds_per_day,
        )

    def top_ports(self, definition: int = 1, top_n: int = 25) -> list:
        """Figure 4: top targeted services with tool fingerprints."""
        return characterize.top_ports(
            self.result.capture,
            self.detections[definition].sources,
            top_n=top_n,
        )

    def zipf_contribution(self, definition: int = 1) -> np.ndarray:
        """Figure 6 (right): cumulative AH traffic by ranked source."""
        return characterize.zipf_contribution(
            self.result.capture, self.detections[definition].sources
        )

    def port_consistency(self, definition: int = 1) -> list:
        """Figure 5: per-port AH shares, darknet vs flows."""
        flows, _ = self.result.collect_flows()
        flow_day = max(self.result.scenario.flow_days)
        day_flows = flows.select(flows.day == flow_day)
        batch = self.result.capture.day_slice(
            flow_day, self.clock.seconds_per_day
        )
        daily = self.detections[definition].active_on(flow_day)
        return impact.port_consistency(batch, day_flows, daily)

    # ------------------------------------------------------------------
    # Figures 1-2 — streams
    # ------------------------------------------------------------------
    def stream_series(self) -> dict:
        """Figures 1-2: per-second station series."""
        return self.result.record_streams()

    # ------------------------------------------------------------------
    # Operational lists
    # ------------------------------------------------------------------
    def daily_blocklist(self, day: int) -> lists.DailyBlocklist:
        """The operational artifact: one day's annotated AH list."""
        acked = self.acked_match(1).matched_sources()
        return lists.build_daily_blocklist(
            day,
            self.detections,
            self.result.capture,
            self.clock.seconds_per_day,
            registry=self.result.internet.registry,
            acked_sources=acked,
        )


def run_study(
    scenario: Scenario,
    *,
    mode: str = "batch",
    chunk_seconds: Optional[float] = None,
    workers: Optional[int] = None,
    schedule: str = "stealing",
    capture_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    shard_retries: Optional[int] = None,
    on_corrupt: str = "raise",
) -> StudyReport:
    """Run a scenario and wrap it for analysis.

    ``mode="streaming"`` routes detection through the chunked pipeline
    (identical results, bounded memory, telemetry on the result);
    ``workers=N`` additionally shards the capture by source across N
    worker processes (:mod:`repro.parallel`) — still identical results,
    with ``schedule`` picking the shard layout (``static``/``packed``/
    ``stealing``; see :mod:`repro.core.schedule`).
    The remaining keywords plug the fault-tolerant execution layer in:
    ``capture_dir`` detects over saved digest-verified chunk archives,
    ``checkpoint_dir`` persists shard states for crash/resume,
    ``shard_retries`` bounds per-shard retries, and ``on_corrupt``
    selects strict vs quarantine handling of damaged archives — see
    :func:`repro.sim.runner.run_scenario`.
    """
    return StudyReport(
        result=run_scenario(
            scenario,
            mode=mode,
            chunk_seconds=chunk_seconds,
            workers=workers,
            schedule=schedule,
            capture_dir=capture_dir,
            checkpoint_dir=checkpoint_dir,
            shard_retries=shard_retries,
            on_corrupt=on_corrupt,
        )
    )
