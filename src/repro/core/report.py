"""One-shot full study reports.

``render_full_report`` walks a :class:`~repro.core.pipeline.StudyReport`
and renders every analysis the scenario supports into a single text
document — the artifact an operator or reviewer reads end-to-end.  The
CLI exposes it as ``repro-scanners report``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.figures import sparkline
from repro.analysis.tables import format_table, render_count, render_percent
from repro.core.churn import churn_summary, staleness, survival_curve
from repro.core.pipeline import StudyReport
from repro.packet import Protocol
from repro.scanners.ports import service_label


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}"


def _dataset_block(report: StudyReport) -> str:
    summary = report.dataset_summary()
    capture = report.result.capture
    ah = report.detections[1].sources
    ah_packets = capture.packets_from(ah)
    rows = [
        ("scenario", report.result.scenario.name),
        ("days", summary["days"]),
        ("dark IPs", f"{summary['dark_size']:,}"),
        ("darknet packets", f"{summary['packets']:,}"),
        ("source IPs", f"{summary['source_ips']:,}"),
        ("darknet events", f"{summary['events']:,}"),
        (
            "AH (def 1)",
            f"{len(ah):,} "
            f"({render_percent(len(ah) / max(summary['source_ips'], 1))} of sources, "
            f"{render_percent(ah_packets / max(summary['packets'], 1), 1)} of packets)",
        ),
    ]
    return format_table(["metric", "value"], rows, align_right=False)


def _detection_block(report: StudyReport) -> str:
    rows = []
    for definition, result in sorted(report.detections.items()):
        rows.append(
            (
                f"Definition {definition}",
                len(result),
                f"{result.threshold:,.0f}",
            )
        )
    table = format_table(["definition", "AH", "threshold"], rows)
    jaccard = report.definition_jaccard()
    return f"{table}\nJaccard(def1, def2) = {jaccard:.2f}"


def _trends_block(report: StudyReport) -> str:
    points = report.temporal_trends()
    rows = [
        (
            report.clock.label(p.day),
            p.daily_new_ah,
            p.active_ah,
            p.all_daily_sources,
            render_percent(p.ah_packet_share, 1),
        )
        for p in points
    ]
    table = format_table(
        ["day", "daily AH", "active AH", "all sources", "AH pkt share"], rows
    )
    spark = sparkline([p.active_ah for p in points], width=40)
    return f"{table}\nactive AH/day: {spark}"


def _ports_block(report: StudyReport) -> str:
    rows = []
    for i, row in enumerate(report.top_ports(top_n=15), start=1):
        rows.append(
            (
                f"#{i}",
                service_label(row.port, Protocol(row.proto)),
                f"{row.packets:,}",
                render_percent(
                    (row.zmap_packets + row.masscan_packets) / row.packets, 0
                ),
            )
        )
    return format_table(
        ["rank", "service", "AH packets", "ZMap+Masscan"],
        rows,
        align_right=False,
    )


def _origins_block(report: StudyReport) -> str:
    rows_data, totals = report.origins_table()
    rows = [
        (
            r.label,
            f"{r.unique_ips}" + (f" ({r.acked_ips})" if r.acked_ips else ""),
            r.unique_slash24,
            f"{r.packets:,}",
        )
        for r in rows_data
    ]
    table = format_table(
        ["origin", "/32s (ACKed)", "/24s", "packets"], rows, align_right=False
    )
    count, share = totals["ips"]
    return f"{table}\ntop-10 hold {render_percent(share, 0)} of AH addresses"


def _validation_block(report: StudyReport) -> str:
    acked = report.acked_match()
    overlap = report.greynoise_overlap()
    breakdown = report.greynoise_breakdown()
    lines: List[str] = [
        f"acknowledged: {acked.total_ips} IPs "
        f"({acked.ip_matches} list / {acked.domain_matches} rDNS) from "
        f"{acked.orgs} orgs, {render_percent(acked.packets_share_of_ah, 1)} "
        "of AH packets",
        f"honeypot overlap of daily AH: {render_percent(overlap, 1)}",
        "intent of non-ACKed AH: "
        + ", ".join(
            f"{k}={v}" for k, v in sorted(breakdown.items(), key=lambda kv: -kv[1])
        ),
    ]
    tags = report.greynoise_tags_table(top_n=8)
    lines.append(
        "top tags: " + ", ".join(f"{t} ({c})" for t, c in tags)
    )
    return "\n".join(lines)


def _impact_block(report: StudyReport) -> str:
    cells = report.impact_cells()
    by_day: dict = {}
    for cell in cells:
        by_day.setdefault(cell.day, {})[cell.router] = cell
    rows = []
    for day in sorted(by_day):
        row = [report.clock.label(day)]
        for router in sorted(by_day[day]):
            cell = by_day[day][router]
            row.append(
                f"{render_count(cell.ah_packets)} ({render_percent(cell.fraction)})"
            )
        rows.append(row)
    headers = ["day"] + [
        f"Router-{r + 1}" for r in sorted({c.router for c in cells})
    ]
    return format_table(headers, rows, align_right=False)


def _churn_block(report: StudyReport) -> str:
    detection = report.detections[1]
    summary = churn_summary(detection)
    curve = survival_curve(detection, max_days=5)
    lines = [
        f"day-over-day retention: {render_percent(summary['mean_retention'], 1)}"
        f" (Jaccard {summary['mean_jaccard']:.2f}), "
        f"{summary['mean_arrivals']:.0f} new AH/day",
        "survival: "
        + " ".join(
            f"+{k}d={render_percent(float(v), 0)}" for k, v in enumerate(curve)
        ),
        f"3-day-old list freshness: {render_percent(staleness(detection, 3), 1)}",
    ]
    return "\n".join(lines)


def render_full_report(report: StudyReport) -> str:
    """Render every supported analysis of a study into one document."""
    blocks = [
        "Aggressive Internet-Wide Scanners — full study report",
        _section("Dataset"),
        _dataset_block(report),
        _section("Detection (the three AH definitions)"),
        _detection_block(report),
        _section("Temporal trends"),
        _trends_block(report),
        _section("Top targeted services"),
        _ports_block(report),
        _section("Origins"),
        _origins_block(report),
        _section("Validation (acknowledged lists + honeypots)"),
        _validation_block(report),
        _section("List churn"),
        _churn_block(report),
    ]
    if report.result.scenario.flow_days and report.result.merit is not None:
        blocks += [_section("Network impact (sampled flows)"), _impact_block(report)]
    if (
        report.result.scenario.stream_window is not None
        and report.result.campus is not None
    ):
        streams = report.stream_series()
        rows = [
            (
                name,
                render_percent(series.summary()["overall_fraction"], 3),
                f"{series.peak_total_pps():,}",
            )
            for name, series in streams.items()
        ]
        blocks += [
            _section("Network impact (packet streams)"),
            format_table(
                ["station", "AH fraction", "peak pps"], rows, align_right=False
            ),
        ]
    return "\n".join(blocks) + "\n"
