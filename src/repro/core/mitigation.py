"""Blocklist deployment simulation — what blocking would actually save.

The paper's conclusion proposes "blocking malicious ones (e.g., the
non-ACKed ones) either at the 'edge' of an ISP or as they transit the
Internet".  This module quantifies that deployment against the
simulated ISP: given the daily blocklists and the router flow data, how
many packets would border filters have dropped — per router, per day,
under realistic operational choices:

* **policy** — block every listed AH, or only the non-acknowledged
  ones (operators typically spare disclosed research scanners);
* **list lag** — a list compiled from day *d*'s darknet observations
  can only be deployed from day *d+lag* (compile/distribute delay), so
  churn erodes effectiveness;
* **list size cap** — TCAM/filter budgets cap the deployable entries,
  taking the top-k by packet volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.lists import DailyBlocklist
from repro.flows.netflow import FlowTable


@dataclass(frozen=True)
class MitigationCell:
    """Effect of the deployed filter at one (router, day)."""

    router: int
    day: int
    blocked_packets: int
    ah_packets: int
    total_packets: int

    @property
    def ah_coverage(self) -> float:
        """Share of the AH packet volume the filter removed."""
        if self.ah_packets <= 0:
            return 0.0
        return self.blocked_packets / self.ah_packets

    @property
    def relief(self) -> float:
        """Share of *all* router packets the filter removed."""
        if self.total_packets <= 0:
            return 0.0
        return self.blocked_packets / self.total_packets


def deployed_list_for_day(
    blocklists: Dict[int, DailyBlocklist],
    day: int,
    *,
    lag_days: int = 1,
    max_entries: Optional[int] = None,
    include_acknowledged: bool = False,
) -> set:
    """The filter contents active on ``day`` under the given policy.

    The deployed list is the newest blocklist whose compilation day is
    at least ``lag_days`` before ``day``; an empty set when none is old
    enough.
    """
    if lag_days < 0:
        raise ValueError("lag_days must be >= 0")
    eligible = [d for d in blocklists if d <= day - lag_days]
    if not eligible:
        return set()
    blocklist = blocklists[max(eligible)]
    entries = (
        blocklist.entries
        if include_acknowledged
        else blocklist.non_acknowledged()
    )
    if max_entries is not None:
        entries = sorted(entries, key=lambda e: e.packets, reverse=True)[
            :max_entries
        ]
    return {e.address for e in entries}


def simulate_blocking(
    flows: FlowTable,
    totals: Dict[tuple, int],
    blocklists: Dict[int, DailyBlocklist],
    ah_sources: set,
    *,
    lag_days: int = 1,
    max_entries: Optional[int] = None,
    include_acknowledged: bool = False,
) -> list:
    """Replay the flow days with a border filter in place.

    Args:
        flows: scanner flow records at the routers.
        totals: (router, day) -> total packets processed.
        blocklists: day -> compiled blocklist (from the darknet).
        ah_sources: the definition's AH set (the coverage denominator).
        lag_days / max_entries / include_acknowledged: deployment policy.

    Returns:
        List of :class:`MitigationCell`, ordered by (day, router).
    """
    ah_sorted = np.array(sorted(int(a) for a in ah_sources), dtype=np.uint32)
    cells = []
    for (router, day), total in sorted(
        totals.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        deployed = deployed_list_for_day(
            blocklists,
            day,
            lag_days=lag_days,
            max_entries=max_entries,
            include_acknowledged=include_acknowledged,
        )
        day_mask = (flows.router == router) & (flows.day == day)
        ah_mask = day_mask & np.isin(flows.src, ah_sorted)
        ah_packets = int(flows.packets[ah_mask].sum())
        if deployed:
            blocked_array = np.array(sorted(deployed), dtype=np.uint32)
            blocked_mask = day_mask & np.isin(flows.src, blocked_array)
            blocked = int(flows.packets[blocked_mask].sum())
        else:
            blocked = 0
        cells.append(
            MitigationCell(
                router=int(router),
                day=int(day),
                blocked_packets=blocked,
                ah_packets=ah_packets,
                total_packets=int(total),
            )
        )
    return cells


def summarize(cells: Sequence[MitigationCell]) -> dict:
    """Aggregate coverage/relief over all cells."""
    blocked = sum(c.blocked_packets for c in cells)
    ah = sum(c.ah_packets for c in cells)
    total = sum(c.total_packets for c in cells)
    return {
        "blocked_packets": blocked,
        "ah_coverage": blocked / ah if ah else 0.0,
        "relief": blocked / total if total else 0.0,
    }
