"""Incremental darknet-event construction and detection.

A production telescope never sees its year of traffic at once: captures
arrive in chunks (hourly pcaps, kafka batches), and the event pipeline
must fold each chunk in while keeping *open* flows — (src, port, proto)
activity whose silence gap has not yet exceeded the timeout — alive
across chunk boundaries.  ``StreamingEventBuilder`` implements exactly
that and is equivalent to the batch builder: feeding it any chunking of
a capture yields the same events as one :func:`~repro.core.events.build_events`
call over the concatenation (a property test pins this down).

``StreamingDetector`` stacks incremental detection on top: it drains
finalized events out of the builder after every chunk and folds them
into per-definition state — a streaming ECDF of per-event packet counts
(Definition 2), the running set of dispersion-qualified sources
(Definition 1) and merged per-(src, day) distinct-port triples
(Definition 3).  At :meth:`~StreamingDetector.finish` the accumulated
state is handed to the *same* threshold rules and result builders the
batch path uses (:mod:`repro.core.detection`), so both modes produce
identical :class:`~repro.core.detection.DetectionResult`\\ s by
construction.

Both layers expose the operational telemetry a live deployment needs —
number of open flows (state size, with its running peak) and watermarks
— and support *early-emission* queries: the events that are already
final given the data seen so far (everything whose flow expired before
the watermark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DetectionConfig
from repro.core.detection import (
    DetectionResult,
    dispersion_result,
    dispersion_threshold,
    ports_result_from_counts,
    volume_result,
    volume_threshold,
)
from repro.core.ecdf import StreamingECDF
from repro.core.events import (
    EventTable,
    _flow_keys,
    build_events,
    port_counts_from_triples,
)
from repro.packet import PacketBatch, SCANNING_PROTOCOLS


# Open flows live in a columnar table sorted by composite flow key —
# parallel numpy arrays for the numeric state (start, last, packets,
# segment gauges) plus one dict of per-flow destination-segment lists.
# Chunk folding is then a handful of vectorized passes (membership via
# searchsorted on the sorted keys, batched in-place continuation
# updates, batched closes straight into column chunks); Python-level
# iteration is confined to destination-segment bookkeeping for the
# flows a chunk actually touches.  Segments are numpy arrays, each
# deduplicated *within* itself; the cross-segment union is deferred to
# close time and computed for a whole close batch in one
# lexsort/boundary pass (:func:`_union_counts`).  Long-lived flows are
# compacted every :data:`_COMPACT_SEGMENTS` continuations so open-flow
# memory is bounded by distinct destinations (<= dark size), never
# flow length.
_COMPACT_SEGMENTS = 8

_KEY_DPORT_MASK = np.uint64(0xFFFF)
_KEY_PROTO_MASK = np.uint64(0xFF)


def _union_counts(seg_lists: List[list]) -> np.ndarray:
    """Distinct-destination counts for many multi-segment flows at once.

    One lexsort over all (flow, dst) pairs replaces a per-flow
    ``set().union(*segments)``; segments are already deduplicated
    internally, so the pair count is bounded by segments' total size.
    """
    lens = np.fromiter(
        (sum(len(s) for s in segs) for segs in seg_lists),
        dtype=np.int64,
        count=len(seg_lists),
    )
    ids = np.repeat(np.arange(len(seg_lists)), lens)
    vals = np.concatenate([s for segs in seg_lists for s in segs])
    order = np.lexsort((vals, ids))
    ids = ids[order]
    vals = vals[order]
    first = np.empty(len(vals), dtype=bool)
    first[0] = True
    first[1:] = (ids[1:] != ids[:-1]) | (vals[1:] != vals[:-1])
    return np.bincount(ids[first], minlength=len(seg_lists)).astype(np.int64)


def _columns_to_table(chunks: List[tuple]) -> EventTable:
    tables = [
        EventTable(
            src=c[0],
            dport=c[1],
            proto=c[2],
            start=c[3],
            end=c[4],
            packets=c[5],
            unique_dsts=c[6],
        )
        for c in chunks
        if len(c[0])
    ]
    return EventTable.concat(tables)


class StreamingEventBuilder:
    """Builds darknet events from time-ordered capture chunks.

    Args:
        timeout: silence gap, in seconds, that expires a flow.

    Chunks must arrive in time order *between* calls (each chunk may be
    internally unsorted; it is sorted on entry).  Feeding a chunk whose
    earliest packet predates the previous chunk's watermark raises —
    that data could belong to already-expired flows.

    Each chunk is folded in with a vectorized group-by (the same
    lexsort/segment-boundary construction the batch builder uses), and
    the open-flow state that survives chunk boundaries is itself
    columnar: a key-sorted struct-of-arrays table spliced with
    searchsorted membership, batched in-place updates, and batched
    closes.  Python-level iteration happens only for the
    destination-segment lists of flows the chunk touches.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = float(timeout)
        #: open-flow table, all parallel and sorted by ``_keys``.
        self._keys = np.empty(0, dtype=np.uint64)
        self._start = np.empty(0, dtype=np.float64)
        self._last = np.empty(0, dtype=np.float64)
        self._packets = np.empty(0, dtype=np.int64)
        #: destination-segment count; ``_seg0`` is the exact distinct
        #: destination count while ``_nseg == 1`` (segments are deduped
        #: internally), so single-segment closes never touch Python.
        self._nseg = np.empty(0, dtype=np.int64)
        self._seg0 = np.empty(0, dtype=np.int64)
        #: flow key -> list of per-continuation destination arrays.
        self._segs: Dict[int, list] = {}
        #: finalized column chunks awaiting drain/finish.
        self._closed_cols: List[tuple] = []
        self._pending_closed = 0
        self._n_closed = 0
        self._peak_open = 0
        self._watermark: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def open_flows(self) -> int:
        """Current state size (live flows)."""
        return len(self._keys)

    @property
    def peak_open_flows(self) -> int:
        """Largest state size observed so far (memory high-water mark)."""
        return self._peak_open

    @property
    def closed_events(self) -> int:
        """Events finalized so far (cumulative, survives draining)."""
        return self._n_closed

    @property
    def watermark(self) -> Optional[float]:
        """Timestamp of the latest packet folded in."""
        return self._watermark

    # ------------------------------------------------------------------
    def add_batch(self, batch: PacketBatch) -> None:
        """Fold one capture chunk into the event state."""
        if len(batch) == 0:
            return
        scanning_codes = np.array(
            [p.value for p in SCANNING_PROTOCOLS], dtype=np.uint8
        )
        keep = np.isin(batch.proto, scanning_codes)
        if not bool(np.all(keep)):
            batch = batch.select(keep)
        if len(batch) == 0:
            return
        first_ts = float(batch.ts.min())
        last_ts = float(batch.ts.max())
        if self._watermark is not None and first_ts < self._watermark:
            raise ValueError(
                f"out-of-order chunk: starts at {first_ts:.3f}, watermark "
                f"is {self._watermark:.3f}"
            )
        # Expire flows that were silent past the timeout before this
        # chunk even begins — keeps the open-state bounded.
        self._expire_before(first_ts)

        # Chunk-local segmentation, identical to the batch builder:
        # sort by (flow key, ts), events start at key or gap boundaries.
        n = len(batch)
        keys = _flow_keys(batch)
        order = np.lexsort((batch.ts, keys))
        keys = keys[order]
        ts = batch.ts[order]
        dst = batch.dst[order]
        new_key = np.empty(n, dtype=bool)
        new_key[0] = True
        new_key[1:] = keys[1:] != keys[:-1]
        gap = np.empty(n, dtype=bool)
        gap[0] = False
        gap[1:] = (ts[1:] - ts[:-1]) > self.timeout
        starts = new_key | gap
        event_id = np.cumsum(starts) - 1
        n_events = int(event_id[-1]) + 1
        start_idx = np.flatnonzero(starts)
        end_idx = np.concatenate([start_idx[1:], [n]]) - 1
        ev_packets = np.bincount(event_id, minlength=n_events).astype(np.int64)

        # Per-event deduplicated destination values in CSR form: the
        # counts close pure in-chunk events, the values seed or extend
        # the open-flow destination sets.
        pair_order = np.lexsort((dst, event_id))
        eid_sorted = event_id[pair_order]
        dst_sorted = dst[pair_order]
        first_pair = np.empty(n, dtype=bool)
        first_pair[0] = True
        first_pair[1:] = (eid_sorted[1:] != eid_sorted[:-1]) | (
            dst_sorted[1:] != dst_sorted[:-1]
        )
        ev_unique = np.bincount(
            eid_sorted[first_pair], minlength=n_events
        ).astype(np.int64)
        ev_dst = dst_sorted[first_pair]
        ev_off = np.concatenate([[0], np.cumsum(ev_unique)])

        ev_src = batch.src[order][start_idx]
        ev_dport = batch.dport[order][start_idx]
        ev_proto = batch.proto[order][start_idx]
        ev_start = ts[start_idx]
        ev_end = ts[end_idx]

        # Per-key event groups: events are sorted by (key, ts), so the
        # chunk's distinct keys come out ascending — ready for a single
        # searchsorted membership probe against the sorted open table.
        kf = np.flatnonzero(new_key[start_idx])
        kl = np.concatenate([kf[1:], [n_events]]) - 1
        chunk_keys = keys[start_idx][kf]
        nk = len(chunk_keys)
        n_open = len(self._keys)
        timeout = self.timeout

        matched = np.zeros(nk, dtype=bool)
        pos = np.zeros(nk, dtype=np.intp)
        if n_open:
            pos = np.searchsorted(self._keys, chunk_keys)
            inb = pos < n_open
            matched[inb] = self._keys[pos[inb]] == chunk_keys[inb]
        # A matched key continues its open flow only when the silence
        # gap to the key's first chunk event is within the timeout.
        cont = np.zeros(nk, dtype=bool)
        mpos = pos[matched]
        cont[matched] = ev_start[kf[matched]] - self._last[mpos] <= timeout
        single = kf == kl

        closed_mask = np.ones(n_events, dtype=bool)
        closed_mask[kl] = False
        closed_mask[kf[cont]] = False

        # Destination-segment bookkeeping: the only per-flow Python
        # work, confined to keys whose flows the chunk continues.
        new_nseg = np.ones(nk, dtype=np.int64)
        new_seg0 = ev_unique[kl].copy()
        segs_map = self._segs
        for i in np.flatnonzero(cont).tolist():
            e0 = kf[i]
            segs = segs_map[int(chunk_keys[i])]
            segs.append(ev_dst[ev_off[e0]:ev_off[e0 + 1]].copy())
            if single[i]:
                if len(segs) >= _COMPACT_SEGMENTS:
                    # Compact long-lived flows: unmerged per-chunk
                    # segments would grow O(flow packets), while the
                    # union is bounded by the dark size.
                    merged = np.unique(np.concatenate(segs))
                    segs_map[int(chunk_keys[i])] = [merged]
                    new_nseg[i] = 1
                    new_seg0[i] = len(merged)
                else:
                    new_nseg[i] = len(segs)

        # Continued flows whose key has further in-chunk events: the
        # merged first event is final.  Fold the merge into the table
        # in place, then close those rows together with the flows that
        # expired before their key's first packet.
        cm = cont & ~single
        cm_rows = pos[cm]
        if len(cm_rows):
            self._last[cm_rows] = ev_end[kf[cm]]
            self._packets[cm_rows] += ev_packets[kf[cm]]
            self._nseg[cm_rows] += 1
        exp_rows = pos[matched & ~cont]
        n_new_rows = self._close_rows(np.concatenate([exp_rows, cm_rows]))

        # Every chunk key ends with an open flow built from its last
        # event; a continued single-event key keeps the merged state.
        cs = cont & single
        cs_rows = pos[cs]
        new_start = ev_start[kl].copy()
        new_last = ev_end[kl]
        new_packets = ev_packets[kl].copy()
        new_start[cs] = self._start[cs_rows]
        new_packets[cs] += self._packets[cs_rows]
        for i in np.flatnonzero(~cs).tolist():
            e = kl[i]
            segs_map[int(chunk_keys[i])] = [
                ev_dst[ev_off[e]:ev_off[e + 1]].copy()
            ]

        # Splice: drop every matched row (closed or about to be
        # re-inserted merged), insert all chunk keys sorted.
        keep = np.ones(n_open, dtype=bool)
        keep[mpos] = False
        kept_keys = self._keys[keep]
        ins = np.searchsorted(kept_keys, chunk_keys)
        self._keys = np.insert(kept_keys, ins, chunk_keys)
        self._start = np.insert(self._start[keep], ins, new_start)
        self._last = np.insert(self._last[keep], ins, new_last)
        self._packets = np.insert(self._packets[keep], ins, new_packets)
        self._nseg = np.insert(self._nseg[keep], ins, new_nseg)
        self._seg0 = np.insert(self._seg0[keep], ins, new_seg0)

        if bool(closed_mask.any()):
            self._closed_cols.append(
                (
                    ev_src[closed_mask],
                    ev_dport[closed_mask],
                    ev_proto[closed_mask],
                    ev_start[closed_mask],
                    ev_end[closed_mask],
                    ev_packets[closed_mask],
                    ev_unique[closed_mask],
                )
            )
            n_new_rows += int(closed_mask.sum())
        self._n_closed += n_new_rows
        self._pending_closed += n_new_rows
        self._peak_open = max(self._peak_open, len(self._keys))
        self._watermark = last_ts

    def _close_rows(self, rows: np.ndarray) -> int:
        """Close open-table rows by index: one column chunk, batched.

        Single-segment flows (the overwhelming majority) read their
        distinct-destination count straight from ``_seg0``; the rest
        share one vectorized union pass.  Rows are *not* removed from
        the table here — callers compact or rebuild the arrays.
        """
        if not len(rows):
            return 0
        keys = self._keys[rows]
        n_dsts = self._seg0[rows].copy()
        multi = np.flatnonzero(self._nseg[rows] > 1)
        if len(multi):
            n_dsts[multi] = _union_counts(
                [self._segs[int(k)] for k in keys[multi]]
            )
        self._closed_cols.append(
            (
                (keys >> np.uint64(24)).astype(np.uint32),
                ((keys >> np.uint64(8)) & _KEY_DPORT_MASK).astype(np.uint16),
                (keys & _KEY_PROTO_MASK).astype(np.uint8),
                self._start[rows],
                self._last[rows],
                self._packets[rows],
                n_dsts,
            )
        )
        segs_map = self._segs
        for k in keys.tolist():
            del segs_map[k]
        return len(rows)

    def _expire_before(self, now: float) -> None:
        if not len(self._keys):
            return
        expired = (now - self._last) > self.timeout
        if not bool(expired.any()):
            return
        n = self._close_rows(np.flatnonzero(expired))
        keep = ~expired
        self._keys = self._keys[keep]
        self._start = self._start[keep]
        self._last = self._last[keep]
        self._packets = self._packets[keep]
        self._nseg = self._nseg[keep]
        self._seg0 = self._seg0[keep]
        self._n_closed += n
        self._pending_closed += n

    # ------------------------------------------------------------------
    def _pending_table(self) -> EventTable:
        return _columns_to_table(self._closed_cols)

    def finalized_events(self) -> EventTable:
        """Events already final given the watermark (early emission).

        Does not consume the events; excludes anything already drained
        via :meth:`drain_finalized`.
        """
        if self._watermark is not None:
            self._expire_before(self._watermark)
        return self._pending_table().sorted_canonical()

    def drain_finalized(self) -> EventTable:
        """Consume and return the events finalized since the last drain.

        The incremental-detection layer calls this after every chunk so
        finalized events leave the builder immediately — the builder's
        live memory is then only the open-flow state.  Rows come back in
        no particular order.
        """
        if self._watermark is not None:
            self._expire_before(self._watermark)
        table = self._pending_table()
        self._closed_cols = []
        self._pending_closed = 0
        return table

    def merge(self, other: "StreamingEventBuilder") -> None:
        """Fold another builder's state into this one (shard merge).

        Intended for the shard-parallel path (:mod:`repro.parallel`):
        the two builders must have been fed *disjoint* flow-key
        populations — hash-sharding packets by source address guarantees
        this, since a flow key starts with the source — so open flows
        never collide.  ``other`` should be discarded afterwards.

        The merged peak-open gauge is the *sum* of both peaks: shards
        run concurrently in separate processes, so the aggregate state
        held across the fleet at the worst moment is bounded by the sum.
        """
        if other is self:
            raise ValueError("cannot merge a builder with itself")
        if other.timeout != self.timeout:
            raise ValueError(
                f"cannot merge builders with different timeouts "
                f"({self.timeout} vs {other.timeout})"
            )
        overlap = np.intersect1d(
            self._keys, other._keys, assume_unique=True
        )
        if len(overlap):
            k = int(overlap[0])
            example = (k >> 24, (k >> 8) & 0xFFFF, k & 0xFF)
            raise ValueError(
                f"open-flow keys overlap across builders (e.g. "
                f"{example}); shards must partition sources"
            )
        merged_keys = np.concatenate([self._keys, other._keys])
        order = np.argsort(merged_keys, kind="stable")
        self._keys = merged_keys[order]
        self._start = np.concatenate([self._start, other._start])[order]
        self._last = np.concatenate([self._last, other._last])[order]
        self._packets = np.concatenate(
            [self._packets, other._packets]
        )[order]
        self._nseg = np.concatenate([self._nseg, other._nseg])[order]
        self._seg0 = np.concatenate([self._seg0, other._seg0])[order]
        self._segs.update(other._segs)
        self._closed_cols.extend(other._closed_cols)
        self._pending_closed += other._pending_closed
        self._n_closed += other._n_closed
        self._peak_open += other._peak_open
        if other._watermark is not None:
            self._watermark = (
                other._watermark
                if self._watermark is None
                else max(self._watermark, other._watermark)
            )

    def finish(self) -> EventTable:
        """Close all remaining flows and return their table.

        Includes everything not yet drained; after this the builder is
        empty.  When no :meth:`drain_finalized` calls were made this is
        the complete event table, ordered like the batch builder's.
        """
        self._close_rows(np.arange(len(self._keys)))
        self._keys = np.empty(0, dtype=np.uint64)
        self._start = np.empty(0, dtype=np.float64)
        self._last = np.empty(0, dtype=np.float64)
        self._packets = np.empty(0, dtype=np.int64)
        self._nseg = np.empty(0, dtype=np.int64)
        self._seg0 = np.empty(0, dtype=np.int64)
        table = _columns_to_table(self._closed_cols)
        self._closed_cols = []
        self._pending_closed = 0
        return table.sorted_canonical()


def chunked_events(
    batch: PacketBatch, timeout: float, chunk_seconds: float
) -> EventTable:
    """Convenience: run the streaming builder over fixed time chunks.

    Produces the same table as ``build_events(batch, timeout)`` (up to
    row order) — the equivalence is asserted in the test suite.  Chunk
    edges are computed as ``start + i * chunk_seconds`` so they stay
    exact over arbitrarily long captures (accumulating ``edge +=
    chunk_seconds`` drifts in floating point).
    """
    builder = StreamingEventBuilder(timeout)
    if len(batch) == 0:
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        return builder.finish()
    for _, _, chunk in batch.iter_time_chunks(
        chunk_seconds, align_to_epoch=False
    ):
        builder.add_batch(chunk)
    return builder.finish()


def tables_equivalent(a: EventTable, b: EventTable) -> bool:
    """Order-insensitive event-table equality (test helper)."""
    if len(a) != len(b):
        return False

    def canon(t: EventTable):
        rows = list(
            zip(
                t.src.tolist(),
                t.dport.tolist(),
                t.proto.tolist(),
                np.round(t.start, 9).tolist(),
                np.round(t.end, 9).tolist(),
                t.packets.tolist(),
                t.unique_dsts.tolist(),
            )
        )
        return sorted(rows)

    return canon(a) == canon(b)


# ----------------------------------------------------------------------
# Incremental detection
# ----------------------------------------------------------------------


class DispersionState:
    """Running Definition-1 state: sources with a qualifying event.

    The dispersion threshold is static (a fraction of the dark space),
    so membership can be decided per event as it finalizes; the state is
    just the accumulated source set, and merging shard states is a set
    union (associative and commutative).
    """

    def __init__(self, threshold: float):
        self.threshold = float(threshold)
        self.sources: set = set()

    def __len__(self) -> int:
        return len(self.sources)

    def update(self, events: EventTable) -> None:
        """Fold a batch of finalized events in."""
        self.sources |= events.sources_of(
            events.unique_dsts >= self.threshold
        )

    def merge(self, other: "DispersionState") -> None:
        """Union another shard's state into this one."""
        if other.threshold != self.threshold:
            raise ValueError(
                f"cannot merge dispersion states with different thresholds "
                f"({self.threshold} vs {other.threshold})"
            )
        self.sources |= other.sources


class PortDayState:
    """Mergeable Definition-3 state: (src, day, port·proto) triple runs.

    Each update appends one deduplicated-within-itself run of triples;
    the per-(src, day) distinct-port counts are derived only at finish,
    and :func:`~repro.core.events.port_counts_from_triples` tolerates
    duplicates *across* runs (a flow active in several chunks — or, in
    overlapping crafted windows, in several shards' histories — repeats
    its triple but is counted once).  Merging is run-list concatenation:
    associative, and commutative up to the final sorted grouping.

    Long-lived states (an always-on serve tenant folds chunks forever)
    compact the run list once it exceeds :data:`COMPACT_AFTER` runs:
    the runs are concatenated and deduplicated into a single run, so
    memory is bounded by the number of *distinct* triples, not by the
    number of ``update()`` calls.  Compaction never changes
    :meth:`counts` — the grouping pass already counts duplicates once.
    """

    #: Compact ``_runs`` into one deduplicated run at this many runs.
    COMPACT_AFTER = 64

    def __init__(self, day_seconds: float):
        self.day_seconds = float(day_seconds)
        self._runs: List[tuple] = []

    def update(self, events: EventTable) -> None:
        """Fold a batch of finalized events in."""
        if len(events):
            self._runs.append(events.daily_port_triples(self.day_seconds))
            self._maybe_compact()

    def merge(self, other: "PortDayState") -> None:
        """Append another shard's runs to this state."""
        if other is self:
            raise ValueError("cannot merge a PortDayState with itself")
        if other.day_seconds != self.day_seconds:
            raise ValueError(
                f"cannot merge port-day states with different day lengths "
                f"({self.day_seconds} vs {other.day_seconds})"
            )
        self._runs.extend(other._runs)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if len(self._runs) < self.COMPACT_AFTER:
            return
        src, day, port_proto = self.triples()
        order = np.lexsort((port_proto, day, src))
        src, day, port_proto = src[order], day[order], port_proto[order]
        fresh = np.empty(len(src), dtype=bool)
        fresh[0] = True
        fresh[1:] = (
            (src[1:] != src[:-1])
            | (day[1:] != day[:-1])
            | (port_proto[1:] != port_proto[:-1])
        )
        self._runs = [(src[fresh], day[fresh], port_proto[fresh])]

    def triples(self) -> tuple:
        """The concatenated (src, day, port·proto) runs."""
        if not self._runs:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return tuple(
            np.concatenate([run[i] for run in self._runs]) for i in range(3)
        )

    def counts(self) -> Dict[tuple, int]:
        """Per-(src, day) distinct-port counts over everything added."""
        return port_counts_from_triples(*self.triples())


#: Versioned header guarding detector-state checkpoints; bump when the
#: pickled layout changes incompatibly so stale checkpoints are
#: rejected (and their shards re-run) instead of merged.
STATE_MAGIC = b"repro-detector-state-v2\n"


@dataclass(frozen=True)
class ChunkReport:
    """What one :meth:`StreamingDetector.add_batch` call did."""

    packets: int
    events_finalized: int
    open_flows: int
    watermark: Optional[float]


class StreamingDetector:
    """Incremental aggressive-hitter detection over capture chunks.

    Feed time-ordered chunks with :meth:`add_batch`; call :meth:`finish`
    once to obtain the complete event table and the per-definition
    :class:`~repro.core.detection.DetectionResult`\\ s.  The results are
    identical to ``detect_all(build_events(capture), ...)`` over the
    concatenated capture, for any chunking — pinned by property tests.

    Per chunk, the detector drains the builder's finalized events and
    folds them into per-definition state:

    * Definition 1 (dispersion): threshold is static, so qualifying
      sources accumulate into a running set.
    * Definition 2 (volume): per-event packet counts accumulate into a
      :class:`~repro.core.ecdf.StreamingECDF`; the tail threshold only
      exists over the full sample, so membership is applied at finish.
    * Definition 3 (ports): per-chunk (src, day, port) triples are kept
      as mergeable runs; the per-day distinct-port counts and their
      ECDF threshold are derived at finish.

    Memory is bounded by the open-flow state plus the (much smaller)
    finalized event columns — the raw packet chunks are never retained.
    """

    def __init__(
        self,
        timeout: float,
        dark_size: int,
        config: Optional[DetectionConfig] = None,
        day_seconds: float = 86_400.0,
    ):
        self.builder = StreamingEventBuilder(timeout)
        self.dark_size = int(dark_size)
        self.config = config or DetectionConfig()
        self.day_seconds = float(day_seconds)
        self._chunks: List[EventTable] = []
        self._volume = StreamingECDF()
        self._ports = PortDayState(self.day_seconds)
        self._dispersion = DispersionState(
            dispersion_threshold(self.dark_size, self.config)
        )
        self._packets_seen = 0
        self._events_finalized = 0
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def packets_seen(self) -> int:
        """Packets folded in so far (before protocol filtering)."""
        return self._packets_seen

    @property
    def events_finalized(self) -> int:
        """Events finalized and folded into detection state so far."""
        return self._events_finalized

    @property
    def open_flows(self) -> int:
        return self.builder.open_flows

    @property
    def peak_open_flows(self) -> int:
        return self.builder.peak_open_flows

    @property
    def watermark(self) -> Optional[float]:
        return self.builder.watermark

    @property
    def volume_samples(self) -> int:
        """Observations currently held by the Definition-2 ECDF."""
        return len(self._volume)

    @property
    def volume_approximate(self) -> bool:
        """Whether the volume ECDF was ever compacted past a budget."""
        return self._volume.is_approximate

    def bound_volume_samples(self, max_samples: int) -> bool:
        """Enforce a memory budget on the Definition-2 volume ECDF.

        Past ``max_samples`` retained observations, the sample degrades
        to that many evenly spaced order statistics
        (:meth:`StreamingECDF.compact_to`): memory becomes O(budget)
        instead of O(events), and the Definition-2 tail threshold
        becomes a bounded-rank approximation.  Definitions 1 and 3 are
        untouched.  Returns True if a compaction happened; once any
        did, :attr:`volume_approximate` stays set (including across
        serialization and merges).
        """
        return self._volume.compact_to(max_samples)

    # ------------------------------------------------------------------
    def add_batch(self, batch: PacketBatch) -> ChunkReport:
        """Fold one capture chunk through events into detection state."""
        if self._finished:
            raise RuntimeError("detector already finished")
        self.builder.add_batch(batch)
        before = self._events_finalized
        self._fold(self.builder.drain_finalized())
        self._packets_seen += len(batch)
        return ChunkReport(
            packets=len(batch),
            events_finalized=self._events_finalized - before,
            open_flows=self.builder.open_flows,
            watermark=self.builder.watermark,
        )

    def _fold(self, events: EventTable) -> None:
        if len(events) == 0:
            return
        self._chunks.append(events)
        self._events_finalized += len(events)
        self._volume.add(events.packets.astype(np.float64))
        self._dispersion.update(events)
        self._ports.update(events)

    # ------------------------------------------------------------------
    def merge(self, other: "StreamingDetector") -> None:
        """Fold another (unfinished) detector's state into this one.

        The shard-parallel path (:mod:`repro.parallel`) runs one
        detector per source shard and merges them before a single
        :meth:`finish` — which then derives thresholds over exactly the
        same accumulated sample as a serial run, so the results are
        identical.  Both detectors must share their configuration, and
        their builders must hold disjoint flows (guaranteed when packets
        were hash-partitioned by source).  ``other`` is consumed: its
        state moves into ``self`` and it must be discarded.
        """
        if self._finished or other._finished:
            raise RuntimeError("cannot merge a finished detector")
        if other is self:
            raise ValueError("cannot merge a detector with itself")
        if (
            self.dark_size != other.dark_size
            or self.day_seconds != other.day_seconds
            or self.config != other.config
        ):
            raise ValueError(
                "cannot merge detectors with different configurations"
            )
        self.builder.merge(other.builder)
        self._chunks.extend(other._chunks)
        self._volume.merge(other._volume)
        self._dispersion.merge(other._dispersion)
        self._ports.merge(other._ports)
        self._packets_seen += other._packets_seen
        self._events_finalized += other._events_finalized

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the full (unfinished) detector state.

        The format is a versioned header plus a pickle of the detector
        — everything in the state (open flows, finalized columns, ECDF
        runs, port-day runs, gauges) is plain Python/numpy data, the
        same property that lets shard detectors cross process pipes.
        Used by the checkpoint layer (:mod:`repro.core.faults`): a
        round-tripped detector merges and finishes bit-identically to
        the original, so a resumed run reproduces a fault-free run
        exactly.
        """
        import pickle

        return STATE_MAGIC + pickle.dumps(self, protocol=4)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StreamingDetector":
        """Rebuild a detector serialized by :meth:`to_bytes`.

        Raises ``ValueError`` on an unrecognized or incompatible
        header — a checkpoint written by a different state version must
        be discarded (and the shard re-run), never merged.
        """
        import pickle

        if not data.startswith(STATE_MAGIC):
            raise ValueError(
                "not a serialized StreamingDetector state (missing or "
                f"mismatched header; expected {STATE_MAGIC!r})"
            )
        detector = pickle.loads(data[len(STATE_MAGIC):])
        if not isinstance(detector, cls):
            raise ValueError(
                f"serialized state holds {type(detector).__name__}, "
                "not a StreamingDetector"
            )
        return detector

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A provisional mid-stream view (no full recomputation)."""
        return {
            "packets": self._packets_seen,
            "events_finalized": self._events_finalized,
            "open_flows": self.builder.open_flows,
            "peak_open_flows": self.builder.peak_open_flows,
            "watermark": self.builder.watermark,
            "dispersion_sources": len(self._dispersion),
            "volume_threshold": (
                volume_threshold(self._volume.ecdf(), self.config)
                if len(self._volume)
                else None
            ),
        }

    def finish(self) -> Tuple[EventTable, Dict[int, DetectionResult]]:
        """Flush remaining flows and produce the final detections."""
        if self._finished:
            raise RuntimeError("detector already finished")
        self._fold(self.builder.finish())
        self._finished = True
        events = EventTable.concat(self._chunks).sorted_canonical()
        self._chunks = [events]

        results: Dict[int, DetectionResult] = {
            1: dispersion_result(
                events, self._dispersion.threshold, self.day_seconds
            )
        }
        if len(events) == 0:
            results[2] = DetectionResult(
                definition=2, sources=set(), threshold=0.0
            )
        else:
            results[2] = volume_result(
                events,
                volume_threshold(self._volume.ecdf(), self.config),
                self.day_seconds,
            )
        results[3] = ports_result_from_counts(
            self._ports.counts(), self.config
        )
        return events, results


def stream_detect(
    chunks,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> Tuple[EventTable, Dict[int, DetectionResult]]:
    """Run the full incremental path over an iterable of chunks.

    ``chunks`` yields :class:`~repro.packet.PacketBatch` objects in time
    order.  Equivalent to ``detect_all(build_events(concat(chunks)))``
    with bounded live memory.
    """
    detector = StreamingDetector(timeout, dark_size, config, day_seconds)
    for chunk in chunks:
        detector.add_batch(chunk)
    return detector.finish()
