"""Incremental darknet-event construction.

A production telescope never sees its year of traffic at once: captures
arrive in chunks (hourly pcaps, kafka batches), and the event pipeline
must fold each chunk in while keeping *open* flows — (src, port, proto)
activity whose silence gap has not yet exceeded the timeout — alive
across chunk boundaries.  ``StreamingEventBuilder`` implements exactly
that and is equivalent to the batch builder: feeding it any chunking of
a capture yields the same events as one :func:`~repro.core.events.build_events`
call over the concatenation (a property test pins this down).

It also exposes the operational telemetry a live deployment needs —
number of open flows (state size) and watermarks — and supports
*early-emission* queries: the events that are already final given the
data seen so far (everything whose flow expired before the watermark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.events import EventTable, build_events
from repro.packet import PacketBatch, SCANNING_PROTOCOLS


@dataclass
class _OpenFlow:
    """State of one live (src, dport, proto) flow."""

    src: int
    dport: int
    proto: int
    start: float
    last: float
    packets: int
    # Distinct destinations seen so far (bounded by the darknet size).
    dsts: set = field(default_factory=set)

    def to_row(self) -> tuple:
        return (
            self.src,
            self.dport,
            self.proto,
            self.start,
            self.last,
            self.packets,
            len(self.dsts),
        )


def _rows_to_table(rows: List[tuple]) -> EventTable:
    if not rows:
        return EventTable.empty()
    rows.sort(key=lambda r: (r[0], r[1], r[2], r[3]))
    arr = np.array([r[:7] for r in rows], dtype=np.float64)
    return EventTable(
        src=arr[:, 0].astype(np.uint32),
        dport=arr[:, 1].astype(np.uint16),
        proto=arr[:, 2].astype(np.uint8),
        start=arr[:, 3],
        end=arr[:, 4],
        packets=arr[:, 5].astype(np.int64),
        unique_dsts=arr[:, 6].astype(np.int64),
    )


class StreamingEventBuilder:
    """Builds darknet events from time-ordered capture chunks.

    Args:
        timeout: silence gap, in seconds, that expires a flow.

    Chunks must arrive in time order *between* calls (each chunk may be
    internally unsorted; it is sorted on entry).  Feeding a chunk whose
    earliest packet predates the previous chunk's watermark raises —
    that data could belong to already-expired flows.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = float(timeout)
        self._open: Dict[tuple, _OpenFlow] = {}
        self._closed: List[tuple] = []
        self._watermark: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def open_flows(self) -> int:
        """Current state size (live flows)."""
        return len(self._open)

    @property
    def closed_events(self) -> int:
        """Events finalized so far."""
        return len(self._closed)

    @property
    def watermark(self) -> Optional[float]:
        """Timestamp of the latest packet folded in."""
        return self._watermark

    # ------------------------------------------------------------------
    def add_batch(self, batch: PacketBatch) -> None:
        """Fold one capture chunk into the event state."""
        if len(batch) == 0:
            return
        scanning_codes = np.array(
            [p.value for p in SCANNING_PROTOCOLS], dtype=np.uint8
        )
        keep = np.isin(batch.proto, scanning_codes)
        if not bool(np.all(keep)):
            batch = batch.select(keep)
        if len(batch) == 0:
            return
        batch = batch.sorted_by_time()
        first_ts = float(batch.ts[0])
        if self._watermark is not None and first_ts < self._watermark:
            raise ValueError(
                f"out-of-order chunk: starts at {first_ts:.3f}, watermark "
                f"is {self._watermark:.3f}"
            )
        # Expire flows that were silent past the timeout before this
        # chunk even begins — keeps the open-state bounded.
        self._expire_before(first_ts)

        for i in range(len(batch)):
            key = (
                int(batch.src[i]),
                int(batch.dport[i]),
                int(batch.proto[i]),
            )
            ts = float(batch.ts[i])
            flow = self._open.get(key)
            if flow is not None and ts - flow.last > self.timeout:
                self._closed.append(flow.to_row())
                flow = None
            if flow is None:
                flow = _OpenFlow(
                    src=key[0],
                    dport=key[1],
                    proto=key[2],
                    start=ts,
                    last=ts,
                    packets=0,
                )
                self._open[key] = flow
            flow.last = ts
            flow.packets += 1
            flow.dsts.add(int(batch.dst[i]))
        self._watermark = float(batch.ts[-1])

    def _expire_before(self, now: float) -> None:
        expired = [
            key
            for key, flow in self._open.items()
            if now - flow.last > self.timeout
        ]
        for key in expired:
            self._closed.append(self._open.pop(key).to_row())

    # ------------------------------------------------------------------
    def finalized_events(self) -> EventTable:
        """Events already final given the watermark (early emission)."""
        if self._watermark is not None:
            self._expire_before(self._watermark)
        return _rows_to_table(list(self._closed))

    def finish(self) -> EventTable:
        """Close all remaining flows and return the complete table."""
        rows = list(self._closed) + [f.to_row() for f in self._open.values()]
        self._closed = []
        self._open = {}
        return _rows_to_table(rows)


def chunked_events(
    batch: PacketBatch, timeout: float, chunk_seconds: float
) -> EventTable:
    """Convenience: run the streaming builder over fixed time chunks.

    Produces the same table as ``build_events(batch, timeout)`` (up to
    row order) — the equivalence is asserted in the test suite.
    """
    if chunk_seconds <= 0:
        raise ValueError("chunk_seconds must be positive")
    builder = StreamingEventBuilder(timeout)
    if len(batch) == 0:
        return builder.finish()
    batch = batch.sorted_by_time()
    start = float(batch.ts[0])
    end = float(batch.ts[-1])
    edge = start
    while edge <= end:
        builder.add_batch(batch.time_slice(edge, edge + chunk_seconds))
        edge += chunk_seconds
    return builder.finish()


def tables_equivalent(a: EventTable, b: EventTable) -> bool:
    """Order-insensitive event-table equality (test helper)."""
    if len(a) != len(b):
        return False

    def canon(t: EventTable):
        rows = list(
            zip(
                t.src.tolist(),
                t.dport.tolist(),
                t.proto.tolist(),
                np.round(t.start, 9).tolist(),
                np.round(t.end, 9).tolist(),
                t.packets.tolist(),
                t.unique_dsts.tolist(),
            )
        )
        return sorted(rows)

    return canon(a) == canon(b)
