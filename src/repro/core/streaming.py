"""Incremental darknet-event construction and detection.

A production telescope never sees its year of traffic at once: captures
arrive in chunks (hourly pcaps, kafka batches), and the event pipeline
must fold each chunk in while keeping *open* flows — (src, port, proto)
activity whose silence gap has not yet exceeded the timeout — alive
across chunk boundaries.  ``StreamingEventBuilder`` implements exactly
that and is equivalent to the batch builder: feeding it any chunking of
a capture yields the same events as one :func:`~repro.core.events.build_events`
call over the concatenation (a property test pins this down).

``StreamingDetector`` stacks incremental detection on top: it drains
finalized events out of the builder after every chunk and folds them
into per-definition state — a streaming ECDF of per-event packet counts
(Definition 2), the running set of dispersion-qualified sources
(Definition 1) and merged per-(src, day) distinct-port triples
(Definition 3).  At :meth:`~StreamingDetector.finish` the accumulated
state is handed to the *same* threshold rules and result builders the
batch path uses (:mod:`repro.core.detection`), so both modes produce
identical :class:`~repro.core.detection.DetectionResult`\\ s by
construction.

Both layers expose the operational telemetry a live deployment needs —
number of open flows (state size, with its running peak) and watermarks
— and support *early-emission* queries: the events that are already
final given the data seen so far (everything whose flow expired before
the watermark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DetectionConfig
from repro.core.detection import (
    DetectionResult,
    dispersion_result,
    dispersion_threshold,
    ports_result_from_counts,
    volume_result,
    volume_threshold,
)
from repro.core.ecdf import StreamingECDF
from repro.core.events import (
    EventTable,
    _flow_keys,
    build_events,
    port_counts_from_triples,
)
from repro.packet import PacketBatch, SCANNING_PROTOCOLS


# Open-flow state is a plain list (not a dataclass) because the splice
# loop in ``add_batch`` touches one record per live flow per chunk and
# attribute access is measurably slower than indexing there.  Layout:
# [src, dport, proto, start, last, packets, dst_segments] where
# dst_segments is a list of per-segment destination collections, each
# already deduplicated *within* itself.  Most flows are opened and
# expired without ever being continued, so the cross-segment union (the
# only genuinely per-element Python work) is deferred to close time and
# paid only by multi-segment flows; flows continued across many chunks
# are compacted into a single set periodically so open-flow memory is
# bounded by distinct destinations (<= dark size), never flow length.
_F_START, _F_LAST, _F_PACKETS, _F_DSTS = 3, 4, 5, 6


def _flow_row(flow: list) -> tuple:
    """Finalize an open-flow record into an event row."""
    segments = flow[_F_DSTS]
    if len(segments) == 1:
        n_dsts = len(segments[0])
    else:
        n_dsts = len(set().union(*segments))
    return (
        flow[0],
        flow[1],
        flow[2],
        flow[_F_START],
        flow[_F_LAST],
        flow[_F_PACKETS],
        n_dsts,
    )


def _rows_to_columns(rows: List[tuple]) -> tuple:
    arr = np.array(rows, dtype=np.float64)
    return (
        arr[:, 0].astype(np.uint32),
        arr[:, 1].astype(np.uint16),
        arr[:, 2].astype(np.uint8),
        arr[:, 3],
        arr[:, 4],
        arr[:, 5].astype(np.int64),
        arr[:, 6].astype(np.int64),
    )


def _columns_to_table(chunks: List[tuple]) -> EventTable:
    tables = [
        EventTable(
            src=c[0],
            dport=c[1],
            proto=c[2],
            start=c[3],
            end=c[4],
            packets=c[5],
            unique_dsts=c[6],
        )
        for c in chunks
        if len(c[0])
    ]
    return EventTable.concat(tables)


class StreamingEventBuilder:
    """Builds darknet events from time-ordered capture chunks.

    Args:
        timeout: silence gap, in seconds, that expires a flow.

    Chunks must arrive in time order *between* calls (each chunk may be
    internally unsorted; it is sorted on entry).  Feeding a chunk whose
    earliest packet predates the previous chunk's watermark raises —
    that data could belong to already-expired flows.

    Each chunk is folded in with a vectorized group-by (the same
    lexsort/segment-boundary construction the batch builder uses):
    per-packet work is all numpy, and Python-level iteration happens
    only once per *flow* active in the chunk — to splice chunk-local
    events into the open-flow state that survives chunk boundaries.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = float(timeout)
        self._open: Dict[tuple, list] = {}
        #: finalized single rows (flow expiries) and vectorized column
        #: chunks (in-chunk closures) awaiting drain/finish.
        self._closed_rows: List[tuple] = []
        self._closed_cols: List[tuple] = []
        self._pending_closed = 0
        self._n_closed = 0
        self._peak_open = 0
        self._watermark: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def open_flows(self) -> int:
        """Current state size (live flows)."""
        return len(self._open)

    @property
    def peak_open_flows(self) -> int:
        """Largest state size observed so far (memory high-water mark)."""
        return self._peak_open

    @property
    def closed_events(self) -> int:
        """Events finalized so far (cumulative, survives draining)."""
        return self._n_closed

    @property
    def watermark(self) -> Optional[float]:
        """Timestamp of the latest packet folded in."""
        return self._watermark

    # ------------------------------------------------------------------
    def add_batch(self, batch: PacketBatch) -> None:
        """Fold one capture chunk into the event state."""
        if len(batch) == 0:
            return
        scanning_codes = np.array(
            [p.value for p in SCANNING_PROTOCOLS], dtype=np.uint8
        )
        keep = np.isin(batch.proto, scanning_codes)
        if not bool(np.all(keep)):
            batch = batch.select(keep)
        if len(batch) == 0:
            return
        first_ts = float(batch.ts.min())
        last_ts = float(batch.ts.max())
        if self._watermark is not None and first_ts < self._watermark:
            raise ValueError(
                f"out-of-order chunk: starts at {first_ts:.3f}, watermark "
                f"is {self._watermark:.3f}"
            )
        # Expire flows that were silent past the timeout before this
        # chunk even begins — keeps the open-state bounded.
        self._expire_before(first_ts)

        # Chunk-local segmentation, identical to the batch builder:
        # sort by (flow key, ts), events start at key or gap boundaries.
        n = len(batch)
        keys = _flow_keys(batch)
        order = np.lexsort((batch.ts, keys))
        keys = keys[order]
        ts = batch.ts[order]
        dst = batch.dst[order]
        new_key = np.empty(n, dtype=bool)
        new_key[0] = True
        new_key[1:] = keys[1:] != keys[:-1]
        gap = np.empty(n, dtype=bool)
        gap[0] = False
        gap[1:] = (ts[1:] - ts[:-1]) > self.timeout
        starts = new_key | gap
        event_id = np.cumsum(starts) - 1
        n_events = int(event_id[-1]) + 1
        start_idx = np.flatnonzero(starts)
        end_idx = np.concatenate([start_idx[1:], [n]]) - 1
        ev_packets = np.bincount(event_id, minlength=n_events).astype(np.int64)

        # Per-event deduplicated destination values in CSR form: the
        # counts close pure in-chunk events, the values seed or extend
        # the open-flow destination sets.
        pair_order = np.lexsort((dst, event_id))
        eid_sorted = event_id[pair_order]
        dst_sorted = dst[pair_order]
        first_pair = np.empty(n, dtype=bool)
        first_pair[0] = True
        first_pair[1:] = (eid_sorted[1:] != eid_sorted[:-1]) | (
            dst_sorted[1:] != dst_sorted[:-1]
        )
        ev_unique = np.bincount(
            eid_sorted[first_pair], minlength=n_events
        ).astype(np.int64)
        ev_dst = dst_sorted[first_pair].tolist()
        ev_off = np.concatenate(
            [[0], np.cumsum(ev_unique)]
        ).tolist()

        ev_src = batch.src[order][start_idx]
        ev_dport = batch.dport[order][start_idx]
        ev_proto = batch.proto[order][start_idx]
        ev_start = ts[start_idx]
        ev_end = ts[end_idx]

        # Python-level views for the per-flow splice loop.
        src_l = ev_src.tolist()
        dport_l = ev_dport.tolist()
        proto_l = ev_proto.tolist()
        start_l = ev_start.tolist()
        end_l = ev_end.tolist()
        packets_l = ev_packets.tolist()
        key_first_ev = np.flatnonzero(new_key[start_idx]).tolist()
        key_bounds = key_first_ev[1:] + [n_events]

        closed_mask = np.ones(n_events, dtype=bool)
        open_flows = self._open
        closed_rows = self._closed_rows
        timeout = self.timeout
        n_rows_before = len(closed_rows)

        for e0, e_stop in zip(key_first_ev, key_bounds):
            last_e = e_stop - 1
            key = (src_l[e0], dport_l[e0], proto_l[e0])
            flow = open_flows.get(key)
            if flow is not None:
                if start_l[e0] - flow[_F_LAST] <= timeout:
                    # The key's first event continues the open flow.
                    segments = flow[_F_DSTS]
                    segments.append(ev_dst[ev_off[e0]:ev_off[e0 + 1]])
                    if len(segments) >= 8:
                        # Compact long-lived flows: unmerged per-chunk
                        # segments would grow O(flow packets), while the
                        # union is bounded by the dark size.  Every 8th
                        # continuation keeps the amortized union cost
                        # low without ever holding more than a few
                        # chunks' worth of duplicates.
                        flow[_F_DSTS] = [set().union(*segments)]
                    flow[_F_PACKETS] += packets_l[e0]
                    flow[_F_LAST] = end_l[e0]
                    closed_mask[e0] = False
                    if e0 == last_e:
                        continue  # single event: flow stays open
                    # A gap follows within the chunk: the merged event
                    # is final.
                    closed_rows.append(_flow_row(flow))
                else:
                    # Open flow expired before the key's first packet.
                    closed_rows.append(_flow_row(flow))
            # Events between the first and last close in-chunk
            # (vectorized below); the key's final event becomes the new
            # open flow.
            closed_mask[last_e] = False
            open_flows[key] = [
                key[0],
                key[1],
                key[2],
                start_l[last_e],
                end_l[last_e],
                packets_l[last_e],
                [ev_dst[ev_off[last_e]:ev_off[last_e + 1]]],
            ]

        n_new_rows = len(closed_rows) - n_rows_before
        if bool(closed_mask.any()):
            self._closed_cols.append(
                (
                    ev_src[closed_mask],
                    ev_dport[closed_mask],
                    ev_proto[closed_mask],
                    ev_start[closed_mask],
                    ev_end[closed_mask],
                    ev_packets[closed_mask],
                    ev_unique[closed_mask],
                )
            )
            n_new_rows += int(closed_mask.sum())
        self._n_closed += n_new_rows
        self._pending_closed += n_new_rows
        self._peak_open = max(self._peak_open, len(open_flows))
        self._watermark = last_ts

    def _expire_before(self, now: float) -> None:
        expired = [
            key
            for key, flow in self._open.items()
            if now - flow[_F_LAST] > self.timeout
        ]
        for key in expired:
            self._closed_rows.append(_flow_row(self._open.pop(key)))
        self._n_closed += len(expired)
        self._pending_closed += len(expired)

    # ------------------------------------------------------------------
    def _pending_table(self) -> EventTable:
        chunks = list(self._closed_cols)
        if self._closed_rows:
            chunks.append(_rows_to_columns(self._closed_rows))
        return _columns_to_table(chunks)

    def finalized_events(self) -> EventTable:
        """Events already final given the watermark (early emission).

        Does not consume the events; excludes anything already drained
        via :meth:`drain_finalized`.
        """
        if self._watermark is not None:
            self._expire_before(self._watermark)
        return self._pending_table().sorted_canonical()

    def drain_finalized(self) -> EventTable:
        """Consume and return the events finalized since the last drain.

        The incremental-detection layer calls this after every chunk so
        finalized events leave the builder immediately — the builder's
        live memory is then only the open-flow state.  Rows come back in
        no particular order.
        """
        if self._watermark is not None:
            self._expire_before(self._watermark)
        table = self._pending_table()
        self._closed_rows = []
        self._closed_cols = []
        self._pending_closed = 0
        return table

    def merge(self, other: "StreamingEventBuilder") -> None:
        """Fold another builder's state into this one (shard merge).

        Intended for the shard-parallel path (:mod:`repro.parallel`):
        the two builders must have been fed *disjoint* flow-key
        populations — hash-sharding packets by source address guarantees
        this, since a flow key starts with the source — so open flows
        never collide.  ``other`` should be discarded afterwards.

        The merged peak-open gauge is the *sum* of both peaks: shards
        run concurrently in separate processes, so the aggregate state
        held across the fleet at the worst moment is bounded by the sum.
        """
        if other is self:
            raise ValueError("cannot merge a builder with itself")
        if other.timeout != self.timeout:
            raise ValueError(
                f"cannot merge builders with different timeouts "
                f"({self.timeout} vs {other.timeout})"
            )
        overlap = self._open.keys() & other._open.keys()
        if overlap:
            raise ValueError(
                f"open-flow keys overlap across builders (e.g. "
                f"{next(iter(overlap))}); shards must partition sources"
            )
        self._open.update(other._open)
        self._closed_rows.extend(other._closed_rows)
        self._closed_cols.extend(other._closed_cols)
        self._pending_closed += other._pending_closed
        self._n_closed += other._n_closed
        self._peak_open += other._peak_open
        if other._watermark is not None:
            self._watermark = (
                other._watermark
                if self._watermark is None
                else max(self._watermark, other._watermark)
            )

    def finish(self) -> EventTable:
        """Close all remaining flows and return their table.

        Includes everything not yet drained; after this the builder is
        empty.  When no :meth:`drain_finalized` calls were made this is
        the complete event table, ordered like the batch builder's.
        """
        chunks = list(self._closed_cols)
        rows = list(self._closed_rows)
        rows.extend(_flow_row(flow) for flow in self._open.values())
        if rows:
            chunks.append(_rows_to_columns(rows))
        self._closed_rows = []
        self._closed_cols = []
        self._pending_closed = 0
        self._open = {}
        return _columns_to_table(chunks).sorted_canonical()


def chunked_events(
    batch: PacketBatch, timeout: float, chunk_seconds: float
) -> EventTable:
    """Convenience: run the streaming builder over fixed time chunks.

    Produces the same table as ``build_events(batch, timeout)`` (up to
    row order) — the equivalence is asserted in the test suite.  Chunk
    edges are computed as ``start + i * chunk_seconds`` so they stay
    exact over arbitrarily long captures (accumulating ``edge +=
    chunk_seconds`` drifts in floating point).
    """
    builder = StreamingEventBuilder(timeout)
    if len(batch) == 0:
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        return builder.finish()
    for _, _, chunk in batch.iter_time_chunks(
        chunk_seconds, align_to_epoch=False
    ):
        builder.add_batch(chunk)
    return builder.finish()


def tables_equivalent(a: EventTable, b: EventTable) -> bool:
    """Order-insensitive event-table equality (test helper)."""
    if len(a) != len(b):
        return False

    def canon(t: EventTable):
        rows = list(
            zip(
                t.src.tolist(),
                t.dport.tolist(),
                t.proto.tolist(),
                np.round(t.start, 9).tolist(),
                np.round(t.end, 9).tolist(),
                t.packets.tolist(),
                t.unique_dsts.tolist(),
            )
        )
        return sorted(rows)

    return canon(a) == canon(b)


# ----------------------------------------------------------------------
# Incremental detection
# ----------------------------------------------------------------------


class DispersionState:
    """Running Definition-1 state: sources with a qualifying event.

    The dispersion threshold is static (a fraction of the dark space),
    so membership can be decided per event as it finalizes; the state is
    just the accumulated source set, and merging shard states is a set
    union (associative and commutative).
    """

    def __init__(self, threshold: float):
        self.threshold = float(threshold)
        self.sources: set = set()

    def __len__(self) -> int:
        return len(self.sources)

    def update(self, events: EventTable) -> None:
        """Fold a batch of finalized events in."""
        self.sources |= events.sources_of(
            events.unique_dsts >= self.threshold
        )

    def merge(self, other: "DispersionState") -> None:
        """Union another shard's state into this one."""
        if other.threshold != self.threshold:
            raise ValueError(
                f"cannot merge dispersion states with different thresholds "
                f"({self.threshold} vs {other.threshold})"
            )
        self.sources |= other.sources


class PortDayState:
    """Mergeable Definition-3 state: (src, day, port·proto) triple runs.

    Each update appends one deduplicated-within-itself run of triples;
    the per-(src, day) distinct-port counts are derived only at finish,
    and :func:`~repro.core.events.port_counts_from_triples` tolerates
    duplicates *across* runs (a flow active in several chunks — or, in
    overlapping crafted windows, in several shards' histories — repeats
    its triple but is counted once).  Merging is run-list concatenation:
    associative, and commutative up to the final sorted grouping.
    """

    def __init__(self, day_seconds: float):
        self.day_seconds = float(day_seconds)
        self._runs: List[tuple] = []

    def update(self, events: EventTable) -> None:
        """Fold a batch of finalized events in."""
        if len(events):
            self._runs.append(events.daily_port_triples(self.day_seconds))

    def merge(self, other: "PortDayState") -> None:
        """Append another shard's runs to this state."""
        if other is self:
            raise ValueError("cannot merge a PortDayState with itself")
        if other.day_seconds != self.day_seconds:
            raise ValueError(
                f"cannot merge port-day states with different day lengths "
                f"({self.day_seconds} vs {other.day_seconds})"
            )
        self._runs.extend(other._runs)

    def triples(self) -> tuple:
        """The concatenated (src, day, port·proto) runs."""
        if not self._runs:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return tuple(
            np.concatenate([run[i] for run in self._runs]) for i in range(3)
        )

    def counts(self) -> Dict[tuple, int]:
        """Per-(src, day) distinct-port counts over everything added."""
        return port_counts_from_triples(*self.triples())


#: Versioned header guarding detector-state checkpoints; bump when the
#: pickled layout changes incompatibly so stale checkpoints are
#: rejected (and their shards re-run) instead of merged.
STATE_MAGIC = b"repro-detector-state-v1\n"


@dataclass(frozen=True)
class ChunkReport:
    """What one :meth:`StreamingDetector.add_batch` call did."""

    packets: int
    events_finalized: int
    open_flows: int
    watermark: Optional[float]


class StreamingDetector:
    """Incremental aggressive-hitter detection over capture chunks.

    Feed time-ordered chunks with :meth:`add_batch`; call :meth:`finish`
    once to obtain the complete event table and the per-definition
    :class:`~repro.core.detection.DetectionResult`\\ s.  The results are
    identical to ``detect_all(build_events(capture), ...)`` over the
    concatenated capture, for any chunking — pinned by property tests.

    Per chunk, the detector drains the builder's finalized events and
    folds them into per-definition state:

    * Definition 1 (dispersion): threshold is static, so qualifying
      sources accumulate into a running set.
    * Definition 2 (volume): per-event packet counts accumulate into a
      :class:`~repro.core.ecdf.StreamingECDF`; the tail threshold only
      exists over the full sample, so membership is applied at finish.
    * Definition 3 (ports): per-chunk (src, day, port) triples are kept
      as mergeable runs; the per-day distinct-port counts and their
      ECDF threshold are derived at finish.

    Memory is bounded by the open-flow state plus the (much smaller)
    finalized event columns — the raw packet chunks are never retained.
    """

    def __init__(
        self,
        timeout: float,
        dark_size: int,
        config: Optional[DetectionConfig] = None,
        day_seconds: float = 86_400.0,
    ):
        self.builder = StreamingEventBuilder(timeout)
        self.dark_size = int(dark_size)
        self.config = config or DetectionConfig()
        self.day_seconds = float(day_seconds)
        self._chunks: List[EventTable] = []
        self._volume = StreamingECDF()
        self._ports = PortDayState(self.day_seconds)
        self._dispersion = DispersionState(
            dispersion_threshold(self.dark_size, self.config)
        )
        self._packets_seen = 0
        self._events_finalized = 0
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def packets_seen(self) -> int:
        """Packets folded in so far (before protocol filtering)."""
        return self._packets_seen

    @property
    def events_finalized(self) -> int:
        """Events finalized and folded into detection state so far."""
        return self._events_finalized

    @property
    def open_flows(self) -> int:
        return self.builder.open_flows

    @property
    def peak_open_flows(self) -> int:
        return self.builder.peak_open_flows

    @property
    def watermark(self) -> Optional[float]:
        return self.builder.watermark

    @property
    def volume_samples(self) -> int:
        """Observations currently held by the Definition-2 ECDF."""
        return len(self._volume)

    @property
    def volume_approximate(self) -> bool:
        """Whether the volume ECDF was ever compacted past a budget."""
        return self._volume.is_approximate

    def bound_volume_samples(self, max_samples: int) -> bool:
        """Enforce a memory budget on the Definition-2 volume ECDF.

        Past ``max_samples`` retained observations, the sample degrades
        to that many evenly spaced order statistics
        (:meth:`StreamingECDF.compact_to`): memory becomes O(budget)
        instead of O(events), and the Definition-2 tail threshold
        becomes a bounded-rank approximation.  Definitions 1 and 3 are
        untouched.  Returns True if a compaction happened; once any
        did, :attr:`volume_approximate` stays set (including across
        serialization and merges).
        """
        return self._volume.compact_to(max_samples)

    # ------------------------------------------------------------------
    def add_batch(self, batch: PacketBatch) -> ChunkReport:
        """Fold one capture chunk through events into detection state."""
        if self._finished:
            raise RuntimeError("detector already finished")
        self.builder.add_batch(batch)
        before = self._events_finalized
        self._fold(self.builder.drain_finalized())
        self._packets_seen += len(batch)
        return ChunkReport(
            packets=len(batch),
            events_finalized=self._events_finalized - before,
            open_flows=self.builder.open_flows,
            watermark=self.builder.watermark,
        )

    def _fold(self, events: EventTable) -> None:
        if len(events) == 0:
            return
        self._chunks.append(events)
        self._events_finalized += len(events)
        self._volume.add(events.packets.astype(np.float64))
        self._dispersion.update(events)
        self._ports.update(events)

    # ------------------------------------------------------------------
    def merge(self, other: "StreamingDetector") -> None:
        """Fold another (unfinished) detector's state into this one.

        The shard-parallel path (:mod:`repro.parallel`) runs one
        detector per source shard and merges them before a single
        :meth:`finish` — which then derives thresholds over exactly the
        same accumulated sample as a serial run, so the results are
        identical.  Both detectors must share their configuration, and
        their builders must hold disjoint flows (guaranteed when packets
        were hash-partitioned by source).  ``other`` is consumed: its
        state moves into ``self`` and it must be discarded.
        """
        if self._finished or other._finished:
            raise RuntimeError("cannot merge a finished detector")
        if other is self:
            raise ValueError("cannot merge a detector with itself")
        if (
            self.dark_size != other.dark_size
            or self.day_seconds != other.day_seconds
            or self.config != other.config
        ):
            raise ValueError(
                "cannot merge detectors with different configurations"
            )
        self.builder.merge(other.builder)
        self._chunks.extend(other._chunks)
        self._volume.merge(other._volume)
        self._dispersion.merge(other._dispersion)
        self._ports.merge(other._ports)
        self._packets_seen += other._packets_seen
        self._events_finalized += other._events_finalized

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the full (unfinished) detector state.

        The format is a versioned header plus a pickle of the detector
        — everything in the state (open flows, finalized columns, ECDF
        runs, port-day runs, gauges) is plain Python/numpy data, the
        same property that lets shard detectors cross process pipes.
        Used by the checkpoint layer (:mod:`repro.core.faults`): a
        round-tripped detector merges and finishes bit-identically to
        the original, so a resumed run reproduces a fault-free run
        exactly.
        """
        import pickle

        return STATE_MAGIC + pickle.dumps(self, protocol=4)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StreamingDetector":
        """Rebuild a detector serialized by :meth:`to_bytes`.

        Raises ``ValueError`` on an unrecognized or incompatible
        header — a checkpoint written by a different state version must
        be discarded (and the shard re-run), never merged.
        """
        import pickle

        if not data.startswith(STATE_MAGIC):
            raise ValueError(
                "not a serialized StreamingDetector state (missing or "
                f"mismatched header; expected {STATE_MAGIC!r})"
            )
        detector = pickle.loads(data[len(STATE_MAGIC):])
        if not isinstance(detector, cls):
            raise ValueError(
                f"serialized state holds {type(detector).__name__}, "
                "not a StreamingDetector"
            )
        return detector

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A provisional mid-stream view (no full recomputation)."""
        return {
            "packets": self._packets_seen,
            "events_finalized": self._events_finalized,
            "open_flows": self.builder.open_flows,
            "peak_open_flows": self.builder.peak_open_flows,
            "watermark": self.builder.watermark,
            "dispersion_sources": len(self._dispersion),
            "volume_threshold": (
                volume_threshold(self._volume.ecdf(), self.config)
                if len(self._volume)
                else None
            ),
        }

    def finish(self) -> Tuple[EventTable, Dict[int, DetectionResult]]:
        """Flush remaining flows and produce the final detections."""
        if self._finished:
            raise RuntimeError("detector already finished")
        self._fold(self.builder.finish())
        self._finished = True
        events = EventTable.concat(self._chunks).sorted_canonical()
        self._chunks = [events]

        results: Dict[int, DetectionResult] = {
            1: dispersion_result(
                events, self._dispersion.threshold, self.day_seconds
            )
        }
        if len(events) == 0:
            results[2] = DetectionResult(
                definition=2, sources=set(), threshold=0.0
            )
        else:
            results[2] = volume_result(
                events,
                volume_threshold(self._volume.ecdf(), self.config),
                self.day_seconds,
            )
        results[3] = ports_result_from_counts(
            self._ports.counts(), self.config
        )
        return events, results


def stream_detect(
    chunks,
    timeout: float,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> Tuple[EventTable, Dict[int, DetectionResult]]:
    """Run the full incremental path over an iterable of chunks.

    ``chunks`` yields :class:`~repro.packet.PacketBatch` objects in time
    order.  Equivalent to ``detect_all(build_events(concat(chunks)))``
    with bounded live memory.
    """
    detector = StreamingDetector(timeout, dark_size, config, day_seconds)
    for chunk in chunks:
        detector.add_batch(chunk)
    return detector.finish()
