"""Validation of the AH lists against external intelligence (paper §5).

* :func:`match_acknowledged` — Table 6: which AH belong to acknowledged
  research organizations, via exact published-IP matches and reverse-DNS
  keyword matches, with packet accounting.
* :func:`greynoise_overlap` — the ~99.3% daily AH coverage check against
  the distributed honeypots.
* :func:`greynoise_breakdown` — Figure 6 (left): classification of the
  monthly AH population after removing acknowledged scanners.
* :func:`greynoise_tags` — Table 9: top tags of the non-ACKed AH.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.labeling.acknowledged import AcknowledgedRegistry
from repro.labeling.greynoise import GreyNoiseDB
from repro.telescope.capture import DarknetCapture


@dataclass
class AckedMatchResult:
    """Table 6 numbers for one (definition, dataset) pair."""

    ip_matches: int
    domain_matches: int
    total_ips: int
    packets: int
    packets_share_of_ah: float
    orgs: int
    #: address -> (org slug, "ip" | "domain") for downstream filters.
    matched: Dict[int, tuple] = field(default_factory=dict)

    def matched_sources(self) -> set:
        """Addresses attributed to acknowledged organizations."""
        return set(self.matched)


def match_acknowledged(
    ah_sources: Iterable[int],
    registry: AcknowledgedRegistry,
    capture: Optional[DarknetCapture] = None,
) -> AckedMatchResult:
    """Attribute AH to acknowledged orgs the way the paper does.

    An AH is an acknowledged scanner when (i) its IP appears on the
    published list, or (ii) its reverse-DNS record contains one of the
    org keywords.  IP matches take precedence in the accounting, so the
    two counts partition the matched set.
    """
    ah_set = {int(a) for a in ah_sources}
    matched = registry.match_many(ah_set)
    ip_matches = sum(1 for _, how in matched.values() if how == "ip")
    domain_matches = sum(1 for _, how in matched.values() if how == "domain")

    packets = 0
    share = 0.0
    if capture is not None and ah_set:
        ah_packets = capture.packets_from(ah_set)
        packets = capture.packets_from(set(matched))
        share = packets / ah_packets if ah_packets else 0.0

    orgs = len({slug for slug, _ in matched.values()})
    return AckedMatchResult(
        ip_matches=ip_matches,
        domain_matches=domain_matches,
        total_ips=len(matched),
        packets=packets,
        packets_share_of_ah=share,
        orgs=orgs,
        matched=matched,
    )


def unlisted_org_ips(
    ah_sources: Iterable[int],
    registry: AcknowledgedRegistry,
) -> set:
    """Org-owned AH recovered only via rDNS (absent from the list).

    The paper found ~7,600 such addresses — research-org scanners the
    published list snapshot missed.
    """
    matched = registry.match_many({int(a) for a in ah_sources})
    published = registry.published_ips()
    return {addr for addr, (_, how) in matched.items() if how == "domain"} - published


# ----------------------------------------------------------------------
def greynoise_overlap(
    daily_active: Dict[int, set],
    db: GreyNoiseDB,
) -> float:
    """Average daily fraction of active AH present in the honeypot DB.

    The paper reports 99.3%: nearly every darknet-detected AH also hits
    the distributed honeypots, i.e. the hitters scan Internet-wide.
    """
    fractions = []
    for day, active in daily_active.items():
        if not active:
            continue
        fractions.append(db.coverage(active))
    return float(np.mean(fractions)) if fractions else 0.0


def greynoise_breakdown(
    ah_sources: Iterable[int],
    acked_matched: set,
    db: GreyNoiseDB,
) -> Dict[str, int]:
    """Figure 6 (left): intent classification of the monthly AH.

    Acknowledged scanners are split out first; the remainder is counted
    by the honeypot classification (malicious / unknown / benign), with
    a ``not-seen`` bucket for AH the honeypots missed.
    """
    ah_set = {int(a) for a in ah_sources}
    acked = ah_set & {int(a) for a in acked_matched}
    rest = ah_set - acked
    breakdown = db.classification_counts(rest)
    breakdown["acked"] = len(acked)
    return breakdown


def greynoise_tags(
    ah_sources: Iterable[int],
    acked_matched: set,
    db: GreyNoiseDB,
    top_n: int = 20,
) -> list:
    """Table 9: top tags for the non-acknowledged AH.

    Returns ``(tag, ip_count)`` rows sorted by count.
    """
    rest = {int(a) for a in ah_sources} - {int(a) for a in acked_matched}
    counts = db.tag_counts(rest)
    rows = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    return rows[:top_n]
