"""AH-list churn analysis.

The paper's closing discussion (§7) ties the practicality of AH
blocklists to *IP churn*: DHCP reassignment and NAT mean a scanner's
address may identify someone else tomorrow, so operators prefer short
lists of currently-active heavy hitters.  This module quantifies that
churn from the detection results:

* day-over-day overlap of the active AH set (how stale does yesterday's
  list get?);
* survival curves (for how many days does an AH stay active once it
  appears?);
* list-freshness statistics for a chosen blocklist refresh interval.

These power the ``repro-scanners`` list-production workflow and the
churn ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.detection import DetectionResult, jaccard


@dataclass(frozen=True)
class ChurnPoint:
    """Day-over-day comparison of active AH sets."""

    day: int
    active: int
    retained: int
    arrived: int
    departed: int
    jaccard_with_previous: float

    @property
    def retention(self) -> float:
        """Share of the previous day's actives still active today."""
        previous = self.retained + self.departed
        if previous == 0:
            return 0.0
        return self.retained / previous


def daily_churn(detection: DetectionResult) -> list:
    """Day-over-day churn series for one definition's active AH."""
    days = sorted(detection.daily_active)
    points = []
    for prev_day, day in zip(days, days[1:]):
        previous = detection.daily_active[prev_day]
        current = detection.daily_active[day]
        retained = len(previous & current)
        points.append(
            ChurnPoint(
                day=int(day),
                active=len(current),
                retained=retained,
                arrived=len(current - previous),
                departed=len(previous - current),
                jaccard_with_previous=jaccard(previous, current),
            )
        )
    return points


def survival_curve(detection: DetectionResult, max_days: int = 14) -> np.ndarray:
    """P(an AH is still active k days after first appearing).

    Returns an array ``s`` with ``s[k]`` the fraction of AH active on
    their appearance day that were also active ``k`` days later
    (``s[0]`` is 1 by construction; truncated sources — whose window of
    observation ends within ``max_days`` — are excluded from the
    at-risk set for later lags, a standard right-censoring guard).
    """
    if max_days < 1:
        raise ValueError("max_days must be >= 1")
    first_day: Dict[int, int] = {}
    for day, sources in detection.daily_new.items():
        for src in sources:
            if src not in first_day or day < first_day[src]:
                first_day[src] = day
    if not first_day:
        return np.ones(1)
    last_observed_day = max(detection.daily_active) if detection.daily_active else 0

    counts = np.zeros(max_days + 1, dtype=np.int64)
    at_risk = np.zeros(max_days + 1, dtype=np.int64)
    for src, day0 in first_day.items():
        horizon = min(max_days, last_observed_day - day0)
        for k in range(0, horizon + 1):
            at_risk[k] += 1
            if src in detection.daily_active.get(day0 + k, set()):
                counts[k] += 1
    valid = at_risk > 0
    curve = np.zeros(int(valid.sum()))
    curve[:] = counts[valid] / at_risk[valid]
    return curve


def staleness(detection: DetectionResult, refresh_days: int) -> float:
    """Average share of a ``refresh_days``-old list that is still active.

    Models an operator who refreshes the blocklist every
    ``refresh_days`` days: on each day d, the deployed list is the
    active set from the most recent refresh; staleness is the mean
    fraction of deployed entries that are still genuinely active.
    """
    if refresh_days < 1:
        raise ValueError("refresh_days must be >= 1")
    days = sorted(detection.daily_active)
    if len(days) <= refresh_days:
        return 1.0
    fractions = []
    for day in days:
        refresh_day = day - (day % refresh_days)
        if refresh_day not in detection.daily_active or refresh_day == day:
            continue
        deployed = detection.daily_active[refresh_day]
        if not deployed:
            continue
        still_active = len(deployed & detection.daily_active[day])
        fractions.append(still_active / len(deployed))
    return float(np.mean(fractions)) if fractions else 1.0


def churn_summary(detection: DetectionResult) -> dict:
    """Headline churn numbers for reports."""
    points = daily_churn(detection)
    if not points:
        return {
            "days": 0,
            "mean_retention": 0.0,
            "mean_jaccard": 0.0,
            "mean_arrivals": 0.0,
        }
    return {
        "days": len(points),
        "mean_retention": float(np.mean([p.retention for p in points])),
        "mean_jaccard": float(
            np.mean([p.jaccard_with_previous for p in points])
        ),
        "mean_arrivals": float(np.mean([p.arrived for p in points])),
    }
