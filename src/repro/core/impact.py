"""Network-impact analysis (paper §4).

Joins the AH lists produced by the darknet detectors with the ISP's
sampled flow data and the mirrored packet streams:

* :func:`daily_impact` — Table 2: AH packets and their share of all
  packets each core router processed per day.
* :func:`protocol_breakdown` — Table 3: protocol mix of AH traffic in
  the darknet versus the flow data (the cross-dataset consistency check
  showing the flow volume really is scanning).
* :func:`acked_impact` — Table 4: the same join for acknowledged
  scanners.
* :func:`router_coverage` — Table 8: how much of the AH population each
  router observes.
* :func:`port_consistency` — Figure 5: per-port packet shares, darknet
  versus flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.flows.netflow import FlowTable
from repro.packet import PacketBatch, Protocol


@dataclass(frozen=True)
class ImpactCell:
    """One (router, day) impact measurement."""

    router: int
    day: int
    ah_packets: int
    total_packets: int

    @property
    def fraction(self) -> float:
        """AH share of the cell's total packets."""
        if self.total_packets <= 0:
            return 0.0
        return self.ah_packets / self.total_packets


def daily_impact(
    flows: FlowTable,
    totals: Dict[tuple, int],
    ah_sources: Iterable[int],
) -> list:
    """Per-router, per-day AH packet volume and fraction (Table 2).

    Args:
        flows: scanner flow records (estimated packet counts).
        totals: (router, day) -> total packets the router processed.
        ah_sources: the AH list to attribute.

    Returns:
        List of :class:`ImpactCell`, sorted by (day, router).
    """
    ah_flows = flows.for_sources(ah_sources)
    # One grouped pass over the AH rows instead of a masked scan per
    # (router, day) cell.
    ah_by_cell: Dict[tuple, int] = {}
    if len(ah_flows):
        key = (
            ah_flows.router.astype(np.int64) << np.int64(32)
        ) | ah_flows.day.astype(np.int64)
        uniq, inverse = np.unique(key, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, ah_flows.packets)
        ah_by_cell = {
            (int(k) >> 32, int(k) & 0xFFFFFFFF): int(v)
            for k, v in zip(uniq, sums)
        }
    cells = []
    for (router, day), total in sorted(totals.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        cells.append(
            ImpactCell(
                router=int(router),
                day=int(day),
                ah_packets=ah_by_cell.get((int(router), int(day)), 0),
                total_packets=int(total),
            )
        )
    return cells


def average_impact(cells: Sequence[ImpactCell]) -> Dict[int, tuple]:
    """Per-router averages over days: (mean AH packets, mean fraction)."""
    by_router: Dict[int, list] = {}
    for cell in cells:
        by_router.setdefault(cell.router, []).append(cell)
    out: Dict[int, tuple] = {}
    for router, items in sorted(by_router.items()):
        mean_packets = float(np.mean([c.ah_packets for c in items]))
        mean_fraction = float(np.mean([c.fraction for c in items]))
        out[router] = (mean_packets, mean_fraction)
    return out


# ----------------------------------------------------------------------
def _protocol_shares_from_counts(counts: Dict[int, int]) -> Dict[str, float]:
    total = sum(counts.values())
    out = {}
    for proto in Protocol:
        share = counts.get(proto.value, 0) / total if total else 0.0
        out[proto.label()] = share
    return out


def protocol_breakdown(
    darknet_packets: PacketBatch,
    flows: FlowTable,
    ah_sources: Iterable[int],
) -> Dict[str, Dict[str, float]]:
    """Table 3: AH protocol mix in the darknet vs the flow data.

    Returns ``{"darknet": {...}, "flows": {...}}`` with per-protocol
    packet shares.  Agreement between the two columns is the paper's
    evidence that the AH flow volume is scanning, not co-located user
    traffic.
    """
    wanted = np.asarray(sorted(int(a) for a in ah_sources), dtype=np.uint32)
    if len(wanted) and len(darknet_packets):
        mask = np.isin(darknet_packets.src, wanted)
        dark = darknet_packets.select(mask)
    else:
        dark = PacketBatch.empty()
    dark_counts = {p.value: c for p, c in dark.protocol_counts().items()}
    flow_counts = flows.for_sources(ah_sources).packets_by_proto()
    return {
        "darknet": _protocol_shares_from_counts(dark_counts),
        "flows": _protocol_shares_from_counts(flow_counts),
    }


def acked_impact(
    flows: FlowTable,
    totals: Dict[tuple, int],
    acked_sources: Iterable[int],
    day: Optional[int] = None,
) -> Dict[int, tuple]:
    """Table 4: acknowledged scanners' per-router packet share.

    Args:
        flows: scanner flow records.
        totals: (router, day) -> total packets.
        acked_sources: AH that matched the acknowledged-scanner lists.
        day: restrict to one day (the paper uses Flows-2, a single day).

    Returns:
        router -> (acked packets, fraction of all packets).
    """
    acked_flows = flows.for_sources(acked_sources)
    out: Dict[int, tuple] = {}
    routers = sorted({router for router, _ in totals})
    for router in routers:
        days = [d for r, d in totals if r == router and (day is None or d == day)]
        total = sum(totals[(router, d)] for d in days)
        mask = np.isin(acked_flows.day, np.array(days, dtype=acked_flows.day.dtype))
        mask &= acked_flows.router == router
        packets = int(acked_flows.packets[mask].sum())
        out[router] = (packets, packets / total if total else 0.0)
    return out


def router_coverage(
    flows: FlowTable,
    daily_active: Dict[int, set],
    router_count: int,
) -> list:
    """Table 8: share of each day's active AH population seen per router.

    Args:
        flows: scanner flow records.
        daily_active: day -> active AH sources (from detection).
        router_count: number of border routers.

    Returns:
        Rows ``{"day", "active_ah", "seen_fraction": [per router]}``.
    """
    rows = []
    for day in sorted(daily_active):
        active = daily_active[day]
        if not active:
            continue
        day_flows = flows.select(flows.day == day)
        active_arr = np.fromiter(
            (int(a) for a in active), dtype=np.uint32, count=len(active)
        )
        fractions = []
        for router in range(router_count):
            router_srcs = day_flows.src[day_flows.router == router]
            seen = int(np.isin(active_arr, router_srcs).sum())
            fractions.append(seen / len(active))
        rows.append(
            {
                "day": int(day),
                "active_ah": len(active),
                "seen_fraction": fractions,
            }
        )
    return rows


def port_consistency(
    darknet_packets: PacketBatch,
    flows: FlowTable,
    ah_sources: Iterable[int],
    top_n: int = 25,
) -> list:
    """Figure 5: per-port AH packet shares, darknet vs flows.

    Returns rows ``(port, proto, darknet_share, flow_share)`` for the
    union of each side's top ``top_n`` ports, ordered by darknet share.
    A tight diagonal means the two vantage points agree on what the AH
    are doing.
    """
    wanted = np.asarray(sorted(int(a) for a in ah_sources), dtype=np.uint32)
    dark_counts: Dict[tuple, int] = {}
    if len(wanted) and len(darknet_packets):
        mask = np.isin(darknet_packets.src, wanted)
        dark = darknet_packets.select(mask)
        keys = (
            dark.dport.astype(np.uint32) << np.uint32(8)
        ) | dark.proto.astype(np.uint32)
        uniq, counts = np.unique(keys, return_counts=True)
        for key, count in zip(uniq, counts):
            dark_counts[(int(key) >> 8, int(key) & 0xFF)] = int(count)
    flow_counts = flows.for_sources(ah_sources).packets_by_port()

    dark_total = sum(dark_counts.values()) or 1
    flow_total = sum(flow_counts.values()) or 1
    top_dark = sorted(dark_counts, key=dark_counts.get, reverse=True)[:top_n]
    top_flow = sorted(flow_counts, key=flow_counts.get, reverse=True)[:top_n]
    rows = []
    for key in dict.fromkeys(list(top_dark) + list(top_flow)):
        rows.append(
            (
                key[0],
                key[1],
                dark_counts.get(key, 0) / dark_total,
                flow_counts.get(key, 0) / flow_total,
            )
        )
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def rank_correlation(rows: Sequence[tuple]) -> float:
    """Spearman-style rank correlation of the Figure 5 scatter.

    Computed without scipy to keep the core dependency-light; ties get
    average ranks.
    """
    if len(rows) < 2:
        return 1.0
    a = np.array([r[2] for r in rows])
    b = np.array([r[3] for r in rows])

    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x)
        r = np.empty(len(x), dtype=np.float64)
        r[order] = np.arange(1, len(x) + 1)
        # average ties
        for value in np.unique(x):
            mask = x == value
            if np.count_nonzero(mask) > 1:
                r[mask] = r[mask].mean()
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 1.0
    return float((ra * rb).sum() / denom)
