"""Longitudinal characterization of the aggressive hitters (paper §5).

* :func:`temporal_trends` — Figure 3: daily/active AH counts and the AH
  share of all darknet packets per day.
* :func:`origins` — Table 5: top origin networks by unique /32s, with
  /24 aggregation, packet volumes and acknowledged-scanner counts.
* :func:`top_ports` — Figure 4: top targeted services with the
  ZMap/Masscan/Other fingerprint split.
* :func:`zipf_contribution` — Figure 6 (right): cumulative AH traffic
  share by ranked source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.detection import DetectionResult
from repro.fingerprint import Tool, classify
from repro.net.addr import distinct_slash24s
from repro.net.asn import ASRegistry
from repro.packet import Protocol
from repro.telescope.capture import DarknetCapture


@dataclass(frozen=True)
class TrendPoint:
    """One day of the Figure 3 time series."""

    day: int
    daily_new_ah: int
    active_ah: int
    all_daily_sources: int
    ah_packets: int
    total_packets: int

    @property
    def ah_packet_share(self) -> float:
        """Daily-AH share of the day's darknet packets."""
        if self.total_packets <= 0:
            return 0.0
        return self.ah_packets / self.total_packets


def temporal_trends(
    events: "EventTable",
    detection: DetectionResult,
    days: Sequence[int],
    day_seconds: float,
) -> list:
    """Figure 3 series: AH counts and packet shares per day.

    Statistics are computed at *event* granularity, attributing each
    event's full packet count to the day the event started — the paper
    notes that the darknet-events data format only supports packet
    accounting this way, and only for the *daily* scanners (those whose
    first qualifying activity started that day).
    """
    from repro.core.events import EventTable  # local import: cycle guard

    assert isinstance(events, EventTable)
    start_day = events.start_day(day_seconds)
    points = []
    for day in days:
        in_day = start_day == day
        total = int(events.packets[in_day].sum())
        all_sources = int(len(np.unique(events.src[in_day]))) if total else 0
        new = detection.new_on(day)
        active = detection.active_on(day)
        if new and total:
            wanted = np.asarray(sorted(new), dtype=np.uint32)
            ah_mask = in_day & np.isin(events.src, wanted)
            ah_packets = int(events.packets[ah_mask].sum())
        else:
            ah_packets = 0
        points.append(
            TrendPoint(
                day=int(day),
                daily_new_ah=len(new),
                active_ah=len(active),
                all_daily_sources=all_sources,
                ah_packets=ah_packets,
                total_packets=total,
            )
        )
    return points


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OriginRow:
    """One origin network of Table 5."""

    label: str
    org: str
    asn: int
    unique_ips: int
    acked_ips: int
    unique_slash24: int
    acked_slash24: int
    packets: int


def origins(
    ah_sources: Iterable[int],
    registry: ASRegistry,
    capture: Optional[DarknetCapture] = None,
    acked_sources: Optional[set] = None,
    top_n: int = 10,
) -> tuple:
    """Table 5: top origin ASes of the AH population.

    Args:
        ah_sources: the AH list.
        registry: AS registry for origin lookups.
        capture: darknet capture for per-AS packet volumes.
        acked_sources: AH matched to acknowledged orgs (parenthesized
            counts in the paper's table).
        top_n: number of rows.

    Returns:
        ``(rows, totals)`` where rows are :class:`OriginRow` sorted by
        unique IPs and totals summarize the top rows' share of the whole
        AH population: ``{"ips": (count, share), "slash24": ...,
        "packets": ...}``.
    """
    sources = np.array(sorted(int(a) for a in ah_sources), dtype=np.uint32)
    acked_sources = acked_sources or set()
    if len(sources) == 0:
        return [], {"ips": (0, 0.0), "slash24": (0, 0.0), "packets": (0, 0.0)}
    idx = registry.lookup_index(sources)

    packets_by_src: Dict[int, int] = {}
    total_ah_packets = 0
    if capture is not None and len(capture.packets):
        mask = np.isin(capture.packets.src, sources)
        src_col = capture.packets.src[mask]
        uniq, counts = np.unique(src_col, return_counts=True)
        packets_by_src = {int(s): int(c) for s, c in zip(uniq, counts)}
        total_ah_packets = int(counts.sum())

    by_as: Dict[int, dict] = {}
    for source, as_idx in zip(sources, idx):
        if as_idx < 0:
            continue
        entry = by_as.setdefault(
            int(as_idx),
            {"ips": set(), "acked": set(), "packets": 0},
        )
        entry["ips"].add(int(source))
        if int(source) in acked_sources:
            entry["acked"].add(int(source))
        entry["packets"] += packets_by_src.get(int(source), 0)

    rows = []
    for as_idx, entry in by_as.items():
        system = registry.systems[as_idx]
        ips = entry["ips"]
        acked = entry["acked"]
        rows.append(
            OriginRow(
                label=system.label(),
                org=system.org,
                asn=system.asn,
                unique_ips=len(ips),
                acked_ips=len(acked),
                unique_slash24=distinct_slash24s(ips),
                acked_slash24=distinct_slash24s(acked),
                packets=entry["packets"],
            )
        )
    rows.sort(key=lambda r: r.unique_ips, reverse=True)
    top = rows[:top_n]

    all_ips = len(sources)
    all_slash24 = distinct_slash24s(sources)
    top_ips = sum(r.unique_ips for r in top)
    top_slash24 = sum(r.unique_slash24 for r in top)
    top_packets = sum(r.packets for r in top)
    totals = {
        "ips": (top_ips, top_ips / all_ips if all_ips else 0.0),
        "slash24": (top_slash24, top_slash24 / all_slash24 if all_slash24 else 0.0),
        "packets": (
            top_packets,
            top_packets / total_ah_packets if total_ah_packets else 0.0,
        ),
    }
    return top, totals


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PortRow:
    """One service of the Figure 4 ranking."""

    port: int
    proto: int
    packets: int
    zmap_packets: int
    masscan_packets: int
    other_packets: int

    @property
    def protocol(self) -> Protocol:
        """The row's protocol as an enum."""
        return Protocol(self.proto)


def top_ports(
    capture: DarknetCapture,
    ah_sources: Iterable[int],
    top_n: int = 25,
) -> list:
    """Figure 4: top services targeted by AH with tool fingerprints."""
    batch = capture.select_sources(set(ah_sources))
    if len(batch) == 0:
        return []
    tools = classify(batch)
    keys = (
        batch.dport.astype(np.uint32) << np.uint32(8)
    ) | batch.proto.astype(np.uint32)
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    tools_sorted = tools[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], keys_sorted[1:] != keys_sorted[:-1]])
    )
    ends = np.concatenate([boundaries[1:], [len(keys_sorted)]])
    rows = []
    for b, e in zip(boundaries, ends):
        key = int(keys_sorted[b])
        segment = tools_sorted[b:e]
        rows.append(
            PortRow(
                port=key >> 8,
                proto=key & 0xFF,
                packets=int(e - b),
                zmap_packets=int(np.count_nonzero(segment == Tool.ZMAP.value)),
                masscan_packets=int(
                    np.count_nonzero(segment == Tool.MASSCAN.value)
                ),
                other_packets=int(np.count_nonzero(segment == Tool.OTHER.value)),
            )
        )
    rows.sort(key=lambda r: r.packets, reverse=True)
    return rows[:top_n]


def port_overlap(rows_a: Sequence[PortRow], rows_b: Sequence[PortRow]) -> int:
    """How many services two rankings share (the paper: 20 of top 25)."""
    keys_a = {(r.port, r.proto) for r in rows_a}
    keys_b = {(r.port, r.proto) for r in rows_b}
    return len(keys_a & keys_b)


# ----------------------------------------------------------------------
def zipf_contribution(
    capture: DarknetCapture,
    ah_sources: Iterable[int],
) -> np.ndarray:
    """Figure 6 (right): cumulative AH traffic share by ranked source.

    Returns the cumulative fraction array ``c`` where ``c[k-1]`` is the
    share of all AH packets contributed by the top-k sources.
    """
    batch = capture.select_sources(set(ah_sources))
    if len(batch) == 0:
        return np.empty(0, dtype=np.float64)
    _, counts = np.unique(batch.src, return_counts=True)
    counts = np.sort(counts)[::-1].astype(np.float64)
    return np.cumsum(counts) / counts.sum()


def top_fraction_share(cumulative: np.ndarray, top_fraction: float) -> float:
    """Share contributed by the top ``top_fraction`` of ranked sources.

    The paper: the top 1% of AH contribute more than 25% of AH traffic
    on a typical day.
    """
    if len(cumulative) == 0:
        return 0.0
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    k = max(int(np.ceil(top_fraction * len(cumulative))), 1)
    return float(cumulative[k - 1])
