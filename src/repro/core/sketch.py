"""Memory-bounded heavy-hitter detection (streaming sketches).

The full event pipeline keeps per-flow state; at a true telescope's
line rate (ORION: >100k pps sustained) an operator may instead want a
fixed-memory pre-filter that surfaces aggressive-hitter *candidates*
online, to be confirmed by the exact pipeline.  This module provides
the classic pairing:

* :class:`SpaceSaving` — the Metwally et al. top-k counter: tracks at
  most ``capacity`` sources with a provable overestimation bound
  (error <= N / capacity for N total packets); every true heavy hitter
  above that mass is guaranteed to be retained.
* :class:`KMV` — a k-minimum-values distinct-value estimator, used per
  tracked source to approximate its *address dispersion* (Definition 1
  needs unique dark destinations, not packets).
* :class:`HeavyHitterSketch` — the combination: a fixed-size candidate
  table over a packet stream, with dispersion estimates.

The ``ablation_sketch`` benchmark measures recall/precision of the
sketch against the exact Definition-1 population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.packet import PacketBatch, SCANNING_PROTOCOLS

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a fast, well-distributed integer hash."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + _SPLITMIX_GAMMA
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


class KMV:
    """k-minimum-values distinct counter over 64-bit hash values."""

    def __init__(self, k: int = 64):
        if k < 2:
            raise ValueError("k must be >= 2")
        self.k = k
        self._values: List[int] = []  # sorted ascending

    def add_hashes(self, hashes: np.ndarray) -> None:
        """Fold a batch of (already hashed) values into the synopsis."""
        if len(hashes) == 0:
            return
        merged = np.unique(
            np.concatenate(
                [np.asarray(self._values, dtype=np.uint64), hashes.astype(np.uint64)]
            )
        )
        self._values = merged[: self.k].tolist()

    def estimate(self) -> float:
        """Estimated number of distinct values seen."""
        if len(self._values) < self.k:
            return float(len(self._values))
        kth = float(self._values[self.k - 1])
        # E[D] = (k - 1) / normalized k-th minimum.
        return (self.k - 1) / (kth / 2**64)

    def __len__(self) -> int:
        return len(self._values)


@dataclass
class _Slot:
    """One tracked source in the Space-Saving table."""

    key: int
    count: int
    error: int
    dsts: KMV


class SpaceSaving:
    """Space-Saving top-k counter with per-slot destination synopses."""

    def __init__(self, capacity: int, kmv_size: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.kmv_size = kmv_size
        self._slots: Dict[int, _Slot] = {}
        self.total = 0

    def offer(self, key: int, weight: int = 1) -> None:
        """Count ``weight`` occurrences of ``key``."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self.total += weight
        slot = self._slots.get(key)
        if slot is not None:
            slot.count += weight
            return
        if len(self._slots) < self.capacity:
            self._slots[key] = _Slot(
                key=key, count=weight, error=0, dsts=KMV(self.kmv_size)
            )
            return
        # Evict the minimum and inherit its count as error.
        victim = min(self._slots.values(), key=lambda s: s.count)
        del self._slots[victim.key]
        self._slots[key] = _Slot(
            key=key,
            count=victim.count + weight,
            error=victim.count,
            dsts=KMV(self.kmv_size),
        )

    def count_of(self, key: int) -> Optional[tuple]:
        """(estimated count, max overestimation) or None if untracked."""
        slot = self._slots.get(key)
        if slot is None:
            return None
        return slot.count, slot.error

    def top(self, k: int) -> List[tuple]:
        """The k largest tracked keys as (key, count, error)."""
        ranked = sorted(self._slots.values(), key=lambda s: -s.count)
        return [(s.key, s.count, s.error) for s in ranked[:k]]

    def guaranteed_heavy(self, threshold: int) -> List[int]:
        """Keys whose *lower bound* (count - error) clears a threshold."""
        return [
            s.key
            for s in self._slots.values()
            if s.count - s.error >= threshold
        ]

    def __len__(self) -> int:
        return len(self._slots)


class HeavyHitterSketch:
    """Fixed-memory aggressive-hitter candidate detection.

    Processes scanning packets in batches; memory is bounded by
    ``capacity`` tracked sources, each with a ``kmv_size`` destination
    synopsis.  Candidates are sources whose *estimated* distinct
    destination count reaches the dispersion threshold — they would
    then be confirmed by the exact event pipeline.
    """

    def __init__(self, capacity: int = 1_024, kmv_size: int = 64):
        self._counter = SpaceSaving(capacity, kmv_size=kmv_size)
        self.kmv_size = kmv_size

    @property
    def tracked(self) -> int:
        """Sources currently held in the candidate table."""
        return len(self._counter)

    @property
    def total_packets(self) -> int:
        """Scanning packets folded in so far."""
        return self._counter.total

    def add_batch(self, batch: PacketBatch) -> None:
        """Fold a capture chunk into the sketch."""
        if len(batch) == 0:
            return
        scanning = np.isin(
            batch.proto,
            np.array([p.value for p in SCANNING_PROTOCOLS], dtype=np.uint8),
        )
        if not bool(np.all(scanning)):
            batch = batch.select(scanning)
        if len(batch) == 0:
            return
        order = np.argsort(batch.src, kind="stable")
        src = batch.src[order]
        dst_hashes = _mix64(batch.dst[order].astype(np.uint64))
        boundaries = np.concatenate(
            [[0], np.flatnonzero(np.diff(src.astype(np.int64))) + 1, [len(src)]]
        )
        for b, e in zip(boundaries[:-1], boundaries[1:]):
            key = int(src[b])
            self._counter.offer(key, weight=int(e - b))
            slot = self._counter._slots.get(key)
            if slot is not None:
                slot.dsts.add_hashes(dst_hashes[b:e])

    def candidates(self, dispersion_threshold: float) -> Dict[int, float]:
        """Sources whose estimated unique-dst count clears the threshold.

        Returns ``{source: estimated_unique_dsts}``.
        """
        out: Dict[int, float] = {}
        for slot in self._counter._slots.values():
            estimate = slot.dsts.estimate()
            if estimate >= dispersion_threshold:
                out[slot.key] = estimate
        return out

    def top_sources(self, k: int) -> List[tuple]:
        """The k heaviest sources as (source, packets, max error)."""
        return self._counter.top(k)


def compact_ecdf_sample(values: np.ndarray, k: int) -> np.ndarray:
    """Deterministic k-point compaction of a sorted sample.

    Keeps ``k`` evenly spaced order statistics of ``values`` (always
    including the minimum and maximum) — the bounded-memory stand-in
    for an exact ECDF tail used when a tenant exceeds its sample
    budget.  Every quantile of the compacted sample is an *exact*
    order statistic of the original whose rank is off by at most
    ``n / (2 * (k - 1))``, so tail thresholds degrade gracefully and
    reproducibly: the same sample always compacts to the same points
    (no randomness), and compaction is idempotent for ``len <= k``.
    """
    values = np.asarray(values, dtype=np.float64)
    if k < 2:
        raise ValueError("k must be >= 2")
    if values.size <= k:
        return values.copy()
    idx = np.round(np.linspace(0.0, values.size - 1, k)).astype(np.int64)
    return values[idx]
