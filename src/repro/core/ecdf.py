"""Empirical cumulative distribution functions and tail thresholds.

Definitions 2 and 3 of the paper are percentile rules: compile the ECDF
of a per-event (or per-source-day) statistic and mark the top-alpha
tail as aggressive.  ``ECDF`` wraps a sorted sample with evaluation,
quantile and tail-threshold queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class ECDF:
    """An empirical CDF over a one-dimensional sample."""

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("ECDF needs at least one observation")
        if np.any(~np.isfinite(values)):
            raise ValueError("ECDF sample contains non-finite values")
        self.values = np.sort(values)

    def __len__(self) -> int:
        return len(self.values)

    def evaluate(self, x) -> np.ndarray:
        """P(X <= x) for scalar or array ``x``."""
        x = np.asarray(x, dtype=np.float64)
        ranks = np.searchsorted(self.values, x, side="right")
        result = ranks / len(self.values)
        return result if result.shape else float(result)

    def quantile(self, q: float) -> float:
        """Inverse CDF (lower empirical quantile)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if q == 0:
            return float(self.values[0])
        idx = int(np.ceil(q * len(self.values))) - 1
        return float(self.values[min(max(idx, 0), len(self.values) - 1)])

    def tail_threshold(self, alpha: float) -> float:
        """The (1 - alpha)-percentile critical value of the paper.

        Observations strictly above the threshold constitute (at most)
        the top-``alpha`` tail of the sample.
        """
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        return self.quantile(1.0 - alpha)

    def tail_mass_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``."""
        rank = int(np.searchsorted(self.values, threshold, side="right"))
        return (len(self.values) - rank) / len(self.values)

    def summary(self) -> dict:
        """Descriptive statistics for reports."""
        return {
            "n": len(self.values),
            "min": float(self.values[0]),
            "median": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": float(self.values[-1]),
        }


class StreamingECDF:
    """An :class:`ECDF` whose sample grows incrementally.

    The streaming detection path folds per-chunk observations in as
    flows finalize; thresholds are only needed at snapshot/finish time.
    Observations are buffered per :meth:`add` call and merged into one
    sorted array lazily, so adding is O(chunk) and the first query after
    an add pays one merge.  Because the merged sample is exactly the
    concatenation of everything added, every query returns what a batch
    :class:`ECDF` over the same observations would — the streaming and
    batch detectors therefore compute identical thresholds.
    """

    def __init__(self) -> None:
        self._runs: List[np.ndarray] = []
        self._n = 0
        self._cached: Optional[ECDF] = None
        #: True once the sample was compacted past a memory budget
        #: (:meth:`compact_to`) — queries are approximate from then on.
        self.approximate = False

    def __len__(self) -> int:
        return self._n

    @property
    def is_approximate(self) -> bool:
        """Whether a budget compaction ever dropped observations."""
        # getattr: states pickled before the budget feature lack the
        # attribute; they are exact by construction.
        return getattr(self, "approximate", False)

    def add(self, values) -> None:
        """Fold new observations into the sample."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if np.any(~np.isfinite(values)):
            raise ValueError("ECDF sample contains non-finite values")
        self._runs.append(np.sort(values))
        self._n += values.size
        self._cached = None

    def merge(self, other: "StreamingECDF") -> None:
        """Fold another streaming sample into this one.

        The merged sample is exactly the concatenation of both samples,
        so merging is associative and commutative (any merge tree over
        the same observations yields float-identical queries) — the
        property the shard-parallel detection path
        (:mod:`repro.parallel`) relies on.  ``other`` is left untouched.
        """
        if other is self:
            raise ValueError("cannot merge a StreamingECDF with itself")
        if other is not self and other.is_approximate:
            self.approximate = True
        if other._n == 0:
            return
        self._runs.extend(other._runs)
        self._n += other._n
        self._cached = None

    def compact_to(self, max_samples: int) -> bool:
        """Degrade the sample to at most ``max_samples`` retained points.

        Replaces the runs with evenly spaced order statistics of the
        merged sample (:func:`repro.core.sketch.compact_ecdf_sample`),
        bounding memory at the cost of exactness: subsequent quantile
        and tail-threshold queries answer from the compacted points.
        Deterministic (no sampling randomness) and irreversible; the
        instance is flagged ``approximate`` once anything was dropped.
        Returns True if a compaction happened.
        """
        from repro.core.sketch import compact_ecdf_sample

        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        if self._n <= max_samples:
            return False
        merged = np.sort(np.concatenate(self._runs), kind="stable")
        sample = compact_ecdf_sample(merged, max_samples)
        self._runs = [sample]
        self._n = int(sample.size)
        self._cached = None
        self.approximate = True
        return True

    def ecdf(self) -> ECDF:
        """The batch-equivalent :class:`ECDF` over everything added."""
        if self._n == 0:
            raise ValueError("ECDF needs at least one observation")
        if self._cached is None:
            # Each run is pre-sorted; timsort exploits the runs, making
            # the compaction close to a linear multi-way merge.
            merged = np.sort(np.concatenate(self._runs), kind="stable")
            self._runs = [merged]
            self._cached = ECDF(merged)
        return self._cached

    def evaluate(self, x):
        """P(X <= x); see :meth:`ECDF.evaluate`."""
        return self.ecdf().evaluate(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF; see :meth:`ECDF.quantile`."""
        return self.ecdf().quantile(q)

    def tail_threshold(self, alpha: float) -> float:
        """The (1 - alpha)-percentile critical value."""
        return self.ecdf().tail_threshold(alpha)
