"""Empirical cumulative distribution functions and tail thresholds.

Definitions 2 and 3 of the paper are percentile rules: compile the ECDF
of a per-event (or per-source-day) statistic and mark the top-alpha
tail as aggressive.  ``ECDF`` wraps a sorted sample with evaluation,
quantile and tail-threshold queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ECDF:
    """An empirical CDF over a one-dimensional sample."""

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("ECDF needs at least one observation")
        if np.any(~np.isfinite(values)):
            raise ValueError("ECDF sample contains non-finite values")
        self.values = np.sort(values)

    def __len__(self) -> int:
        return len(self.values)

    def evaluate(self, x) -> np.ndarray:
        """P(X <= x) for scalar or array ``x``."""
        x = np.asarray(x, dtype=np.float64)
        ranks = np.searchsorted(self.values, x, side="right")
        result = ranks / len(self.values)
        return result if result.shape else float(result)

    def quantile(self, q: float) -> float:
        """Inverse CDF (lower empirical quantile)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if q == 0:
            return float(self.values[0])
        idx = int(np.ceil(q * len(self.values))) - 1
        return float(self.values[min(max(idx, 0), len(self.values) - 1)])

    def tail_threshold(self, alpha: float) -> float:
        """The (1 - alpha)-percentile critical value of the paper.

        Observations strictly above the threshold constitute (at most)
        the top-``alpha`` tail of the sample.
        """
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        return self.quantile(1.0 - alpha)

    def tail_mass_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``."""
        rank = int(np.searchsorted(self.values, threshold, side="right"))
        return (len(self.values) - rank) / len(self.values)

    def summary(self) -> dict:
        """Descriptive statistics for reports."""
        return {
            "n": len(self.values),
            "min": float(self.values[0]),
            "median": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": float(self.values[-1]),
        }
