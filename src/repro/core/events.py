"""Darknet events — the "logical scans" of the paper's §2.

A darknet event summarizes the activity of one source IP toward one
destination port and traffic type.  An event ends when the source has
been silent on that (port, type) pair for longer than a timeout derived
from the telescope's aperture (about 10 minutes for ORION; the rule is
in :func:`repro.config.event_timeout_seconds`).  For every event we
record start/end timestamps, total packets and the number of unique
dark destinations contacted — the raw material for all three
aggressive-hitter definitions.

The builder is fully vectorized: packets are lexicographically sorted
by (flow key, timestamp), event boundaries are gap/key transitions, and
per-event unique-destination counts come from a second sort — so
multi-million-packet captures build in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.packet import PacketBatch


def _flow_keys(batch: PacketBatch) -> np.ndarray:
    """Composite (src, dport, proto) key per packet."""
    return (
        (batch.src.astype(np.uint64) << np.uint64(24))
        | (batch.dport.astype(np.uint64) << np.uint64(8))
        | batch.proto.astype(np.uint64)
    )


@dataclass
class EventTable:
    """Column-oriented darknet events.

    Columns (aligned arrays):
        src: source address (uint32).
        dport: destination port (uint16).
        proto: protocol code (uint8).
        start / end: first and last packet timestamps (float64).
        packets: total packets in the event (int64).
        unique_dsts: distinct dark destinations contacted (int64).
    """

    src: np.ndarray
    dport: np.ndarray
    proto: np.ndarray
    start: np.ndarray
    end: np.ndarray
    packets: np.ndarray
    unique_dsts: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.src)
        for column in (
            self.dport,
            self.proto,
            self.start,
            self.end,
            self.packets,
            self.unique_dsts,
        ):
            if len(column) != n:
                raise ValueError("EventTable columns must share one length")

    def __len__(self) -> int:
        return len(self.src)

    @classmethod
    def empty(cls) -> "EventTable":
        """A table with zero events."""
        return cls(
            src=np.empty(0, dtype=np.uint32),
            dport=np.empty(0, dtype=np.uint16),
            proto=np.empty(0, dtype=np.uint8),
            start=np.empty(0, dtype=np.float64),
            end=np.empty(0, dtype=np.float64),
            packets=np.empty(0, dtype=np.int64),
            unique_dsts=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def concat(cls, tables: Sequence["EventTable"]) -> "EventTable":
        """Concatenate tables (row order preserved, no sorting)."""
        tables = [t for t in tables if len(t)]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        return cls(
            src=np.concatenate([t.src for t in tables]),
            dport=np.concatenate([t.dport for t in tables]),
            proto=np.concatenate([t.proto for t in tables]),
            start=np.concatenate([t.start for t in tables]),
            end=np.concatenate([t.end for t in tables]),
            packets=np.concatenate([t.packets for t in tables]),
            unique_dsts=np.concatenate([t.unique_dsts for t in tables]),
        )

    def sorted_canonical(self) -> "EventTable":
        """Rows ordered by (src, dport, proto, start).

        This is exactly the order :func:`build_events` emits (its flow
        key preserves the (src, dport, proto) lexicographic order), so a
        canonically sorted streaming table compares array-equal to the
        batch builder's output.
        """
        order = np.lexsort((self.start, self.proto, self.dport, self.src))
        return self.select(order)

    def select(self, mask: np.ndarray) -> "EventTable":
        """Row subset."""
        return EventTable(
            src=self.src[mask],
            dport=self.dport[mask],
            proto=self.proto[mask],
            start=self.start[mask],
            end=self.end[mask],
            packets=self.packets[mask],
            unique_dsts=self.unique_dsts[mask],
        )

    # ------------------------------------------------------------------
    def start_day(self, day_seconds: float) -> np.ndarray:
        """Day index in which each event began."""
        return np.floor(self.start / day_seconds).astype(np.int64)

    def sources_of(self, mask: Optional[np.ndarray] = None) -> set:
        """Distinct sources of (a subset of) events."""
        src = self.src if mask is None else self.src[mask]
        return {int(a) for a in np.unique(src)}

    def events_for(self, sources) -> "EventTable":
        """Events whose source is in the given set."""
        wanted = np.asarray(sorted(int(a) for a in sources), dtype=np.uint32)
        if len(wanted) == 0:
            return self.select(np.zeros(len(self), dtype=bool))
        return self.select(np.isin(self.src, wanted))

    def _expand_event_days(self, day_seconds: float) -> tuple:
        """One row per (event, overlapped day).

        Returns ``(event_index, day)`` arrays; an event spanning k days
        contributes k rows.  Fully vectorized — the expansion is the
        inner loop of both Definition 3 and the daily activity sets.
        """
        first = np.floor(self.start / day_seconds).astype(np.int64)
        last = np.floor(
            np.maximum(self.end - 1e-9, self.start) / day_seconds
        ).astype(np.int64)
        spans = last - first + 1
        total = int(spans.sum())
        event_index = np.repeat(np.arange(len(self), dtype=np.int64), spans)
        # Per-row offset within its event's day span.
        starts = np.concatenate([[0], np.cumsum(spans)[:-1]])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, spans)
        day = np.repeat(first, spans) + offsets
        return event_index, day

    def daily_port_triples(self, day_seconds: float) -> tuple:
        """Unique (src, day, port·proto) triples over the day expansion.

        An event contributes its (port, proto) pair to every day it
        overlaps.  Returns three aligned arrays ``(src, day, port_proto)``
        sorted lexicographically with duplicates removed — the raw
        material of Definition 3, in a form the streaming detector can
        merge across chunks (set union of triples is associative).
        """
        if len(self) == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        event_index, day = self._expand_event_days(day_seconds)
        src = self.src.astype(np.int64)[event_index]
        port_proto = (
            (self.dport.astype(np.int64) << 8) | self.proto.astype(np.int64)
        )[event_index]
        order = np.lexsort((port_proto, day, src))
        src, day, port_proto = src[order], day[order], port_proto[order]
        first = np.empty(len(src), dtype=bool)
        first[0] = True
        first[1:] = (
            (src[1:] != src[:-1])
            | (day[1:] != day[:-1])
            | (port_proto[1:] != port_proto[:-1])
        )
        return src[first], day[first], port_proto[first]

    def daily_port_counts(self, day_seconds: float) -> dict:
        """Distinct (port, proto) pairs contacted per (src, day).

        Approximates the per-day distinct-port measure of Definition 3
        at event granularity: an event contributes its port to every day
        it overlaps.  Returns ``{(src, day): port_count}``.
        """
        return port_counts_from_triples(*self.daily_port_triples(day_seconds))

    def validate_invariants(self) -> None:
        """Raise when structural invariants are violated."""
        if np.any(self.end < self.start):
            raise ValueError("event end precedes start")
        if np.any(self.packets < 1):
            raise ValueError("event with no packets")
        if np.any(self.unique_dsts < 1):
            raise ValueError("event with no destinations")
        if np.any(self.unique_dsts > self.packets):
            raise ValueError("more unique destinations than packets")


def port_counts_from_triples(
    src: np.ndarray, day: np.ndarray, port_proto: np.ndarray
) -> dict:
    """Group (src, day, port·proto) triples into per-(src, day)
    distinct-port counts, ``{(src, day): count}``.

    Duplicate triples are tolerated and counted once — the streaming
    detector hands in a concatenation of per-chunk runs, where a flow
    active in several chunks repeats its triple.
    """
    if len(src) == 0:
        return {}
    order = np.lexsort((port_proto, day, src))
    src, day, port_proto = src[order], day[order], port_proto[order]
    fresh = np.empty(len(src), dtype=bool)
    fresh[0] = True
    fresh[1:] = (
        (src[1:] != src[:-1])
        | (day[1:] != day[:-1])
        | (port_proto[1:] != port_proto[:-1])
    )
    src, day = src[fresh], day[fresh]
    boundary = np.empty(len(src), dtype=bool)
    boundary[0] = True
    boundary[1:] = (src[1:] != src[:-1]) | (day[1:] != day[:-1])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.concatenate([starts, [len(src)]]))
    return {
        (int(src[i]), int(day[i])): int(c) for i, c in zip(starts, counts)
    }


def build_events(batch: PacketBatch, timeout: float) -> EventTable:
    """Aggregate a packet capture into darknet events.

    Args:
        batch: darknet packets (any order; sorted internally).
        timeout: silence gap, in seconds, that expires an event.

    Returns:
        The :class:`EventTable`, ordered by (flow key, start time).
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    # Only the paper's three scanning packet types form events; DDoS
    # backscatter (SYN-ACK / RST toward spoofed victims) also reaches
    # the telescope but must never contribute to scanner detection —
    # this filter is the first of the paper's false-positive guards.
    from repro.packet import SCANNING_PROTOCOLS

    scanning_codes = np.array(
        [p.value for p in SCANNING_PROTOCOLS], dtype=np.uint8
    )
    if len(batch) and not bool(np.all(np.isin(batch.proto, scanning_codes))):
        batch = batch.select(np.isin(batch.proto, scanning_codes))

    n = len(batch)
    if n == 0:
        return EventTable.empty()

    keys = _flow_keys(batch)
    order = np.lexsort((batch.ts, keys))
    keys = keys[order]
    ts = batch.ts[order]
    src = batch.src[order]
    dport = batch.dport[order]
    proto = batch.proto[order]
    dst = batch.dst[order]

    new_key = np.empty(n, dtype=bool)
    new_key[0] = True
    new_key[1:] = keys[1:] != keys[:-1]
    gap = np.empty(n, dtype=bool)
    gap[0] = False
    gap[1:] = (ts[1:] - ts[:-1]) > timeout
    starts = new_key | gap

    event_id = np.cumsum(starts) - 1
    n_events = int(event_id[-1]) + 1
    start_idx = np.flatnonzero(starts)
    end_idx = np.concatenate([start_idx[1:], [n]]) - 1

    packets = np.bincount(event_id, minlength=n_events).astype(np.int64)

    # Unique destinations per event: sort (event_id, dst) pairs and
    # count first-occurrences per event.
    pair_order = np.lexsort((dst, event_id))
    eid_sorted = event_id[pair_order]
    dst_sorted = dst[pair_order]
    first_pair = np.empty(n, dtype=bool)
    first_pair[0] = True
    first_pair[1:] = (eid_sorted[1:] != eid_sorted[:-1]) | (
        dst_sorted[1:] != dst_sorted[:-1]
    )
    unique_dsts = np.bincount(
        eid_sorted[first_pair], minlength=n_events
    ).astype(np.int64)

    return EventTable(
        src=src[start_idx],
        dport=dport[start_idx],
        proto=proto[start_idx],
        start=ts[start_idx],
        end=ts[end_idx],
        packets=packets,
        unique_dsts=unique_dsts,
    )
