"""The long-lived detection engine behind every run path.

``DetectionEngine`` owns what used to live inline in
:func:`repro.sim.runner.run_scenario`'s streaming loop and
:func:`repro.parallel._finish_merged`: a pool of source-sharded
:class:`~repro.core.streaming.StreamingDetector`\\ s, chunk routing into
that pool, checkpoint/snapshot scheduling, and the telemetry/RunHealth
accounting around them.  The batch drivers construct one, feed it, and
finish it — and the always-on service layer (:mod:`repro.serve`) keeps
one alive per tenant indefinitely, querying and snapshotting it while
chunks keep arriving.

The engine never changes *what* is computed: for any worker count and
any chunking, ``finish()`` emits the same event table and AH sets as
``detect_all(build_events(capture))`` over the concatenated capture
(pinned by golden and property tests).  Its additions are lifecycle
ones:

* ``ingest(chunk)`` — shard a chunk by source address and fold it in.
* ``query()`` — detections *now*, from a copy of the merged shard
  state; the live state keeps accepting chunks afterwards.
* ``snapshot()`` / ``restore()`` — a versioned, digest-friendly byte
  serialization of the whole engine, scheduled periodically through a
  :class:`~repro.core.faults.CheckpointStore` so a killed process can
  resume from the last snapshot.
"""

from __future__ import annotations

import math
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DetectionConfig
from repro.core.detection import DetectionResult
from repro.core.events import EventTable
from repro.core.faults import CheckpointStore
from repro.core.streaming import ChunkReport, StreamingDetector
from repro.core.telemetry import PipelineTelemetry
from repro.io.packetlog import packets_from_npz_bytes
from repro.io.shm import resolve_batch, share_batches, want_shared_memory
from repro.packet import PacketBatch

#: Versioned header for engine snapshots.  Bump on any change to the
#: payload layout; ``restore`` refuses a mismatched header so a stale
#: snapshot is discarded (and the tenant re-fed), never half-loaded.
ENGINE_STATE_MAGIC = b"repro-engine-state-v2\n"

#: Checkpoint kind under which engine snapshots are stored.
ENGINE_CKPT_KIND = "engine"


@dataclass(frozen=True)
class IngestReport:
    """What one (possibly coalesced) ingest call folded in.

    The micro-batch analogue of
    :class:`~repro.core.streaming.ChunkReport`: one report per
    :meth:`DetectionEngine.ingest_payloads` call, covering every wire
    chunk it coalesced.  ``chunks`` counts the chunks actually folded;
    chunks that failed to decode (or arrived out of order) are dropped
    individually and surface in ``errors`` without poisoning the rest
    of the fold — matching what per-chunk ingestion would have rejected.
    """

    packets: int
    events_finalized: int
    open_flows: int
    watermark: Optional[float]
    chunks: int
    errors: Tuple[str, ...]
    seconds: float


@dataclass
class _ShardGauge:
    """Parent-side mirror of one pooled shard's cumulative gauges.

    While a :class:`~repro.serve.foldpool.FoldPool` is attached the
    live detector state lives in the worker processes; each
    :class:`~repro.serve.foldpool.FoldReply` refreshes this mirror so
    the engine's gauge properties stay O(1) — no pipe round-trip.
    """

    packets_seen: int = 0
    events_finalized: int = 0
    open_flows: int = 0
    peak_open_flows: int = 0
    watermark: Optional[float] = field(default=None)


@dataclass(frozen=True)
class EngineQuery:
    """One consistent answer from the merged shard state."""

    #: per-definition detections over everything ingested so far.
    detections: Dict[int, DetectionResult]
    #: events in the (hypothetical) final table if the stream ended now.
    events: int
    #: packets folded in so far.
    packets: int
    #: events finalized by the live builders (flows already timed out).
    events_finalized: int
    #: flows still open across all shards.
    open_flows: int
    #: newest packet timestamp folded in, across shards.
    watermark: Optional[float]
    #: chunks ingested so far.
    chunks: int
    #: True once any volume ECDF was compacted past its sample budget
    #: (Definition 2 thresholds are approximate from then on).
    degraded: bool

    def ah_sources(self, definition: int = 1) -> set:
        """The current AH set for one definition."""
        return self.detections[definition].sources


def gate_time_order(
    batches: Sequence[PacketBatch],
    watermark: Optional[float],
    errors: List[str],
) -> List[PacketBatch]:
    """Drop batches per-chunk ingestion would reject as out of order.

    Coalescing folds several wire chunks as one concatenated batch, so
    the per-chunk ordering check the streaming builder performs
    (each chunk's first timestamp at or past the watermark) has to be
    re-applied *before* concatenation — otherwise one stale chunk would
    either poison the whole fold or, worse, silently slip into it.
    Empty batches are dropped silently; violators append a message to
    ``errors``.  Returns the batches that fold.
    """
    kept = []
    mark = -math.inf if watermark is None else watermark
    for batch in batches:
        if len(batch) == 0:
            continue
        first = float(batch.ts.min())
        if first < mark:
            errors.append(
                f"chunk out of order: first ts {first:.6f} precedes "
                f"watermark {mark:.6f}"
            )
            continue
        mark = max(mark, float(batch.ts.max()))
        kept.append(batch)
    return kept


class DetectionEngine:
    """A sharded detector pool with a service-shaped lifecycle.

    Args:
        timeout: flow idle timeout (seconds) for event building.
        dark_size: number of dark addresses the telescope observes.
        config: detection thresholds; defaults to the paper's.
        day_seconds: scenario calendar day length.
        workers: detector shards to route sources across.  Results are
            identical for any value; >1 only changes memory layout and
            (in the offline pool path) parallelism.
        telemetry: optional :class:`PipelineTelemetry` to account into;
            the engine records the detect stage, per-chunk gauges, and
            the finish-time flush/merge exactly as the pre-engine run
            paths did.
        store: optional :class:`CheckpointStore` for snapshots.
        snapshot_every_chunks: write a snapshot to ``store`` every N
            ingested chunks (``None`` disables scheduling; explicit
            :meth:`save_snapshot` calls still work).
        max_ecdf_samples: per-engine memory budget for the Definition-2
            volume ECDF.  Past it, each shard's sample degrades to that
            many evenly spaced order statistics
            (:func:`repro.core.sketch.compact_ecdf_sample`) — bounded
            memory, approximate tail thresholds, flagged via
            ``degraded``.  ``None`` keeps the exact unbounded sample.
    """

    def __init__(
        self,
        timeout: float,
        dark_size: int,
        config: Optional[DetectionConfig] = None,
        day_seconds: float = 86_400.0,
        *,
        workers: int = 1,
        telemetry: Optional[PipelineTelemetry] = None,
        store: Optional[CheckpointStore] = None,
        snapshot_every_chunks: Optional[int] = None,
        max_ecdf_samples: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if snapshot_every_chunks is not None and snapshot_every_chunks < 1:
            raise ValueError("snapshot_every_chunks must be >= 1")
        if max_ecdf_samples is not None and max_ecdf_samples < 2:
            raise ValueError("max_ecdf_samples must be >= 2")
        self.timeout = float(timeout)
        self.dark_size = int(dark_size)
        self.config = config or DetectionConfig()
        self.day_seconds = float(day_seconds)
        self.workers = int(workers)
        self.telemetry = telemetry
        self.store = store
        self.snapshot_every_chunks = snapshot_every_chunks
        self.max_ecdf_samples = max_ecdf_samples
        self._detectors: List[StreamingDetector] = [
            self._new_detector() for _ in range(self.workers)
        ]
        #: set only by :meth:`from_shards` — switches :meth:`finish`
        #: into the pool path's telemetry accounting.
        self._worker_reports: Optional[list] = None
        self._chunks_ingested = 0
        self._chunks_since_snapshot = 0
        #: newest journal sequence number folded in (0 = none); set by
        #: the serve layer via ``ingest_payloads(last_seq=...)`` and
        #: recorded in snapshots so boot-time journal replay knows
        #: exactly which suffix the last snapshot does *not* cover.
        self._last_seq = 0
        #: ``_last_seq`` as of the most recent persisted snapshot —
        #: journal segments at or below it are safe to truncate.
        self._snapshot_seq = 0
        self._degraded = False
        self._finished = False
        #: fold-pool attachment (serve path); while set, detector
        #: state lives in the pool's workers and ``_detectors`` is
        #: empty — ``_gauges`` mirrors the shard counters.
        self._pool = None
        self._pool_key = None
        self._gauges: List[_ShardGauge] = []
        self._shard_spec_cache = None

    def _new_detector(self) -> StreamingDetector:
        return StreamingDetector(
            self.timeout, self.dark_size, self.config, self.day_seconds
        )

    # ------------------------------------------------------------------
    # Construction from already-run shard states (the offline pool path)
    # ------------------------------------------------------------------
    @classmethod
    def from_shards(
        cls,
        shard_results: Sequence[tuple],
        telemetry: Optional[PipelineTelemetry] = None,
    ) -> "DetectionEngine":
        """Adopt ``(detector, report)`` pairs produced by a worker pool.

        The pairs must be in shard-index order (``run_sharded``
        guarantees it); :meth:`finish` then merges and accounts exactly
        as the pre-engine ``_finish_merged`` did, keeping pool runs
        bit-identical to serial ones.
        """
        if not shard_results:
            raise ValueError("need at least one shard result to adopt")
        detectors = [detector for detector, _ in shard_results]
        first = detectors[0]
        engine = cls(
            first.builder.timeout,
            first.dark_size,
            first.config,
            first.day_seconds,
            workers=len(detectors),
            telemetry=telemetry,
        )
        engine._detectors = detectors
        engine._worker_reports = [report for _, report in shard_results]
        return engine

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    @property
    def packets_seen(self) -> int:
        if self._pool is not None:
            return sum(g.packets_seen for g in self._gauges)
        return sum(d.packets_seen for d in self._detectors)

    @property
    def events_finalized(self) -> int:
        if self._pool is not None:
            return sum(g.events_finalized for g in self._gauges)
        return sum(d.events_finalized for d in self._detectors)

    @property
    def open_flows(self) -> int:
        if self._pool is not None:
            return sum(g.open_flows for g in self._gauges)
        return sum(d.open_flows for d in self._detectors)

    @property
    def peak_open_flows(self) -> int:
        if self._pool is not None:
            return sum(g.peak_open_flows for g in self._gauges)
        return sum(d.peak_open_flows for d in self._detectors)

    @property
    def watermark(self) -> Optional[float]:
        if self._pool is not None:
            marks = [
                g.watermark for g in self._gauges if g.watermark is not None
            ]
        else:
            marks = [
                d.watermark
                for d in self._detectors
                if d.watermark is not None
            ]
        return max(marks) if marks else None

    @property
    def pooled(self) -> bool:
        """True while a fold pool owns this engine's detector state."""
        return self._pool is not None

    @property
    def chunks_ingested(self) -> int:
        return self._chunks_ingested

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def last_seq(self) -> int:
        """Newest journal sequence folded in (0 = none tracked)."""
        return self._last_seq

    @property
    def snapshot_seq(self) -> int:
        """Journal sequence covered by the last persisted snapshot."""
        return self._snapshot_seq

    def advance_seq(self, seq: int) -> None:
        """Record that journal records through ``seq`` are folded in.

        Monotone: a stale (lower) value never rewinds the watermark.
        Rejected chunks advance it too — a chunk the engine dropped as
        undecodable or out of order must not be replayed after a crash,
        since live ingestion already refused it.
        """
        if seq > self._last_seq:
            self._last_seq = int(seq)

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def shard_batch(self, batch) -> list:
        """Partition a batch across this engine's detector shards.

        The engine's own routing hook: one sub-batch per shard, by the
        same source hash every parallel entry point uses
        (:func:`repro.parallel.shard_of`), so an engine-fed run lands
        packets exactly where a pool run would.
        """
        from repro.parallel import shard_batch

        return shard_batch(batch, self.workers)

    # ------------------------------------------------------------------
    # Fold-pool attachment (the serve path's off-loop parallel folds)
    # ------------------------------------------------------------------
    def _shard_spec(self):
        if self._shard_spec_cache is None:
            from repro.serve.foldpool import ShardSpec

            self._shard_spec_cache = ShardSpec(
                self.timeout,
                self.dark_size,
                self.config,
                self.day_seconds,
                self.max_ecdf_samples,
            )
        return self._shard_spec_cache

    def attach_pool(self, pool, key) -> None:
        """Move this engine's detector state into a fold pool.

        ``pool`` is a :class:`~repro.serve.foldpool.FoldPool`; ``key``
        namespaces this engine's shards inside it (the serve layer uses
        the tenant id).  Each shard's serialized state is installed in
        its affine worker; from then on folds run off-process and the
        engine only mirrors the gauges.  Queries, snapshots and
        ``finish`` pull state back over the pipe on demand, so their
        answers are byte-identical to the unpooled engine's.
        """
        if self._finished:
            raise RuntimeError("cannot attach a pool to a finished engine")
        if self._pool is not None:
            raise RuntimeError("a fold pool is already attached")
        gauges = []
        for index, detector in enumerate(self._detectors):
            pool.load(
                (key, index),
                detector.to_bytes() if detector.packets_seen else None,
            )
            gauges.append(
                _ShardGauge(
                    packets_seen=detector.packets_seen,
                    events_finalized=detector.events_finalized,
                    open_flows=detector.open_flows,
                    peak_open_flows=detector.peak_open_flows,
                    watermark=detector.watermark,
                )
            )
        self._pool = pool
        self._pool_key = key
        self._gauges = gauges
        self._detectors = []

    def detach_pool(self) -> None:
        """Pull detector state back out of the pool (no-op if unpooled).

        After this the engine folds locally again; the pool forgets the
        engine's shards.
        """
        if self._pool is None:
            return
        pool, key = self._pool, self._pool_key
        self._detectors = self._collect_detectors()
        self._pool = None
        self._pool_key = None
        self._gauges = []
        pool.drop(key)

    def abandon_pool(self) -> None:
        """Forget pooled state without pulling it back.

        The tenant-removal path: the state is being discarded anyway,
        so skip the collect round-trip and just clear the workers.  The
        engine is left empty (as if freshly built).
        """
        if self._pool is None:
            return
        pool, key = self._pool, self._pool_key
        self._pool = None
        self._pool_key = None
        self._gauges = []
        self._detectors = [
            self._new_detector() for _ in range(self.workers)
        ]
        pool.drop(key)

    def _collect_detectors(self) -> List[StreamingDetector]:
        """Fresh local detector copies of the pooled shard states."""
        detectors = []
        for index in range(self.workers):
            blob = self._pool.collect((self._pool_key, index))
            detectors.append(
                StreamingDetector.from_bytes(blob)
                if blob is not None
                else self._new_detector()
            )
        return detectors

    def _apply_reply(self, index: int, reply) -> None:
        gauge = self._gauges[index]
        gauge.packets_seen = reply.packets_seen
        gauge.events_finalized = reply.events_total
        gauge.open_flows = reply.open_flows
        gauge.peak_open_flows = reply.peak_open_flows
        gauge.watermark = reply.watermark
        if reply.degraded:
            self._degraded = True

    def _fold_pooled(self, batch, errors: List[str]) -> Tuple[int, int]:
        """Fold one coalesced batch through the attached pool."""
        spec = self._shard_spec()
        lease = None
        if self.workers == 1:
            live = [0]
            requests = [
                (
                    (self._pool_key, 0),
                    spec,
                    self._gauges[0].packets_seen,
                    ("batch", batch),
                )
            ]
        else:
            subs = self.shard_batch(batch)
            live = [i for i, sub in enumerate(subs) if len(sub)]
            nbytes = sum(subs[i].nbytes for i in live)
            if want_shared_memory(self._pool.shm, True, nbytes):
                handles, lease = share_batches(
                    [subs[i] for i in live], "fold"
                )
                payloads = [("shm", handle) for handle in handles]
            else:
                payloads = [("batch", subs[i]) for i in live]
            requests = [
                (
                    (self._pool_key, i),
                    spec,
                    self._gauges[i].packets_seen,
                    payload,
                )
                for i, payload in zip(live, payloads)
            ]
        try:
            replies = self._pool.fold_many(requests)
        finally:
            if lease is not None:
                lease.close()
        packets = finalized = 0
        for index, reply in zip(live, replies):
            self._apply_reply(index, reply)
            errors.extend(reply.errors)
            packets += reply.packets
            finalized += reply.events_finalized
        return packets, finalized

    def _fold_coalesced(
        self, kept: List[PacketBatch], errors: List[str]
    ) -> Tuple[int, int]:
        """Fold already-gated batches as one concatenated pass."""
        if not kept:
            return 0, 0
        batch = kept[0] if len(kept) == 1 else PacketBatch.concat(kept)
        if self._pool is not None:
            return self._fold_pooled(batch, errors)
        packets = finalized = 0
        if self.workers == 1:
            try:
                report = self._detectors[0].add_batch(batch)
                packets = report.packets
                finalized = report.events_finalized
            except Exception as exc:  # noqa: BLE001 — surface, don't die
                errors.append(str(exc))
        else:
            for detector, sub in zip(
                self._detectors, self.shard_batch(batch)
            ):
                if len(sub) == 0:
                    continue
                try:
                    report = detector.add_batch(sub)
                    packets += report.packets
                    finalized += report.events_finalized
                except Exception as exc:  # noqa: BLE001
                    errors.append(str(exc))
        if self.max_ecdf_samples is not None:
            for detector in self._detectors:
                if detector.bound_volume_samples(self.max_ecdf_samples):
                    self._degraded = True
        return packets, finalized

    def _account_fold(
        self,
        packets: int,
        finalized: int,
        chunks: int,
        errors: List[str],
        t0: float,
        window_end: Optional[float],
    ) -> IngestReport:
        """Telemetry + chunk/snapshot bookkeeping for one fold pass."""
        seconds = time.perf_counter() - t0
        open_flows = self.open_flows
        watermark = self.watermark
        if self.telemetry is not None:
            self.telemetry.stage("detect").add(packets, finalized, seconds)
            self.telemetry.record_chunk(
                packets=packets,
                events_finalized=finalized,
                open_flows=open_flows,
                window_end=(
                    window_end
                    if window_end is not None
                    else (watermark if watermark is not None else 0.0)
                ),
                watermark=watermark,
            )
        self._chunks_ingested += chunks
        self._chunks_since_snapshot += chunks
        if (
            self.store is not None
            and self.snapshot_every_chunks is not None
            and self._chunks_since_snapshot >= self.snapshot_every_chunks
        ):
            self.save_snapshot()
        return IngestReport(
            packets=packets,
            events_finalized=finalized,
            open_flows=open_flows,
            watermark=watermark,
            chunks=chunks,
            errors=tuple(errors),
            seconds=seconds,
        )

    def ingest_payloads(
        self,
        blobs: Sequence[bytes],
        *,
        window_end: Optional[float] = None,
        last_seq: Optional[int] = None,
    ) -> IngestReport:
        """Decode and fold a micro-batch of npz wire chunks in one pass.

        The serve layer's coalesced entry point: ``blobs`` are raw npz
        payloads in arrival order.  Undecodable or out-of-order chunks
        are dropped individually — each contributes an error string and
        is excluded from the ``chunks`` count, exactly as per-chunk
        ingestion would have rejected it — while the rest concatenate
        into one fold, amortizing decode and the builder's lexsort.
        With a single-shard engine attached to a fold pool, the raw
        bytes ship to the shard's worker and decode entirely
        off-process; sharded pooled engines decode here, split by
        source, and hand sub-batches over (through shared memory once
        past the auto threshold).

        Cumulative results are identical to folding the same chunks one
        at a time: streaming event building is chunking-invariant.
        """
        if self._finished:
            raise RuntimeError("engine already finished")
        t0 = time.perf_counter()
        errors: List[str] = []
        if self._pool is not None and self.workers == 1:
            reply = self._pool.fold_many(
                [
                    (
                        (self._pool_key, 0),
                        self._shard_spec(),
                        self._gauges[0].packets_seen,
                        ("npz", list(blobs)),
                    )
                ]
            )[0]
            self._apply_reply(0, reply)
            errors.extend(reply.errors)
            packets, finalized = reply.packets, reply.events_finalized
        else:
            batches = []
            for blob in blobs:
                try:
                    batches.append(
                        packets_from_npz_bytes(blob, label="chunk")
                    )
                except Exception as exc:  # noqa: BLE001 — isolate chunk
                    errors.append(str(exc))
            kept = gate_time_order(batches, self.watermark, errors)
            packets, finalized = self._fold_coalesced(kept, errors)
        chunks = max(0, len(blobs) - len(errors))
        if last_seq is not None:
            # Advance *before* accounting so a snapshot scheduled by
            # this very fold records coverage of these chunks.
            self.advance_seq(last_seq)
        return self._account_fold(
            packets, finalized, chunks, errors, t0, window_end
        )

    def ingest(self, chunk) -> ChunkReport:
        """Fold one time-ordered capture chunk into the shard pool.

        ``chunk`` is a :class:`~repro.packet.PacketBatch` or anything
        with ``.packets`` (and optionally ``.end``, the chunk's window
        edge — used for watermark-lag accounting), e.g. the
        :class:`~repro.telescope.capture.CaptureChunk` objects that
        :meth:`Telescope.stream` yields.  A
        :class:`~repro.io.shm.ShmBatch` handle (bare or under
        ``.packets``) is resolved to read-only views of its
        shared-memory segment — the zero-copy ingest path; the handle's
        segment must stay leased by its producer until this call
        returns.
        """
        if self._finished:
            raise RuntimeError("engine already finished")
        batch = resolve_batch(getattr(chunk, "packets", chunk))
        if self._pool is not None:
            t0 = time.perf_counter()
            errors: List[str] = []
            kept = gate_time_order([batch], self.watermark, errors)
            packets, finalized = self._fold_coalesced(kept, errors)
            if errors:
                raise ValueError("; ".join(errors))
            report = self._account_fold(
                packets, finalized, 1, errors, t0,
                getattr(chunk, "end", None),
            )
            return ChunkReport(
                packets=report.packets,
                events_finalized=report.events_finalized,
                open_flows=report.open_flows,
                watermark=report.watermark,
            )
        t0 = time.perf_counter()
        if self.workers == 1:
            report = self._detectors[0].add_batch(batch)
            packets = report.packets
            finalized = report.events_finalized
            open_flows = report.open_flows
            watermark = report.watermark
        else:
            finalized = 0
            for detector, sub in zip(
                self._detectors, self.shard_batch(batch)
            ):
                if len(sub):
                    finalized += detector.add_batch(sub).events_finalized
            packets = len(batch)
            open_flows = self.open_flows
            watermark = self.watermark
        if self.max_ecdf_samples is not None:
            for detector in self._detectors:
                if detector.bound_volume_samples(self.max_ecdf_samples):
                    self._degraded = True
        seconds = time.perf_counter() - t0
        if self.telemetry is not None:
            self.telemetry.stage("detect").add(packets, finalized, seconds)
            window_end = getattr(chunk, "end", None)
            self.telemetry.record_chunk(
                packets=packets,
                events_finalized=finalized,
                open_flows=open_flows,
                window_end=(
                    window_end
                    if window_end is not None
                    else (watermark if watermark is not None else 0.0)
                ),
                watermark=watermark,
            )
        self._chunks_ingested += 1
        self._chunks_since_snapshot += 1
        if (
            self.store is not None
            and self.snapshot_every_chunks is not None
            and self._chunks_since_snapshot >= self.snapshot_every_chunks
        ):
            self.save_snapshot()
        return ChunkReport(
            packets=packets,
            events_finalized=finalized,
            open_flows=open_flows,
            watermark=watermark,
        )

    # ------------------------------------------------------------------
    # Query (live) and finish (terminal)
    # ------------------------------------------------------------------
    def _merged_copy(self) -> StreamingDetector:
        """A merged deep copy of the shard states (live state untouched).

        The copy goes through ``to_bytes``/``from_bytes`` — the exact
        serialization snapshots and checkpoints use, so a query answers
        from the same bytes a restore would.  With a fold pool attached
        the states come over the worker pipes (``collect``), which ship
        the very same serialization.
        """
        if self._pool is not None:
            copies = self._collect_detectors()
        else:
            copies = [
                StreamingDetector.from_bytes(d.to_bytes())
                for d in self._detectors
            ]
        merged = copies[0]
        for other in copies[1:]:
            merged.merge(other)
        return merged

    def query(self) -> EngineQuery:
        """Detections over everything ingested so far, without ending
        the stream: open flows are flushed and thresholds derived on a
        *copy* of the merged shard state, exactly as :meth:`finish`
        would — the answer equals an offline run over the traffic seen
        so far — and the live state keeps accepting chunks."""
        packets = self.packets_seen
        finalized = self.events_finalized
        open_flows = self.open_flows
        watermark = self.watermark
        events, detections = self._merged_copy().finish()
        return EngineQuery(
            detections=detections,
            events=len(events),
            packets=packets,
            events_finalized=finalized,
            open_flows=open_flows,
            watermark=watermark,
            chunks=self._chunks_ingested,
            degraded=self._degraded,
        )

    def status(self) -> dict:
        """Cheap counters for health endpoints (no merge, no flush)."""
        return {
            "packets": self.packets_seen,
            "events_finalized": self.events_finalized,
            "open_flows": self.open_flows,
            "peak_open_flows": self.peak_open_flows,
            "watermark": self.watermark,
            "chunks": self._chunks_ingested,
            "workers": self.workers,
            "degraded": self._degraded,
            "finished": self._finished,
            "pooled": self._pool is not None,
            "last_seq": self._last_seq,
            "snapshot_seq": self._snapshot_seq,
        }

    def finish(self) -> Tuple[EventTable, Dict[int, DetectionResult]]:
        """Flush all shards, merge in shard order, detect once.

        Terminal: the engine accepts no further chunks.  Telemetry
        accounting reproduces the pre-engine run paths exactly — the
        pool path (``from_shards``) records worker stats and a merge
        stage; the local path records the flush into the detect stage.
        """
        if self._finished:
            raise RuntimeError("engine already finished")
        self.detach_pool()
        t0 = time.perf_counter()
        merged = self._detectors[0]
        for other in self._detectors[1:]:
            merged.merge(other)
        events, detections = merged.finish()
        merge_seconds = time.perf_counter() - t0
        self._detectors = [merged]
        self._finished = True
        telemetry = self.telemetry
        if telemetry is not None:
            if self._worker_reports is not None:
                reports = self._worker_reports
                for report in reports:
                    telemetry.record_worker(
                        shard=report.shard,
                        packets=report.packets,
                        events=report.events_finalized,
                        peak_open_flows=report.peak_open_flows,
                        seconds=report.seconds,
                        generate_seconds=report.generate_seconds,
                        spans_derived=getattr(report, "spans_derived", 0),
                        spans_emitted=getattr(report, "spans_emitted", 0),
                        planned_cost=getattr(report, "planned_cost", 0.0),
                        tasks=getattr(report, "tasks", 1),
                        stolen_tasks=getattr(report, "stolen_tasks", 0),
                    )
                generate_seconds = sum(r.generate_seconds for r in reports)
                if generate_seconds > 0.0:
                    total_packets = sum(r.packets for r in reports)
                    telemetry.stage("generate").add(
                        total_packets, total_packets, generate_seconds
                    )
                telemetry.stage("merge").add(
                    sum(r.events_finalized for r in reports),
                    len(events),
                    merge_seconds,
                )
                telemetry.total_events = len(events)
                telemetry.final_open_flows = merged.open_flows
                if merged.watermark is not None:
                    telemetry.watermark = merged.watermark
            else:
                flush_events = len(events) - telemetry.total_events
                telemetry.stage("detect").add(0, flush_events, merge_seconds)
                telemetry.total_events = len(events)
                telemetry.peak_open_flows = max(
                    telemetry.peak_open_flows, merged.peak_open_flows
                )
                telemetry.final_open_flows = merged.open_flows
        return events, detections

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the whole live engine (config + all shard states).

        The payload is a versioned header plus a pickle whose detector
        states are themselves ``StreamingDetector.to_bytes`` blobs —
        restoring re-validates each shard's own version header too.
        """
        if self._finished:
            raise RuntimeError("cannot snapshot a finished engine")
        if self._pool is not None:
            blobs = []
            for index in range(self.workers):
                blob = self._pool.collect((self._pool_key, index))
                if blob is None:
                    blob = self._new_detector().to_bytes()
                blobs.append(blob)
        else:
            blobs = [d.to_bytes() for d in self._detectors]
        payload = {
            "timeout": self.timeout,
            "dark_size": self.dark_size,
            "config": self.config,
            "day_seconds": self.day_seconds,
            "workers": self.workers,
            "chunks": self._chunks_ingested,
            "degraded": self._degraded,
            "max_ecdf_samples": self.max_ecdf_samples,
            # Read back with .get() so pre-journal v2 snapshots stay
            # loadable (they replay the whole journal, which dedups).
            "last_seq": self._last_seq,
            "detectors": blobs,
        }
        return ENGINE_STATE_MAGIC + pickle.dumps(payload, protocol=4)

    @classmethod
    def restore(
        cls,
        data: bytes,
        *,
        telemetry: Optional[PipelineTelemetry] = None,
        store: Optional[CheckpointStore] = None,
        snapshot_every_chunks: Optional[int] = None,
    ) -> "DetectionEngine":
        """Rebuild an engine serialized by :meth:`snapshot`.

        Raises ``ValueError`` on a missing or mismatched version header
        — a snapshot from a different state version must be discarded,
        never half-loaded.
        """
        if not data.startswith(ENGINE_STATE_MAGIC):
            raise ValueError(
                "not a serialized DetectionEngine snapshot (missing or "
                f"mismatched header; expected {ENGINE_STATE_MAGIC!r})"
            )
        payload = pickle.loads(data[len(ENGINE_STATE_MAGIC):])
        engine = cls(
            payload["timeout"],
            payload["dark_size"],
            payload["config"],
            payload["day_seconds"],
            workers=payload["workers"],
            telemetry=telemetry,
            store=store,
            snapshot_every_chunks=snapshot_every_chunks,
            max_ecdf_samples=payload["max_ecdf_samples"],
        )
        engine._detectors = [
            StreamingDetector.from_bytes(blob)
            for blob in payload["detectors"]
        ]
        engine._chunks_ingested = int(payload["chunks"])
        engine._degraded = bool(payload["degraded"])
        engine._last_seq = int(payload.get("last_seq", 0))
        engine._snapshot_seq = engine._last_seq
        return engine

    def save_snapshot(self) -> Path:
        """Write a snapshot through the attached checkpoint store."""
        if self.store is None:
            raise RuntimeError("engine has no checkpoint store attached")
        covered = self._last_seq
        path = self.store.save(ENGINE_CKPT_KIND, 0, self.snapshot())
        self._chunks_since_snapshot = 0
        # Only after store.save returns is the snapshot durable — and
        # only then may journal segments through ``covered`` go away.
        self._snapshot_seq = max(self._snapshot_seq, covered)
        return path

    @classmethod
    def from_store(
        cls,
        store: CheckpointStore,
        *,
        telemetry: Optional[PipelineTelemetry] = None,
        snapshot_every_chunks: Optional[int] = None,
    ) -> Optional["DetectionEngine"]:
        """Restore the last snapshot in ``store``, or ``None`` if there
        is none (or it is damaged — accounted on the store's health)."""
        payload = store.load(ENGINE_CKPT_KIND, 0)
        if payload is None:
            return None
        return cls.restore(
            payload,
            telemetry=telemetry,
            store=store,
            snapshot_every_chunks=snapshot_every_chunks,
        )
