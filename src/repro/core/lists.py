"""Operational daily AH blocklists.

The paper's stated deliverable to the community is daily lists of
aggressive scanners under all three definitions, for operators and
threat exchanges to subscribe to.  This module produces those lists
from the detection results, annotates each entry with enough context
to act on (definitions matched, packet volume, origin), and quantifies
the paper's Zipf argument: blocking even a small top-k of AH removes a
large share of the unwanted traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.detection import DetectionResult
from repro.net.addr import format_ip
from repro.net.asn import ASRegistry
from repro.telescope.capture import DarknetCapture


@dataclass(frozen=True)
class BlocklistEntry:
    """One address on a daily blocklist."""

    address: int
    definitions: tuple
    packets: int
    asn: int
    country: str
    acknowledged: bool

    def format(self) -> str:
        """One CSV-ish line: ip,defs,packets,asn,country,acked."""
        defs = "+".join(str(d) for d in self.definitions)
        return (
            f"{format_ip(self.address)},{defs},{self.packets},"
            f"{self.asn},{self.country},{int(self.acknowledged)}"
        )


@dataclass
class DailyBlocklist:
    """The blocklist for one day."""

    day: int
    entries: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def addresses(self) -> set:
        """The listed addresses."""
        return {e.address for e in self.entries}

    def non_acknowledged(self) -> list:
        """The presumably miscreant subset operators would block."""
        return [e for e in self.entries if not e.acknowledged]

    def top_by_packets(self, k: int) -> list:
        """The k heaviest hitters (the practical small blocklist)."""
        return sorted(self.entries, key=lambda e: e.packets, reverse=True)[:k]

    def render(self) -> str:
        """The publishable text artifact."""
        header = "# ip,definitions,darknet_packets,asn,country,acknowledged"
        lines = [header] + [e.format() for e in self.entries]
        return "\n".join(lines)


def build_daily_blocklist(
    day: int,
    detections: Dict[int, DetectionResult],
    capture: DarknetCapture,
    day_seconds: float,
    registry: Optional[ASRegistry] = None,
    acked_sources: Optional[set] = None,
) -> DailyBlocklist:
    """Assemble one day's blocklist across all three definitions.

    Args:
        day: day index.
        detections: output of :func:`repro.core.detection.detect_all`.
        capture: darknet capture for packet annotation.
        day_seconds: day length.
        registry: optional AS registry for origin annotation.
        acked_sources: addresses attributed to acknowledged orgs, which
            are flagged (operators may choose not to block research).
    """
    acked_sources = acked_sources or set()
    membership: Dict[int, list] = {}
    for definition, result in sorted(detections.items()):
        for address in result.active_on(day):
            membership.setdefault(int(address), []).append(definition)
    if not membership:
        return DailyBlocklist(day=day)

    batch = capture.day_slice(day, day_seconds)
    packets_by_src: Dict[int, int] = {}
    if len(batch):
        uniq, counts = np.unique(batch.src, return_counts=True)
        packets_by_src = {int(s): int(c) for s, c in zip(uniq, counts)}

    addresses = np.array(sorted(membership), dtype=np.uint32)
    if registry is not None:
        idx = registry.lookup_index(addresses)
        asns = [registry.systems[i].asn if i >= 0 else 0 for i in idx]
        countries = [
            registry.systems[i].country if i >= 0 else "??" for i in idx
        ]
    else:
        asns = [0] * len(addresses)
        countries = ["??"] * len(addresses)

    entries = [
        BlocklistEntry(
            address=int(address),
            definitions=tuple(membership[int(address)]),
            packets=packets_by_src.get(int(address), 0),
            asn=asn,
            country=country,
            acknowledged=int(address) in acked_sources,
        )
        for address, asn, country in zip(addresses, asns, countries)
    ]
    entries.sort(key=lambda e: e.packets, reverse=True)
    return DailyBlocklist(day=day, entries=entries)


def amelioration_curve(blocklist: DailyBlocklist) -> np.ndarray:
    """Traffic share removed by blocking the top-k entries.

    Operationalizes Figure 6 (right): ``curve[k-1]`` is the fraction of
    the day's AH packets eliminated by blocking the k heaviest entries.
    """
    packets = np.array(
        sorted((e.packets for e in blocklist.entries), reverse=True),
        dtype=np.float64,
    )
    total = packets.sum()
    if total <= 0:
        return np.zeros(len(packets))
    return np.cumsum(packets) / total


def blocklist_size_for_share(
    blocklist: DailyBlocklist, target_share: float
) -> int:
    """Smallest top-k blocklist removing ``target_share`` of AH traffic."""
    if not 0 < target_share <= 1:
        raise ValueError("target_share must be in (0, 1]")
    curve = amelioration_curve(blocklist)
    if len(curve) == 0 or curve[-1] < target_share:
        return len(curve)
    return int(np.searchsorted(curve, target_share) + 1)
