"""Fault-tolerant shard execution (``repro.core.faults``).

The parallel entry points in :mod:`repro.parallel` split a run into
per-shard units whose states merge deterministically — which makes a
shard the natural unit of *recovery* too.  This module supplies the
machinery every one of those entry points now routes through:

* :func:`run_sharded` — a resilient map over shard worker functions:
  per-shard submission with bounded retry and exponential backoff, a
  watchdog that treats a stalled pool as a failure, and
  ``BrokenProcessPool`` recovery that respawns the pool and re-runs
  only the shards that had not finished.
* :class:`CheckpointStore` — crash-safe persistence of finished shard
  states: payloads are written atomically (tmp + fsync + rename) under
  a content digest, and a corrupted or truncated checkpoint is
  discarded (and counted) rather than trusted, so a resumed run
  re-executes exactly the missing or damaged shards.
* :class:`FaultPlan` — deterministic, seed-derived fault injection
  (kill / hard-abort / delay of specific shard attempts) that the test
  suite and the CI fault matrix use to exercise every recovery path.

Everything here is mechanism, not policy: results of a faulted run are
bit-identical to a fault-free run because retry and resume re-execute
whole shards from their inputs — shard workers are pure functions of
``(shard args, derived RNG streams)`` — and the merge order never
depends on completion order.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union


class FaultError(RuntimeError):
    """Base class of the fault-layer errors."""


class ChunkCorruptionError(FaultError, ValueError):
    """A packet-chunk archive is truncated, altered, or unreadable.

    Raised by the chunk readers in :mod:`repro.io.packetlog` with the
    offending path in the message.  Not retryable: re-reading corrupt
    bytes cannot succeed, so :func:`run_sharded` surfaces it immediately
    instead of burning retries.
    """


class InjectedFault(FaultError):
    """A :class:`FaultPlan` killed this shard attempt (tests only)."""


class WatchdogTimeout(FaultError):
    """No shard made progress within the watchdog window."""


class ShardFailedError(FaultError):
    """A shard exhausted its retry budget.

    Carries the shard index and the last underlying exception (also
    chained as ``__cause__``).
    """

    def __init__(self, shard: int, attempts: int, cause: BaseException):
        super().__init__(
            f"shard {shard} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


#: Exception types that retrying cannot fix — surfaced immediately.
NON_RETRYABLE = (ChunkCorruptionError, KeyboardInterrupt, SystemExit)


def retryable(exc: BaseException) -> bool:
    """Whether a shard failure is worth re-running the shard for."""
    return not isinstance(exc, NON_RETRYABLE)


# ----------------------------------------------------------------------
# Atomic bytes + digests
# ----------------------------------------------------------------------


def sha256_hex(data: bytes) -> str:
    """Content digest used by checkpoints and the chunk manifest."""
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> str:
    """Write ``data`` to ``path`` crash-safely; returns its digest.

    The bytes land in a temporary file in the *same directory* (so the
    final rename cannot cross filesystems), are flushed and fsynced,
    and only then renamed over ``path``.  A crash at any point leaves
    either the old file or the new file — never a truncated hybrid —
    and the stray ``.tmp`` is ignored by every reader.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return sha256_hex(data)


def atomic_write_json(path: Union[str, Path], obj) -> str:
    """Crash-safe JSON write (sorted keys, indented); returns digest.

    Used for small registry files that must never be observed
    half-written — e.g. the tenant registry the :mod:`repro.serve`
    service re-reads on boot to restore its tenants.
    """
    data = json.dumps(obj, indent=2, sort_keys=True).encode()
    return atomic_write_bytes(path, data)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard :func:`run_sharded` fights for each shard.

    Attributes:
        max_retries: re-runs allowed per shard beyond the first attempt.
        backoff_seconds: sleep before the first retry.
        backoff_factor: multiplier applied per further retry.
        max_backoff_seconds: cap on any single backoff sleep.
        watchdog_seconds: if no shard completes within this window the
            pool is presumed wedged — it is torn down, unfinished shards
            are charged one attempt, and a fresh pool retries them.
            ``None`` disables the watchdog.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    watchdog_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.watchdog_seconds is not None and self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_seconds)


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected shard failures.

    Keys are shard indices; a value of ``k`` fails that shard's first
    ``k`` attempts (attempt numbers are 0-based), after which the shard
    runs clean — so a plan with ``k <= max_retries`` always converges.

    Attributes:
        kill: shards whose attempts raise :class:`InjectedFault` — the
            well-behaved failure (an exception crossing the future).
        abort: shards whose attempts hard-exit the worker process
            (``os._exit``), producing a real ``BrokenProcessPool`` in
            the parent.  Downgraded to a :class:`InjectedFault` raise
            when the shard runs in-process, where a hard exit would
            kill the caller.
        delay: shards whose *first* attempt sleeps this many seconds
            before working (watchdog fodder).

    The plan is an ordinary frozen dataclass of dicts: picklable, so it
    travels to worker processes, and trivially deterministic.
    :meth:`from_seed` derives a plan from an integer seed for
    property-style tests.
    """

    kill: Mapping[int, int] = field(default_factory=dict)
    abort: Mapping[int, int] = field(default_factory=dict)
    delay: Mapping[int, float] = field(default_factory=dict)

    @classmethod
    def from_seed(
        cls, seed: int, n_shards: int, *, kills: int = 1, mode: str = "kill"
    ) -> "FaultPlan":
        """Derive a plan killing ``kills`` distinct shards once each.

        The victim set is a pure function of ``(seed, n_shards, kills)``
        — numpy's seeded choice — so two runs with the same seed inject
        exactly the same faults.
        """
        import numpy as np

        if mode not in ("kill", "abort"):
            raise ValueError(f"unknown fault mode: {mode!r}")
        if not 0 <= kills <= n_shards:
            raise ValueError("kills must be in [0, n_shards]")
        rng = np.random.default_rng(seed)
        victims = rng.choice(n_shards, size=kills, replace=False)
        schedule = {int(shard): 1 for shard in victims}
        if mode == "abort":
            return cls(abort=schedule)
        return cls(kill=schedule)

    def apply(self, shard: int, attempt: int, in_process: bool) -> None:
        """Inject this shard attempt's scheduled fault, if any."""
        delay = self.delay.get(shard)
        if delay is not None and attempt == 0:
            time.sleep(delay)
        if attempt < self.abort.get(shard, 0):
            if in_process:
                raise InjectedFault(
                    f"injected abort (in-process) of shard {shard} "
                    f"attempt {attempt}"
                )
            os._exit(1)
        if attempt < self.kill.get(shard, 0):
            raise InjectedFault(
                f"injected kill of shard {shard} attempt {attempt}"
            )


def _invoke(worker, shard, attempt, plan, args, in_process):
    """Top-level worker trampoline (picklable): inject, then run."""
    if plan is not None:
        plan.apply(shard, attempt, in_process)
    return worker(*args)


# ----------------------------------------------------------------------
# Crash-safe checkpoint store
# ----------------------------------------------------------------------

_CKPT_MAGIC = b"repro-checkpoint-v1"


class CheckpointStore:
    """Digest-verified per-shard state files under one run directory.

    Layout: ``<run_dir>/<kind>-<shard>.ckpt`` holding a small header
    (magic, payload sha256) followed by the payload, each file written
    atomically.  ``<run_dir>/run.json`` records the run's parameters so
    a resume with mismatched configuration fails loudly instead of
    merging incompatible shard states.

    A checkpoint that is missing, truncated, or whose digest does not
    match is treated as *absent* — :meth:`load` returns ``None``, the
    damage is counted on the attached :class:`~repro.core.telemetry.RunHealth`,
    and the shard simply re-executes.  Corruption can therefore delay a
    resume but never poison its result.
    """

    def __init__(self, run_dir: Union[str, Path], health=None):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.health = health

    # ------------------------------------------------------------------
    def path_for(self, kind: str, shard: int) -> Path:
        return self.run_dir / f"{kind}-{shard:05d}.ckpt"

    def save(self, kind: str, shard: int, payload: bytes) -> Path:
        """Persist one shard's serialized state atomically."""
        header = b"%s\n%s\n" % (_CKPT_MAGIC, sha256_hex(payload).encode())
        path = self.path_for(kind, shard)
        atomic_write_bytes(path, header + payload)
        if self.health is not None:
            self.health.checkpoint_writes += 1
        return path

    def load(self, kind: str, shard: int) -> Optional[bytes]:
        """The verified payload, or ``None`` if absent or damaged."""
        path = self.path_for(kind, shard)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        magic, _, rest = raw.partition(b"\n")
        digest, _, payload = rest.partition(b"\n")
        if magic != _CKPT_MAGIC or sha256_hex(payload) != digest.decode(
            "ascii", errors="replace"
        ):
            if self.health is not None:
                self.health.checkpoint_corrupt += 1
            return None
        return payload

    # ------------------------------------------------------------------
    def meta_path(self) -> Path:
        return self.run_dir / "run.json"

    def write_meta(self, meta: dict) -> None:
        """Record the run's parameters (atomic; idempotent)."""
        atomic_write_bytes(
            self.meta_path(),
            json.dumps(meta, indent=2, sort_keys=True).encode(),
        )

    def load_meta(self) -> Optional[dict]:
        try:
            return json.loads(self.meta_path().read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            return None

    def require_meta(self, meta: dict) -> None:
        """Adopt ``meta`` on first use; refuse a mismatched resume.

        Shard states are only mergeable when the run configuration
        (worker count, thresholds, inputs...) is identical, so resuming
        into a directory recorded under different parameters raises.
        """
        existing = self.load_meta()
        if existing is None:
            self.write_meta(meta)
            return
        if existing != meta:
            changed = sorted(
                key
                for key in set(existing) | set(meta)
                if existing.get(key) != meta.get(key)
            )
            raise ValueError(
                f"checkpoint directory {self.run_dir} was written by a "
                f"different run configuration (mismatched: {changed}); "
                "refusing to merge incompatible shard states"
            )


# ----------------------------------------------------------------------
# Resilient shard execution
# ----------------------------------------------------------------------


def run_sharded(
    worker: Callable,
    shard_args: Sequence[tuple],
    *,
    policy: Optional[RetryPolicy] = None,
    plan: Optional[FaultPlan] = None,
    use_processes: bool = True,
    max_workers: Optional[int] = None,
    submit_order: Optional[Sequence[int]] = None,
    health=None,
    store: Optional[CheckpointStore] = None,
    kind: str = "shard",
    dumps: Callable = pickle.dumps,
    loads: Callable = pickle.loads,
    sleep: Callable = time.sleep,
) -> List:
    """Run ``worker(*shard_args[i])`` for every shard, resiliently.

    Returns the per-shard results in shard-index order — completion
    order never leaks into the output, which is what keeps faulted runs
    bit-identical to fault-free ones.

    Failure handling, per shard:

    * An exception from the worker is retried up to
      ``policy.max_retries`` times with exponential backoff; exhaustion
      raises :class:`ShardFailedError` (remaining futures are cancelled
      — the first failure surfaces immediately, not after earlier
      submissions drain).
    * Non-retryable exceptions (:data:`NON_RETRYABLE`, e.g. a corrupt
      chunk) propagate immediately, untouched.
    * A broken pool (worker OOM-killed, hard exit) tears the executor
      down, charges every unfinished shard one attempt, respawns a
      fresh pool and re-submits *only* the unfinished shards.
    * A watchdog timeout (no completion within
      ``policy.watchdog_seconds``) is handled like a broken pool.

    With ``store`` set, each finished shard's result is serialized via
    ``dumps`` and checkpointed; on entry, verified checkpoints are
    loaded via ``loads`` and those shards are not re-run — this is the
    resume path, and it composes with every failure mode above.

    ``submit_order`` (a permutation of the shard indices) controls the
    order shards enter the executor's pending queue — nothing else.
    With more shards than ``max_workers`` the shared queue *is* a
    work-stealing scheduler: whichever worker goes idle takes the next
    queued shard, so submitting in descending planned cost (see
    :meth:`repro.core.schedule.SchedulePlan.submit_order`) starts the
    heavy shards first and back-fills stragglers with the cheap tail.
    Results still return in shard-index order, and retry, checkpointing
    and fault injection are all keyed by shard index, so execution
    order never reaches the output.

    ``use_processes=False`` runs shards serially in-process through the
    same retry/checkpoint logic (fault plans downgrade hard aborts to
    exceptions there).
    """
    policy = policy or RetryPolicy()
    n = len(shard_args)
    if submit_order is None:
        submit_order = range(n)
    elif sorted(submit_order) != list(range(n)):
        raise ValueError(
            "submit_order must be a permutation of the shard indices"
        )
    results: Dict[int, object] = {}
    attempts = [0] * n

    if store is not None:
        for shard in range(n):
            payload = store.load(kind, shard)
            if payload is None:
                continue
            try:
                results[shard] = loads(payload)
            except Exception:
                # An intact file holding an incompatible state (e.g. a
                # version bump) is as useless as a damaged one: drop it
                # and re-run the shard.
                if health is not None:
                    health.checkpoint_corrupt += 1
                continue
            if health is not None:
                health.checkpoint_hits += 1

    def record(shard: int, result) -> None:
        results[shard] = result
        if store is not None:
            store.save(kind, shard, dumps(result))

    def charge(shard: int, exc: BaseException) -> None:
        """Count one failed attempt; raise when the budget is gone."""
        if not retryable(exc):
            raise exc
        attempts[shard] += 1
        if attempts[shard] > policy.max_retries:
            raise ShardFailedError(shard, attempts[shard], exc) from exc
        if health is not None:
            health.retries += 1

    if not use_processes:
        for shard in submit_order:
            while shard not in results:
                try:
                    record(
                        shard,
                        _invoke(
                            worker,
                            shard,
                            attempts[shard],
                            plan,
                            shard_args[shard],
                            True,
                        ),
                    )
                except Exception as exc:
                    charge(shard, exc)
                    sleep(policy.backoff(attempts[shard]))
        return [results[shard] for shard in range(n)]

    pool: Optional[ProcessPoolExecutor] = None
    pool_size = max_workers or max(n, 1)
    try:
        while len(results) < n:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=pool_size)
            futures = {
                pool.submit(
                    _invoke,
                    worker,
                    shard,
                    attempts[shard],
                    plan,
                    shard_args[shard],
                    False,
                ): shard
                for shard in submit_order
                if shard not in results
            }
            try:
                while futures:
                    done, _ = wait(
                        list(futures),
                        timeout=policy.watchdog_seconds,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        raise WatchdogTimeout(
                            f"no shard completed within "
                            f"{policy.watchdog_seconds}s; presuming the "
                            "pool is wedged"
                        )
                    for future in done:
                        shard = futures.pop(future)
                        exc = future.exception()
                        if exc is None:
                            record(shard, future.result())
                            continue
                        if isinstance(exc, BrokenProcessPool):
                            raise exc
                        charge(shard, exc)
                        sleep(policy.backoff(attempts[shard]))
                        futures[
                            pool.submit(
                                _invoke,
                                worker,
                                shard,
                                attempts[shard],
                                plan,
                                shard_args[shard],
                                False,
                            )
                        ] = shard
            except (BrokenProcessPool, WatchdogTimeout) as exc:
                # Every unfinished shard is suspect: the dead worker is
                # not identifiable from the parent, so all of them are
                # charged one attempt and re-run on a fresh pool.
                if health is not None:
                    if isinstance(exc, WatchdogTimeout):
                        health.watchdog_timeouts += 1
                    else:
                        health.respawns += 1
                _shutdown(pool)
                pool = None
                unfinished = [s for s in range(n) if s not in results]
                for shard in unfinished:
                    charge(shard, exc)
                if unfinished:
                    sleep(
                        policy.backoff(max(attempts[s] for s in unfinished))
                    )
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    finally:
        if pool is not None:
            _shutdown(pool)
    return [results[shard] for shard in range(n)]


def _shutdown(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged) pool down without waiting on workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures needs 3.9+
        pool.shutdown(wait=False)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():
            process.terminate()
