"""Size-aware shard planning and work-stealing decomposition.

The paper's central measurement — scanner traffic is extremely
heavy-tailed — is also the parallel pipeline's scaling problem: static
contiguous shards (``np.array_split``) put one aggressive scanner's
entire workload on one worker while the others idle.  This module turns
per-item *cost predictions* (``Scanner.cost_estimate``, measured packet
counts, or uniform weights) into an explicit :class:`SchedulePlan`:
which items form which task, which logical shard each task belongs to,
and in what order tasks should be submitted to the pool.

Two planning shapes cover every parallel entry point:

* :func:`plan_contiguous` — for stages whose merge is a concatenation
  in population order (flow synthesis): tasks must be contiguous index
  ranges.  ``packed`` cuts the population at cumulative-cost quantiles
  into exactly ``workers`` balanced slices; ``stealing``
  over-decomposes into cost-capped slices (a few per worker) so
  stragglers are drained by idle workers, and isolates any single item
  whose cost exceeds the cap in its own task.
* :func:`plan_grouped` — for stages whose merge is partition-
  independent (detection: all state is keyed per source): items are
  pre-grouped into indivisible units (same-source scanners, hash
  fine-shards) and the groups are LPT bin-packed into ``workers``
  logical shards; ``stealing`` additionally splits each shard's group
  list into cost-capped sub-tasks.

Scheduling never touches results.  Tasks carry their *logical* task
index, results merge in logical order regardless of execution order,
and :meth:`SchedulePlan.submit_order` only reorders the executor queue
(descending cost — longest-processing-time first, the classic greedy
that keeps the tail short).  The work-stealing queue itself is the
process pool's shared pending queue: with more tasks than workers, an
idle worker "steals" the next queued task the moment it finishes its
own (:func:`repro.core.faults.run_sharded` with ``submit_order``).

Everything here is deterministic: plans are pure functions of the cost
vector, the worker count and the mode, with explicit tie-breaking — a
resumed or retried run re-derives the identical plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Recognized scheduling modes, in increasing order of machinery:
#: ``static`` — the legacy layout (contiguous ``array_split`` slices or
#: hash shards), no planner; ``packed`` — size-aware bin packing into
#: exactly ``workers`` tasks; ``stealing`` — packed plus
#: over-decomposition into stealable sub-tasks.
SCHEDULE_MODES = ("static", "packed", "stealing")

#: Target tasks per worker in ``stealing`` mode.  More tasks = finer
#: stealing granularity but more per-task overhead (pickling, pool
#: dispatch, checkpoint files); 4 keeps the straggler tail under a
#: quarter-worker of work without measurable dispatch cost.
DEFAULT_STEAL_FACTOR = 4


def validate_mode(mode: str) -> str:
    """Return ``mode`` or raise with the accepted set in the message."""
    if mode not in SCHEDULE_MODES:
        raise ValueError(
            f"schedule must be one of {SCHEDULE_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class TaskPlan:
    """One schedulable unit of work.

    Attributes:
        index: logical task index — the merge position.  Results are
            always folded in ascending ``index`` order, whatever order
            tasks executed in.
        shard: logical shard (0..workers-1) this task belongs to; the
            telemetry/checkpoint grouping, and the "home" worker a
            stolen task is accounted against.
        items: indices into the planner's input (scanner positions,
            fine-shard ids...), ascending.
        cost: predicted work, in the caller's cost unit.
    """

    index: int
    shard: int
    items: Tuple[int, ...]
    cost: float


@dataclass(frozen=True)
class SchedulePlan:
    """A complete task decomposition for one parallel stage."""

    mode: str
    workers: int
    tasks: Tuple[TaskPlan, ...]

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def submit_order(self) -> List[int]:
        """Task indices in descending cost (ties broken by index).

        Submitting in this order makes the pool's shared queue a
        longest-processing-time scheduler: the heavy tasks start first
        and the cheap tail back-fills idle workers.
        """
        return sorted(
            range(len(self.tasks)),
            key=lambda i: (-self.tasks[i].cost, i),
        )

    def shard_tasks(self, shard: int) -> List[TaskPlan]:
        """This shard's tasks, in logical (merge) order."""
        return [task for task in self.tasks if task.shard == shard]

    def planned_cost(self, shard: int) -> float:
        """Total predicted work assigned to one logical shard."""
        return float(
            sum(task.cost for task in self.tasks if task.shard == shard)
        )

    def planned_spread(self) -> float:
        """max/min planned shard cost — the planner's own balance gauge.

        ``inf`` when some shard got (predicted) nothing; 1.0 is perfect.
        """
        loads = [self.planned_cost(shard) for shard in range(self.workers)]
        low = min(loads)
        if low <= 0.0:
            return float("inf")
        return max(loads) / low


def lpt_assign(costs: Sequence[float], bins: int) -> List[int]:
    """Longest-processing-time greedy assignment of items to bins.

    Items are visited in descending cost (ties: ascending item index)
    and each lands in the currently lightest bin (ties: lowest bin
    index) — the classic 4/3-approximation to makespan, fully
    deterministic.  Returns the bin index per item.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    loads = [0.0] * bins
    assignment = [0] * len(costs)
    for item in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        assignment[item] = target
        loads[target] += float(costs[item])
    return assignment


def _even_bounds(n: int, parts: int) -> List[int]:
    """Cut points of ``np.array_split(range(n), parts)`` (static twin)."""
    sizes = [len(part) for part in np.array_split(np.arange(n), parts)]
    bounds = [0]
    for size in sizes:
        bounds.append(bounds[-1] + size)
    return bounds


def _quantile_bounds(costs: np.ndarray, parts: int) -> List[int]:
    """Contiguous cut points at cumulative-cost quantiles.

    A single item heavier than ``total/parts`` swallows several
    quantiles, leaving the slices around it empty — which is exactly
    right: the heavy item is isolated and the remaining cost spreads
    over the other parts.
    """
    cum = np.cumsum(costs)
    total = float(cum[-1])
    if total <= 0.0:
        return _even_bounds(len(costs), parts)
    targets = total * np.arange(1, parts) / parts
    # cum is nondecreasing and targets are increasing, so the cut
    # sequence is already monotone; only clip to the index range.
    cuts = np.clip(
        np.searchsorted(cum, targets, side="left") + 1, 0, len(costs)
    )
    return [0] + [int(c) for c in cuts] + [len(costs)]


def _cap_bounds(costs: Sequence[float], cap: float) -> List[int]:
    """Greedy contiguous cuts so each slice's cost stays under ``cap``.

    An item heavier than the cap becomes its own singleton slice — the
    planner cannot split below one item (per-scanner RNG streams are
    the atomic unit), so it isolates instead.
    """
    bounds = [0]
    acc = 0.0
    for i, cost in enumerate(costs):
        if i > bounds[-1] and acc + float(cost) > cap:
            bounds.append(i)
            acc = 0.0
        acc += float(cost)
    bounds.append(len(costs))
    return bounds


def _empty_plan(mode: str, workers: int) -> SchedulePlan:
    """One empty task per shard — the shape static sharding gives an
    empty population, so downstream merge/telemetry code sees the same
    arity in every mode."""
    tasks = tuple(
        TaskPlan(index=shard, shard=shard, items=(), cost=0.0)
        for shard in range(workers)
    )
    return SchedulePlan(mode=mode, workers=workers, tasks=tasks)


def plan_contiguous(
    costs: Sequence[float],
    workers: int,
    mode: str,
    *,
    steal_factor: int = DEFAULT_STEAL_FACTOR,
) -> SchedulePlan:
    """Plan a stage whose merge concatenates results in item order.

    Tasks are contiguous index ranges — the only decomposition whose
    in-order concat reproduces the serial output — so balance is
    limited by how evenly cost can be cut along the population.

    * ``static``: even *count* slices (``np.array_split`` twin), one
      task per shard.
    * ``packed``: cumulative-cost quantile slices, one task per shard.
    * ``stealing``: cost-capped slices (≈ ``workers * steal_factor``
      of them), LPT-assigned to logical shards, submitted heaviest
      first; a single item heavier than the cap is isolated in its own
      task.
    """
    validate_mode(mode)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if steal_factor < 1:
        raise ValueError("steal_factor must be >= 1")
    costs = np.asarray(
        [max(float(c), 0.0) for c in costs], dtype=np.float64
    )
    n = len(costs)
    if n == 0:
        return _empty_plan(mode, workers)
    total = float(costs.sum())
    if mode == "static" or total <= 0.0:
        bounds = _even_bounds(n, workers)
    elif mode == "packed":
        bounds = _quantile_bounds(costs, workers)
    else:
        cap = total / (workers * steal_factor)
        bounds = _cap_bounds(costs, cap)
    slices = list(zip(bounds[:-1], bounds[1:]))
    slice_costs = [float(costs[lo:hi].sum()) for lo, hi in slices]
    if mode == "stealing" and total > 0.0:
        shards = lpt_assign(slice_costs, workers)
    else:
        shards = list(range(len(slices)))
    tasks = tuple(
        TaskPlan(
            index=index,
            shard=shards[index],
            items=tuple(range(lo, hi)),
            cost=slice_costs[index],
        )
        for index, (lo, hi) in enumerate(slices)
    )
    return SchedulePlan(mode=mode, workers=workers, tasks=tasks)


def plan_grouped(
    costs: Sequence[float],
    groups: Sequence[Sequence[int]],
    workers: int,
    mode: str,
    *,
    steal_factor: int = DEFAULT_STEAL_FACTOR,
) -> SchedulePlan:
    """Plan a stage whose merge is partition-independent.

    ``groups`` are the indivisible units (all scanners sharing a source
    address, one hash fine-shard...) with one predicted cost each;
    results may be partitioned any way that keeps a group whole.

    * ``packed``: LPT bin-pack groups into exactly ``workers`` tasks
      (one per shard; a shard that packs empty still gets an empty
      task, so task arity equals ``workers`` like the static path).
    * ``stealing``: the same LPT shard assignment, then each shard's
      group list splits into cost-capped sub-tasks drained by whichever
      worker goes idle first.

    Within a task, item indices stay ascending (population order) — the
    tie-breaking contract shared with :func:`repro.parallel.shard_scanners`.
    """
    validate_mode(mode)
    if mode == "static":
        raise ValueError(
            "static scheduling keeps the legacy hash layout; "
            "it is not planned here"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if steal_factor < 1:
        raise ValueError("steal_factor must be >= 1")
    if len(costs) != len(groups):
        raise ValueError("costs must align with groups")
    if not groups:
        return _empty_plan(mode, workers)
    costs = [max(float(c), 0.0) for c in costs]
    assignment = lpt_assign(costs, workers)
    total = sum(costs)
    tasks: List[TaskPlan] = []
    for shard in range(workers):
        members = [g for g in range(len(groups)) if assignment[g] == shard]
        if not members:
            tasks.append(
                TaskPlan(index=len(tasks), shard=shard, items=(), cost=0.0)
            )
            continue
        if mode == "packed" or total <= 0.0:
            segments = [members]
        else:
            cap = total / (workers * steal_factor)
            member_costs = [costs[g] for g in members]
            bounds = _cap_bounds(member_costs, cap)
            segments = [
                members[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
        for segment in segments:
            items: List[int] = []
            for g in segment:
                items.extend(int(i) for i in groups[g])
            tasks.append(
                TaskPlan(
                    index=len(tasks),
                    shard=shard,
                    items=tuple(sorted(items)),
                    cost=float(sum(costs[g] for g in segment)),
                )
            )
    return SchedulePlan(mode=mode, workers=workers, tasks=tuple(tasks))
