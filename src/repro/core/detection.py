"""The three aggressive-hitter definitions (paper §3).

1. **Address dispersion** — any event touching >= 10% of the dark IPs
   marks its source aggressive.
2. **Packet volume** — events in the top-alpha tail of the per-event
   packet ECDF mark their sources aggressive.
3. **Distinct destination ports** — sources contacting more distinct
   darknet ports in one day than the ECDF tail threshold.

Each detector returns a :class:`DetectionResult` carrying the source
set, the threshold used, and daily first-seen/active breakdowns (for
the Figure 3 time series).  :func:`detect_all` runs all three and
:func:`definition_overlap` computes the Table 7 intersections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import DetectionConfig
from repro.core.ecdf import ECDF
from repro.core.events import EventTable


def jaccard(a: set, b: set) -> float:
    """Jaccard similarity |a & b| / |a | b| (0 for two empty sets)."""
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


@dataclass
class DetectionResult:
    """Output of one definition over one darknet dataset."""

    definition: int
    sources: set
    threshold: float
    #: day -> sources whose first qualifying activity started that day.
    daily_new: Dict[int, set] = field(default_factory=dict)
    #: day -> qualifying sources with any event overlapping that day.
    daily_active: Dict[int, set] = field(default_factory=dict)
    #: the qualifying events (definitions 1/2) for packet accounting.
    qualifying_events: Optional[EventTable] = None

    def __len__(self) -> int:
        return len(self.sources)

    def active_on(self, day: int) -> set:
        """Qualifying sources with any event overlapping ``day``."""
        return self.daily_active.get(day, set())

    def new_on(self, day: int) -> set:
        """Sources whose first qualifying activity started on ``day``."""
        return self.daily_new.get(day, set())


def _daily_breakdown(
    events: EventTable,
    qualifying_mask: np.ndarray,
    day_seconds: float,
) -> tuple:
    """Daily first-seen and active source sets for qualifying sources.

    A source's *daily* appearance is the day its first qualifying event
    started; it is *active* on every day overlapped by any of its
    events (the paper: active AH include those that began earlier).
    """
    daily_new: Dict[int, set] = {}
    daily_active: Dict[int, set] = {}
    if len(events) == 0 or not np.any(qualifying_mask):
        return daily_new, daily_active

    qualifying_sources = np.unique(events.src[qualifying_mask])

    # First qualifying event day per source.
    q_src = events.src[qualifying_mask]
    q_day = np.floor(events.start[qualifying_mask] / day_seconds).astype(np.int64)
    order = np.lexsort((q_day, q_src))
    q_src, q_day = q_src[order], q_day[order]
    first = np.empty(len(q_src), dtype=bool)
    if len(q_src):
        first[0] = True
        first[1:] = q_src[1:] != q_src[:-1]
    for s, d in zip(q_src[first], q_day[first]):
        daily_new.setdefault(int(d), set()).add(int(s))

    # Active days: all events of qualifying sources (vectorized
    # event-day expansion, then unique (day, src) pairs grouped by day).
    member = np.isin(events.src, qualifying_sources)
    member_events = events.select(member)
    event_index, day = member_events._expand_event_days(day_seconds)
    pair_src = member_events.src[event_index].astype(np.int64)
    pairs = np.unique(np.stack([day, pair_src], axis=1), axis=0)
    boundaries = np.concatenate([[0], np.flatnonzero(np.diff(pairs[:, 0])) + 1, [len(pairs)]])
    for b, e in zip(boundaries[:-1], boundaries[1:]):
        daily_active[int(pairs[b, 0])] = {int(s) for s in pairs[b:e, 1]}
    return daily_new, daily_active


# ----------------------------------------------------------------------
# Shared threshold rules and result builders.
#
# The batch detectors below and the streaming detector
# (:class:`repro.core.streaming.StreamingDetector`) both go through
# these helpers, so the two execution modes cannot drift apart: they
# differ only in *when* the inputs (event table, ECDF sample, port-day
# counts) are accumulated, never in how thresholds are derived or
# applied.
# ----------------------------------------------------------------------


def dispersion_threshold(dark_size: int, config: DetectionConfig) -> float:
    """Definition 1 critical value: a fraction of the dark space."""
    return config.dispersion_fraction * dark_size


def volume_threshold(ecdf, config: DetectionConfig) -> float:
    """Definition 2 critical value: ECDF tail with a floor."""
    return max(
        ecdf.tail_threshold(config.alpha), float(config.min_packet_threshold)
    )


def ports_threshold(ecdf, config: DetectionConfig) -> float:
    """Definition 3 critical value: ECDF tail with a floor."""
    return max(
        ecdf.tail_threshold(config.alpha), float(config.min_port_threshold)
    )


def dispersion_result(
    events: EventTable, threshold: float, day_seconds: float
) -> DetectionResult:
    """Definition 1 result from a threshold already derived."""
    mask = events.unique_dsts >= threshold
    daily_new, daily_active = _daily_breakdown(events, mask, day_seconds)
    return DetectionResult(
        definition=1,
        sources=events.sources_of(mask),
        threshold=float(threshold),
        daily_new=daily_new,
        daily_active=daily_active,
        qualifying_events=events.select(mask),
    )


def volume_result(
    events: EventTable, threshold: float, day_seconds: float
) -> DetectionResult:
    """Definition 2 result from a threshold already derived."""
    mask = events.packets > threshold
    daily_new, daily_active = _daily_breakdown(events, mask, day_seconds)
    return DetectionResult(
        definition=2,
        sources=events.sources_of(mask),
        threshold=float(threshold),
        daily_new=daily_new,
        daily_active=daily_active,
        qualifying_events=events.select(mask),
    )


def ports_result_from_counts(
    counts: Dict[tuple, int],
    config: Optional[DetectionConfig] = None,
) -> DetectionResult:
    """Definition 3 result from per-(src, day) distinct-port counts."""
    config = config or DetectionConfig()
    if not counts:
        return DetectionResult(definition=3, sources=set(), threshold=0.0)
    sample = np.array(list(counts.values()), dtype=np.float64)
    threshold = ports_threshold(ECDF(sample), config)
    sources: set = set()
    daily_new: Dict[int, set] = {}
    daily_active: Dict[int, set] = {}
    first_day: Dict[int, int] = {}
    for (src, day), count in counts.items():
        if count <= threshold:
            continue
        sources.add(src)
        daily_active.setdefault(day, set()).add(src)
        if src not in first_day or day < first_day[src]:
            first_day[src] = day
    for src, day in first_day.items():
        daily_new.setdefault(day, set()).add(src)
    return DetectionResult(
        definition=3,
        sources=sources,
        threshold=threshold,
        daily_new=daily_new,
        daily_active=daily_active,
        qualifying_events=None,
    )


def detect_dispersion(
    events: EventTable,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> DetectionResult:
    """Definition 1: address dispersion (>= 10% of the dark space)."""
    config = config or DetectionConfig()
    threshold = dispersion_threshold(dark_size, config)
    return dispersion_result(events, threshold, day_seconds)


def detect_volume(
    events: EventTable,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> DetectionResult:
    """Definition 2: per-event packet volume above the ECDF tail."""
    config = config or DetectionConfig()
    if len(events) == 0:
        return DetectionResult(definition=2, sources=set(), threshold=0.0)
    ecdf = ECDF(events.packets.astype(np.float64))
    return volume_result(events, volume_threshold(ecdf, config), day_seconds)


def detect_ports(
    events: EventTable,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> DetectionResult:
    """Definition 3: distinct darknet ports contacted per day."""
    config = config or DetectionConfig()
    return ports_result_from_counts(
        events.daily_port_counts(day_seconds), config
    )


def detect_all(
    events: EventTable,
    dark_size: int,
    config: Optional[DetectionConfig] = None,
    day_seconds: float = 86_400.0,
) -> Dict[int, DetectionResult]:
    """Run all three definitions over one event table."""
    config = config or DetectionConfig()
    return {
        1: detect_dispersion(events, dark_size, config, day_seconds),
        2: detect_volume(events, config, day_seconds),
        3: detect_ports(events, config, day_seconds),
    }


def definition_overlap(results: Dict[int, DetectionResult], registry=None) -> dict:
    """Table 7: population sizes and intersections across definitions.

    Args:
        results: output of :func:`detect_all`.
        registry: optional :class:`repro.net.asn.ASRegistry`; when given,
            the breakdown also counts distinct ASNs, organizations and
            countries per definition and intersection.

    Returns:
        ``{row_label: {column_label: count}}`` with columns D1, D2, D3,
        D1&D2, D2&D3, D1&D3, D1&D2&D3 and rows IP (always) plus
        ASN/Org/Country when a registry is supplied.
    """
    sets = {d: results[d].sources for d in (1, 2, 3)}
    combos = {
        "D1": sets[1],
        "D2": sets[2],
        "D3": sets[3],
        "D1&D2": sets[1] & sets[2],
        "D2&D3": sets[2] & sets[3],
        "D1&D3": sets[1] & sets[3],
        "D1&D2&D3": sets[1] & sets[2] & sets[3],
    }
    table: dict = {"IP": {k: len(v) for k, v in combos.items()}}
    if registry is None:
        return table
    asn_rows: dict = {}
    org_rows: dict = {}
    country_rows: dict = {}
    for label, sources in combos.items():
        if sources:
            addresses = np.array(sorted(sources), dtype=np.uint32)
            idx = registry.lookup_index(addresses)
            systems = [registry.systems[i] for i in idx if i >= 0]
            asn_rows[label] = len({s.asn for s in systems})
            org_rows[label] = len({s.org for s in systems})
            country_rows[label] = len({s.country for s in systems})
        else:
            asn_rows[label] = org_rows[label] = country_rows[label] = 0
    table["ASN"] = asn_rows
    table["Org"] = org_rows
    table["Country"] = country_rows
    return table
