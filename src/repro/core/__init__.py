"""The paper's primary contribution: AH detection and impact analysis.

Submodules:

* :mod:`repro.core.events` — darknet events ("logical scans").
* :mod:`repro.core.ecdf` — empirical CDFs and tail thresholds.
* :mod:`repro.core.detection` — the three aggressive-hitter definitions.
* :mod:`repro.core.impact` — network-impact joins (flows and streams).
* :mod:`repro.core.characterize` — longitudinal characterization.
* :mod:`repro.core.validation` — ACKed-list and honeypot validation.
* :mod:`repro.core.lists` — operational daily blocklists.
* :mod:`repro.core.pipeline` — end-to-end study orchestration.
"""

from repro.core.detection import DetectionResult, detect_all, jaccard
from repro.core.ecdf import ECDF
from repro.core.events import EventTable, build_events

__all__ = [
    "DetectionResult",
    "ECDF",
    "EventTable",
    "build_events",
    "detect_all",
    "jaccard",
]
