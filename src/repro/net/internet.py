"""Deterministic synthetic Internet address plan.

The reproduction cannot use real BGP/WHOIS feeds, so it fabricates an
Internet: a few hundred autonomous systems with realistic type/country
mixtures and disjoint prefix allocations.  The plan is fully determined
by its seed, so every table regenerates identically.

The country/type mixture is skewed the way the paper's Table 5 observes
scanner origins: large US cloud providers, Chinese ISPs/hosting, and a
long tail of small networks in many countries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.net.addr import prefix_size
from repro.net.asn import ASRegistry, ASType, AutonomousSystem
from repro.net.prefix import Prefix

#: First allocatable address (avoid 0/8 and other low reserved space).
_ALLOCATION_START = 0x10000000  # 16.0.0.0

#: The deliberately outsized US cloud provider (see build_internet).
FLAGSHIP_CLOUD_ASN = 64500
FLAGSHIP_CLOUD_ORG = "cloud-us-flagship"

#: (country, AS type, relative abundance, typical prefix length range).
_CORE_MIX: tuple[tuple[str, ASType, float, tuple[int, int]], ...] = (
    ("US", ASType.CLOUD, 7.0, (13, 15)),
    ("US", ASType.ISP, 6.0, (13, 15)),
    ("US", ASType.HOSTING, 4.0, (16, 18)),
    ("US", ASType.EDU, 3.0, (15, 17)),
    ("CN", ASType.CLOUD, 4.0, (14, 16)),
    ("CN", ASType.ISP, 6.0, (13, 15)),
    ("CN", ASType.HOSTING, 4.0, (16, 18)),
    ("TW", ASType.ISP, 2.0, (15, 17)),
    ("KR", ASType.ISP, 2.0, (15, 17)),
    ("RU", ASType.ISP, 2.0, (15, 17)),
    ("RU", ASType.HOSTING, 1.5, (17, 19)),
    ("DE", ASType.ISP, 2.0, (15, 17)),
    ("DE", ASType.HOSTING, 2.0, (16, 18)),
    ("NL", ASType.HOSTING, 2.0, (16, 18)),
    ("FR", ASType.ISP, 1.5, (15, 17)),
    ("GB", ASType.ISP, 1.5, (15, 17)),
    ("BR", ASType.ISP, 1.5, (15, 17)),
    ("IN", ASType.ISP, 1.5, (14, 16)),
    ("JP", ASType.ISP, 1.5, (15, 17)),
    ("VN", ASType.ISP, 1.0, (16, 18)),
    ("ID", ASType.ISP, 1.0, (16, 18)),
    ("IR", ASType.ISP, 1.0, (16, 18)),
    ("SG", ASType.CLOUD, 1.0, (15, 17)),
    ("HK", ASType.HOSTING, 1.0, (16, 18)),
    ("CA", ASType.ISP, 1.0, (15, 17)),
    ("AU", ASType.ISP, 1.0, (15, 17)),
)

#: Long-tail countries; each receives a handful of small networks so that
#: the study's country counts (Table 7) have a realistic tail.
_TAIL_COUNTRIES: tuple[str, ...] = (
    "MX", "AR", "CL", "CO", "PE", "VE", "EC", "UY", "PY", "BO",
    "ES", "PT", "IT", "GR", "TR", "PL", "CZ", "SK", "HU", "RO",
    "BG", "RS", "HR", "SI", "AT", "CH", "BE", "LU", "DK", "NO",
    "SE", "FI", "EE", "LV", "LT", "UA", "BY", "MD", "GE", "AM",
    "AZ", "KZ", "UZ", "KG", "TJ", "TM", "PK", "BD", "LK", "NP",
    "MM", "TH", "MY", "PH", "KH", "LA", "MN", "EG", "MA", "DZ",
    "TN", "LY", "NG", "GH", "KE", "TZ", "UG", "ZA", "ZW", "ZM",
    "AO", "MZ", "ET", "SD", "SN", "CI", "CM", "SA", "AE", "QA",
    "KW", "BH", "OM", "JO", "LB", "IQ", "IL", "NZ", "FJ", "PG",
)


class PrefixAllocator:
    """Carves disjoint, aligned prefixes out of the IPv4 space."""

    def __init__(self, start: int = _ALLOCATION_START):
        if not 0 <= start < 2**32:
            raise ValueError("start out of range")
        self._cursor = start

    def allocate(self, length: int) -> Prefix:
        """Return the next free aligned prefix of the given length."""
        size = prefix_size(length)
        base = -(-self._cursor // size) * size  # round up to alignment
        if base + size > 2**32:
            raise RuntimeError("synthetic IPv4 space exhausted")
        self._cursor = base + size
        return Prefix(base, length)

    @property
    def cursor(self) -> int:
        """Next unallocated address."""
        return self._cursor


@dataclass(frozen=True)
class InternetConfig:
    """Knobs for the synthetic address plan."""

    seed: int = 20230701
    #: Number of "core" ASes drawn from the weighted mixture.
    core_as_count: int = 220
    #: Number of small tail ASes (one per draw from the tail countries).
    tail_as_count: int = 180
    #: Prefix length for tail ASes.
    tail_prefix_length: int = 19

    def __post_init__(self) -> None:
        if self.core_as_count < 1 or self.tail_as_count < 0:
            raise ValueError("AS counts must be positive")


@dataclass
class Internet:
    """The synthetic Internet: AS registry plus its allocator.

    The allocator is kept so that monitored networks (the telescope
    operator's ISP, the campus network) can be carved out of the same
    address plan without overlaps.
    """

    registry: ASRegistry
    allocator: PrefixAllocator
    config: InternetConfig

    def sample_hosts(
        self, rng: np.random.Generator, system: AutonomousSystem, count: int
    ) -> np.ndarray:
        """Draw ``count`` distinct-ish host addresses from one AS."""
        from repro.net.prefix import PrefixSet

        return PrefixSet(system.prefixes).sample(rng, count)

    def systems_of_type(
        self, as_type: Optional[ASType] = None, country: Optional[str] = None
    ) -> list[AutonomousSystem]:
        """Filter the registry by type and/or country."""
        out = []
        for system in self.registry:
            if as_type is not None and system.as_type is not as_type:
                continue
            if country is not None and system.country != country:
                continue
            out.append(system)
        return out


def with_systems(
    internet: Internet, extra: Sequence[AutonomousSystem]
) -> Internet:
    """Return a new :class:`Internet` whose registry also covers ``extra``.

    Monitored networks (the telescope operator's ISP, the campus network)
    are allocated out of the same address plan after the base Internet is
    built; this helper folds them into the registry so that origin
    lookups see them too.
    """
    systems = list(internet.registry.systems) + list(extra)
    return Internet(
        registry=ASRegistry(systems),
        allocator=internet.allocator,
        config=internet.config,
    )


def build_internet(config: Optional[InternetConfig] = None) -> Internet:
    """Construct the default synthetic Internet.

    ASNs are assigned sequentially from 64512 (the private-use range, a
    deliberate signal that these are synthetic).  Organization names are
    generic ("cloud-us-3") and never reference real companies, matching
    the paper's own anonymization of origin networks.
    """
    config = config or InternetConfig()
    rng = np.random.default_rng(config.seed)
    allocator = PrefixAllocator()
    systems: list[AutonomousSystem] = []
    next_asn = 64512

    # The flagship hyperscale cloud: the paper observes that "a certain
    # US-based cloud provider ranks top in all six definitions/datasets".
    # One deliberately outsized network reproduces that singleton.
    systems.append(
        AutonomousSystem(
            asn=FLAGSHIP_CLOUD_ASN,
            org=FLAGSHIP_CLOUD_ORG,
            country="US",
            as_type=ASType.CLOUD,
            prefixes=tuple(allocator.allocate(12) for _ in range(3)),
        )
    )

    weights = np.array([row[2] for row in _CORE_MIX], dtype=np.float64)
    weights /= weights.sum()
    type_counters: dict[tuple[str, str], int] = {}

    for _ in range(config.core_as_count):
        row = _CORE_MIX[int(rng.choice(len(_CORE_MIX), p=weights))]
        country, as_type, _, (lo, hi) = row
        length = int(rng.integers(lo, hi + 1))
        key = (country.lower(), as_type.name.lower())
        type_counters[key] = type_counters.get(key, 0) + 1
        org = f"{as_type.name.lower()}-{country.lower()}-{type_counters[key]}"
        n_prefixes = int(rng.integers(1, 4))
        prefixes = tuple(
            allocator.allocate(min(length + extra, 24))
            for extra in range(n_prefixes)
        )
        systems.append(
            AutonomousSystem(
                asn=next_asn,
                org=org,
                country=country,
                as_type=as_type,
                prefixes=prefixes,
            )
        )
        next_asn += 1

    tail_types = (ASType.ISP, ASType.HOSTING, ASType.ENTERPRISE)
    for i in range(config.tail_as_count):
        country = _TAIL_COUNTRIES[i % len(_TAIL_COUNTRIES)]
        as_type = tail_types[int(rng.integers(0, len(tail_types)))]
        org = f"tail-{country.lower()}-{i}"
        prefixes = (allocator.allocate(config.tail_prefix_length),)
        systems.append(
            AutonomousSystem(
                asn=next_asn,
                org=org,
                country=country,
                as_type=as_type,
                prefixes=prefixes,
            )
        )
        next_asn += 1

    return Internet(
        registry=ASRegistry(systems), allocator=allocator, config=config
    )
