"""Autonomous-system registry for the synthetic Internet.

The paper characterizes aggressive scanners by origin network: AS type
(cloud provider, ISP, hosting, education, ...), organization and country
(Table 5, Table 7).  This module provides the registry those joins run
against, with a vectorized IP -> AS lookup built on
:class:`repro.net.prefix.PrefixSet`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.net.prefix import Prefix, PrefixSet


class ASType(enum.Enum):
    """Coarse AS classification used by the paper's origin tables."""

    CLOUD = "Cloud"
    ISP = "ISP"
    HOSTING = "Host."
    EDU = "Edu"
    ENTERPRISE = "Ent."

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, organization, country, type and address blocks."""

    asn: int
    org: str
    country: str
    as_type: ASType
    prefixes: tuple[Prefix, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError("ASN must be positive")
        if len(self.country) != 2:
            raise ValueError(f"country must be a 2-letter code: {self.country!r}")

    @property
    def size(self) -> int:
        """Total announced address count."""
        return sum(prefix.size for prefix in self.prefixes)

    def label(self) -> str:
        """Anonymized label in the paper's Table 5 style, e.g. 'Cloud (US)'."""
        return f"{self.as_type.value} ({self.country})"


class ASRegistry:
    """Immutable collection of ASes with vectorized origin lookups."""

    def __init__(self, systems: Iterable[AutonomousSystem]):
        self._systems: tuple[AutonomousSystem, ...] = tuple(systems)
        seen_asn: set[int] = set()
        prefixes: list[Prefix] = []
        owners: list[int] = []
        for idx, system in enumerate(self._systems):
            if system.asn in seen_asn:
                raise ValueError(f"duplicate ASN {system.asn}")
            seen_asn.add(system.asn)
            for prefix in system.prefixes:
                prefixes.append(prefix)
                owners.append(idx)
        order = np.argsort([p.base for p in prefixes]) if prefixes else []
        self._prefix_set = PrefixSet(prefixes)
        # PrefixSet sorts internally; rebuild the owner map in that order.
        sorted_prefixes = self._prefix_set.prefixes
        owner_by_prefix = {
            (p.base, p.length): owner for p, owner in zip(prefixes, owners)
        }
        self._owners = np.array(
            [owner_by_prefix[(p.base, p.length)] for p in sorted_prefixes],
            dtype=np.int64,
        )
        del order  # ordering handled by PrefixSet

    @property
    def systems(self) -> tuple[AutonomousSystem, ...]:
        """All registered systems, in construction order."""
        return self._systems

    def __len__(self) -> int:
        return len(self._systems)

    def __iter__(self):
        return iter(self._systems)

    def by_asn(self, asn: int) -> AutonomousSystem:
        """Fetch an AS by number; raises ``KeyError`` if unknown."""
        for system in self._systems:
            if system.asn == asn:
                return system
        raise KeyError(f"unknown ASN {asn}")

    def lookup_index(self, addresses: np.ndarray) -> np.ndarray:
        """Map addresses to indexes into :attr:`systems`, or -1."""
        prefix_idx = self._prefix_set.lookup(addresses)
        result = np.full(prefix_idx.shape, -1, dtype=np.int64)
        hit = prefix_idx >= 0
        result[hit] = self._owners[prefix_idx[hit]]
        return result

    def lookup_one(self, address: int) -> Optional[AutonomousSystem]:
        """Scalar lookup; returns ``None`` for unannounced space."""
        idx = self.lookup_index(np.array([address], dtype=np.uint32))[0]
        return None if idx < 0 else self._systems[idx]

    def asns(self, addresses: np.ndarray) -> np.ndarray:
        """Map addresses to ASNs (0 for unannounced space)."""
        idx = self.lookup_index(addresses)
        asn_table = np.array([s.asn for s in self._systems], dtype=np.int64)
        out = np.zeros(idx.shape, dtype=np.int64)
        hit = idx >= 0
        out[hit] = asn_table[idx[hit]]
        return out

    def countries(self, addresses: np.ndarray) -> list[str]:
        """Map addresses to country codes ('??' for unannounced space)."""
        idx = self.lookup_index(addresses)
        return [
            self._systems[i].country if i >= 0 else "??" for i in idx
        ]


def build_registry(
    specs: Sequence[tuple[int, str, str, ASType, Sequence[str]]]
) -> ASRegistry:
    """Convenience constructor from ``(asn, org, cc, type, cidrs)`` tuples."""
    systems = [
        AutonomousSystem(
            asn=asn,
            org=org,
            country=country,
            as_type=as_type,
            prefixes=tuple(Prefix.parse(c) for c in cidrs),
        )
        for asn, org, country, as_type, cidrs in specs
    ]
    return ASRegistry(systems)
