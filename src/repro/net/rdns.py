"""Synthetic reverse DNS.

The paper's second "Acknowledged Scanner" matching path resolves each
candidate IP's PTR record and greps it against a curated list of 48
keywords derived from known research-scanner hostnames.  This module
provides the PTR store that the synthetic acknowledged-scanner registry
populates, plus generic fallbacks for unregistered space.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.net.addr import format_ip


class ReverseDNS:
    """A PTR record store keyed by integer IPv4 address."""

    def __init__(self) -> None:
        self._records: Dict[int, str] = {}

    def register(self, address: int, hostname: str) -> None:
        """Install a PTR record; later registrations win."""
        if not hostname:
            raise ValueError("hostname must be non-empty")
        self._records[int(address)] = hostname

    def register_many(self, addresses: Iterable[int], template: str) -> None:
        """Install PTRs from a template with ``{ip}`` / ``{dashed}`` slots.

        Example::

            rdns.register_many(ips, "scan-{dashed}.research.example")
        """
        for address in addresses:
            dotted = format_ip(int(address))
            self._records[int(address)] = template.format(
                ip=dotted, dashed=dotted.replace(".", "-")
            )

    def resolve(self, address: int) -> Optional[str]:
        """Return the PTR record, or ``None`` when unset (NXDOMAIN)."""
        return self._records.get(int(address))

    def resolve_many(self, addresses: np.ndarray) -> list:
        """Bulk resolve; unset entries come back as ``None``."""
        return [self._records.get(int(a)) for a in addresses]

    def matches_keywords(self, address: int, keywords: Iterable[str]) -> bool:
        """Case-insensitive substring match of keywords against the PTR."""
        record = self.resolve(address)
        if record is None:
            return False
        lowered = record.lower()
        return any(keyword.lower() in lowered for keyword in keywords)

    def __len__(self) -> int:
        return len(self._records)
