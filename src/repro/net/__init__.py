"""Synthetic Internet substrate: addresses, prefixes, ASes and rDNS.

The paper joins darknet sources against BGP/WHOIS metadata (ASN, AS type,
organization, country) and reverse DNS.  Those feeds are not available
offline, so this package provides a deterministic synthetic Internet
address plan with the same join surface.
"""

from repro.net.addr import (
    format_ip,
    ip_in_prefix,
    parse_ip,
    prefix_base,
    prefix_size,
    slash24,
    slash24_count,
)
from repro.net.asn import ASType, AutonomousSystem, ASRegistry
from repro.net.internet import Internet, InternetConfig
from repro.net.prefix import Prefix, PrefixSet
from repro.net.rdns import ReverseDNS

__all__ = [
    "ASRegistry",
    "ASType",
    "AutonomousSystem",
    "Internet",
    "InternetConfig",
    "Prefix",
    "PrefixSet",
    "ReverseDNS",
    "format_ip",
    "ip_in_prefix",
    "parse_ip",
    "prefix_base",
    "prefix_size",
    "slash24",
    "slash24_count",
]
