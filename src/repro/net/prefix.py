"""CIDR prefixes and sorted prefix sets with vectorized membership.

``PrefixSet`` is the workhorse used to answer "which monitored network
does this packet belong to" and "which AS originates this source IP" for
millions of addresses at once.  It keeps prefixes as sorted, disjoint
``[start, end)`` integer ranges and answers membership / lookup queries
with a single ``numpy.searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.net.addr import format_ip, parse_ip, prefix_size


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR block, e.g. ``Prefix.parse("192.0.2.0/24")``."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        size = prefix_size(self.length)
        if self.base % size != 0:
            raise ValueError(
                f"base {format_ip(self.base)} not aligned to /{self.length}"
            )
        if self.base + size > 2**32:
            raise ValueError("prefix extends past the IPv4 space")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        addr, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_ip(addr), int(length))

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return prefix_size(self.length)

    @property
    def end(self) -> int:
        """One past the highest covered address."""
        return self.base + self.size

    def __contains__(self, address: int) -> bool:
        return self.base <= int(address) < self.end

    def contains_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized membership test for a ``uint32`` array."""
        addr = addresses.astype(np.int64, copy=False)
        return (addr >= self.base) & (addr < self.end)

    def __str__(self) -> str:
        return f"{format_ip(self.base)}/{self.length}"

    def slash24s(self) -> int:
        """Number of /24 networks covered (at least 1)."""
        return max(self.size // 256, 1)


class PrefixSet:
    """An immutable set of disjoint prefixes with fast lookups.

    Overlapping input prefixes are rejected: the synthetic address plan
    allocates disjoint blocks, and silent merging would hide allocation
    bugs.
    """

    def __init__(self, prefixes: Iterable[Prefix]):
        items = sorted(prefixes)
        starts = np.empty(len(items), dtype=np.int64)
        ends = np.empty(len(items), dtype=np.int64)
        for i, prefix in enumerate(items):
            starts[i] = prefix.base
            ends[i] = prefix.end
        if len(items) > 1 and np.any(starts[1:] < ends[:-1]):
            first_bad = int(np.argmax(starts[1:] < ends[:-1]))
            raise ValueError(
                f"overlapping prefixes: {items[first_bad]} and "
                f"{items[first_bad + 1]}"
            )
        self._prefixes: tuple[Prefix, ...] = tuple(items)
        self._starts = starts
        self._ends = ends

    @classmethod
    def parse(cls, texts: Sequence[str]) -> "PrefixSet":
        """Build from CIDR strings."""
        return cls(Prefix.parse(text) for text in texts)

    @property
    def prefixes(self) -> tuple[Prefix, ...]:
        """The member prefixes, sorted by base address."""
        return self._prefixes

    @property
    def size(self) -> int:
        """Total number of addresses covered."""
        return int(np.sum(self._ends - self._starts))

    def slash24s(self) -> int:
        """Total number of /24 networks covered."""
        return sum(prefix.slash24s() for prefix in self._prefixes)

    def __len__(self) -> int:
        return len(self._prefixes)

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._prefixes)

    def __contains__(self, address: int) -> bool:
        idx = int(np.searchsorted(self._starts, int(address), side="right")) - 1
        return idx >= 0 and int(address) < int(self._ends[idx])

    def lookup(self, addresses: np.ndarray) -> np.ndarray:
        """Map each address to the index of its covering prefix, or -1."""
        addr = addresses.astype(np.int64, copy=False)
        idx = np.searchsorted(self._starts, addr, side="right") - 1
        valid = idx >= 0
        inside = np.zeros(addr.shape, dtype=bool)
        inside[valid] = addr[valid] < self._ends[idx[valid]]
        result = np.where(inside, idx, -1)
        return result.astype(np.int64)

    def contains_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized membership mask."""
        return self.lookup(addresses) >= 0

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw uniform addresses from the union of all prefixes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self._prefixes:
            raise ValueError("cannot sample from an empty PrefixSet")
        sizes = (self._ends - self._starts).astype(np.float64)
        weights = sizes / sizes.sum()
        which = rng.choice(len(self._prefixes), size=count, p=weights)
        offsets = rng.random(count) * sizes[which]
        return (self._starts[which] + offsets.astype(np.int64)).astype(np.uint32)

    def ranges(self) -> np.ndarray:
        """Covered address space as an ``(n, 2)`` array of [start, end)."""
        return np.stack([self._starts, self._ends], axis=1)

    def __repr__(self) -> str:
        return f"PrefixSet({len(self._prefixes)} prefixes, {self.size} addrs)"


def intersect_ranges(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted, disjoint ``[start, end)`` range arrays.

    Both inputs are ``(n, 2)`` int64 arrays as produced by
    :meth:`PrefixSet.ranges`.  Returns the (possibly empty) sorted,
    disjoint intersection in the same format.
    """
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i, 0], b[j, 0])
        hi = min(a[i, 1], b[j, 1])
        if lo < hi:
            out.append((lo, hi))
        if a[i, 1] <= b[j, 1]:
            i += 1
        else:
            j += 1
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(out, dtype=np.int64)


def ranges_size(ranges: np.ndarray) -> int:
    """Total address count covered by a ``[start, end)`` range array."""
    if len(ranges) == 0:
        return 0
    return int(np.sum(ranges[:, 1] - ranges[:, 0]))


def sample_ranges(
    rng: np.random.Generator, ranges: np.ndarray, count: int
) -> np.ndarray:
    """Draw ``count`` uniform addresses from a range array (uint32)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    total = ranges_size(ranges)
    if total == 0:
        raise ValueError("cannot sample from empty ranges")
    sizes = (ranges[:, 1] - ranges[:, 0]).astype(np.float64)
    weights = sizes / sizes.sum()
    which = rng.choice(len(ranges), size=count, p=weights)
    offsets = (rng.random(count) * sizes[which]).astype(np.int64)
    return (ranges[which, 0] + offsets).astype(np.uint32)


def sample_distinct_offsets(
    rng: np.random.Generator, size: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct integers from ``[0, size)``.

    Uses a full permutation when the draw is dense and rejection
    sampling when sparse, so both small darknets and large views stay
    cheap.
    """
    if count < 0 or count > size:
        raise ValueError(f"cannot draw {count} distinct values from {size}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count * 3 >= size:
        return rng.permutation(size)[:count].astype(np.int64)
    chosen = np.unique(rng.integers(0, size, size=int(count * 1.2), dtype=np.int64))
    while len(chosen) < count:
        extra = rng.integers(0, size, size=count, dtype=np.int64)
        chosen = np.unique(np.concatenate([chosen, extra]))
    return rng.permutation(chosen)[:count]
