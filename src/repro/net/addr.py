"""IPv4 address arithmetic on plain integers and numpy arrays.

Addresses are represented as unsigned 32-bit integers throughout the
code base (``numpy.uint32`` in bulk structures, Python ``int`` for
scalars).  This module centralizes the conversions and prefix math so
that no other module reimplements bit fiddling.
"""

from __future__ import annotations

import numpy as np

#: Highest representable IPv4 address.
MAX_IP = 2**32 - 1


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Render an integer address in dotted-quad notation.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    value = int(value)
    if not 0 <= value <= MAX_IP:
        raise ValueError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_size(length: int) -> int:
    """Number of addresses in a prefix of the given mask length."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    return 1 << (32 - length)


def prefix_base(address: int, length: int) -> int:
    """Lowest address of the prefix containing ``address``."""
    size = prefix_size(length)
    return (int(address) // size) * size


def ip_in_prefix(address, base: int, length: int):
    """Membership test; works on scalars and numpy arrays alike."""
    size = prefix_size(length)
    base = int(base)
    if isinstance(address, np.ndarray):
        addr = address.astype(np.int64, copy=False)
        return (addr >= base) & (addr < base + size)
    return base <= int(address) < base + size


def slash24(address):
    """Map addresses to the integer index of their /24 network."""
    if isinstance(address, np.ndarray):
        return (address >> np.uint32(8)).astype(np.uint32)
    return int(address) >> 8


def distinct_slash24s(addresses) -> int:
    """Number of distinct /24 networks covering the given addresses.

    Vectorized replacement for ``len({slash24(a) for a in addresses})``:
    one shift plus ``np.unique`` instead of a per-address Python loop.
    Accepts arrays or any iterable of integer addresses.
    """
    if isinstance(addresses, np.ndarray):
        arr = addresses.astype(np.uint32, copy=False)
    else:
        arr = np.fromiter(
            (int(a) for a in addresses),
            dtype=np.uint32,
            count=len(addresses) if hasattr(addresses, "__len__") else -1,
        )
    if len(arr) == 0:
        return 0
    return len(np.unique(arr >> np.uint32(8)))


def slash24_count(size: int) -> int:
    """Number of /24 networks needed to cover ``size`` addresses."""
    if size < 0:
        raise ValueError("size must be non-negative")
    return -(-size // 256)


def random_ips_in_prefix(
    rng: np.random.Generator, base: int, length: int, count: int
) -> np.ndarray:
    """Draw ``count`` uniform addresses from a prefix as ``uint32``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    size = prefix_size(length)
    offsets = rng.integers(0, size, size=count, dtype=np.int64)
    return (offsets + int(base)).astype(np.uint32)
