"""Zero-copy shared-memory hand-off of packet batches.

Shipping a sharded capture to a worker pool through pickle copies every
column three times: serialize in the parent, write through the pipe,
deserialize in the child.  For multi-gigabyte captures that tax
dominates the pool spin-up.  This module replaces the pipe with one
named ``multiprocessing.shared_memory`` segment per hand-off: the
parent packs each shard's batches as struct-of-arrays blocks (columns
in :data:`repro.packet.COLUMNS` order, 8-byte aligned) into the
segment, and only a small picklable *handle* — segment name plus block
offsets — crosses the process boundary.  Workers map the segment and
rebuild their batches as **read-only views**: no packet byte is copied
anywhere on the way in.

Lifecycle is explicitly parent-owned:

* :func:`share_shard_batches` creates the segment and returns the
  handles plus a :class:`SegmentLease`; the parent closes the lease
  (``try/finally`` around the pool join) to unlink the segment.
* Workers attach lazily on :meth:`ShmBatchList.load` — a raw
  ``shm_open(O_RDONLY)`` + ``PROT_READ`` mmap, cached for the life of
  the process — so a worker crash, injected or real, can never reap a
  segment the parent (and its retried siblings) still needs: readers
  touch no resource-tracker state at all.  The kernel frees the memory
  once the parent has unlinked and the last mapping closes.
* If the *parent* dies before closing the lease, its resource tracker
  unlinks the segment at interpreter teardown — segments never outlive
  the run that created them.

Segment names are ``repro-<label>-<pid>-<random>``: label for
``ls /dev/shm`` forensics, pid + random suffix for uniqueness across
concurrent runs.  When shared memory is unavailable (no ``/dev/shm``,
exotic platforms) or the payload is too small to bother
(:data:`SHM_MIN_BYTES`), callers fall back to the pickled hand-off —
:func:`want_shared_memory` encodes that policy, and results are
bit-identical either way (pinned by ``tests/test_shm.py``).
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.packet import COLUMNS, PacketBatch

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

try:  # pragma: no cover - CPython's POSIX shm primitive (Linux/macOS)
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None

#: Payloads below this many column bytes ship as pickle under the
#: ``shm=None`` auto policy — segment setup costs more than it saves.
SHM_MIN_BYTES = 1 << 20

#: Columns are packed at this alignment so every view (float64
#: included) starts on a natural boundary.
_ALIGN = 8

#: Cached result of the one-time availability probe.
_available: Optional[bool] = None

#: Per-process cache of attached segments; mappings live until process
#: exit so handed-out views can never dangle.
_attached: dict = {}


def shared_memory_available() -> bool:
    """Whether named shared-memory segments work on this host.

    Probes once by creating and unlinking a 1-byte segment; a platform
    without ``/dev/shm`` (or with it mounted unwritable) fails the
    probe and every auto-mode hand-off falls back to pickle.
    """
    global _available
    if _shared_memory is None:
        return False
    if _available is None:
        try:
            probe = _shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def want_shared_memory(
    shm: Optional[bool], processes: bool, nbytes: int
) -> bool:
    """The fallback policy: should this hand-off use shared memory?

    ``shm=False`` always pickles.  ``shm=True`` uses shared memory
    whenever the platform supports it — even for an in-process pool,
    where the hand-off is pure overhead but stays correct (that is what
    lets the property tests drive the real segment path cheaply);
    pickling silently otherwise, the documented fallback, not an error.
    ``shm=None`` (auto) engages only when the hand-off actually crosses
    process boundaries and the payload is worth a segment
    (:data:`SHM_MIN_BYTES`).
    """
    if shm is False:
        return False
    if shm is None and not processes:
        return False
    if not shared_memory_available():
        return False
    return True if shm else nbytes >= SHM_MIN_BYTES


def _attach(name: str):
    """Map a segment read-only, once per process, for the process's life.

    Readers deliberately bypass ``SharedMemory(name=...)``: CPython
    registers attachments with the resource tracker (bpo-39959), so a
    reader's exit could reap — or at least race the accounting of — a
    segment the parent still owns.  A raw ``shm_open(O_RDONLY)`` +
    ``PROT_READ`` mmap touches no tracker state and makes read-only an
    OS-level guarantee, not just a numpy flag.  The mapping is cached
    and never explicitly closed (views handed to detectors alias it);
    it dies with the process, after the parent's unlink has already
    removed the name.
    """
    mapped = _attached.get(name)
    if mapped is None:
        if _posixshmem is not None:
            fd = _posixshmem.shm_open("/" + name, os.O_RDONLY, mode=0)
            try:
                mapped = mmap.mmap(
                    fd, os.fstat(fd).st_size, prot=mmap.PROT_READ
                )
            finally:
                os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback (e.g. Windows)
            segment = _shared_memory.SharedMemory(name=name)
            mapped = segment._mmap
            _attached[name + "/segment"] = segment  # keep it alive
        _attached[name] = mapped
    return mapped


class SegmentLease:
    """Parent-side ownership of one named segment.

    ``close()`` unmaps and unlinks; idempotent, and tolerant of views
    the parent itself still holds (the unlink — the part that matters
    for cleanup — always happens).  Usable as a context manager.
    """

    def __init__(self, segment):
        self._segment = segment
        self.name: str = segment.name
        self.nbytes: int = segment.size

    def close(self) -> None:
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass
        try:
            segment.close()
        except BufferError:
            # A view created in this process is still alive; the
            # mapping stays until process exit, but the name is gone
            # and the memory is reclaimed with the last unmap.
            pass

    def __enter__(self) -> "SegmentLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class ShmBatch:
    """Picklable handle to one packet batch inside a segment.

    ``columns`` holds one ``(offset, dtype)`` pair per column, in
    :data:`repro.packet.COLUMNS` order.
    """

    segment: str
    columns: Tuple[Tuple[int, str], ...]
    length: int

    def load(self) -> PacketBatch:
        """Rebuild the batch as read-only views into the segment."""
        mapped = _attach(self.segment)
        arrays = []
        for offset, dtype in self.columns:
            view = np.frombuffer(
                mapped,
                dtype=np.dtype(dtype),
                count=self.length,
                offset=offset,
            )
            view.flags.writeable = False
            arrays.append(view)
        return PacketBatch(*arrays)


@dataclass(frozen=True)
class ShmBatchList:
    """Picklable handle to one shard's batch list inside a segment."""

    segment: str
    batches: Tuple[ShmBatch, ...]

    def load(self) -> List[PacketBatch]:
        return [batch.load() for batch in self.batches]


def resolve_batches(payload) -> List[PacketBatch]:
    """A worker's batch list, whichever way it was shipped."""
    if isinstance(payload, ShmBatchList):
        return payload.load()
    return payload


def resolve_batch(obj):
    """A single batch, whether shipped directly or as a handle."""
    if isinstance(obj, ShmBatch):
        return obj.load()
    return obj


def _segment_name(label: str) -> str:
    return f"repro-{label}-{os.getpid()}-{os.urandom(4).hex()}"


def share_shard_batches(
    shards: Sequence[Sequence[PacketBatch]], label: str = "detect"
) -> Tuple[List[ShmBatchList], SegmentLease]:
    """Pack per-shard batch lists into one fresh named segment.

    Returns one :class:`ShmBatchList` handle per input shard (pass
    these to the workers instead of the batches) and the
    :class:`SegmentLease` the caller must close once the pool has
    joined.  Empty shards and zero-packet batches round-trip exactly.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    offset = 0
    layout: List[List[Tuple[Tuple[Tuple[int, str], ...], int]]] = []
    for batches in shards:
        shard_layout = []
        for batch in batches:
            columns = []
            for name in COLUMNS:
                column = getattr(batch, name)
                offset = -(-offset // _ALIGN) * _ALIGN
                columns.append((offset, column.dtype.str))
                offset += column.nbytes
            shard_layout.append((tuple(columns), len(batch)))
        layout.append(shard_layout)
    segment = _shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_segment_name(label)
    )
    try:
        for batches, shard_layout in zip(shards, layout):
            for batch, (columns, length) in zip(batches, shard_layout):
                for name, (col_offset, dtype) in zip(COLUMNS, columns):
                    column = getattr(batch, name)
                    dest = np.frombuffer(
                        segment.buf,
                        dtype=column.dtype,
                        count=length,
                        offset=col_offset,
                    )
                    dest[:] = column
                del dest  # noqa: F821 - release the buffer export
    except BaseException:
        segment.unlink()
        segment.close()
        raise
    handles = [
        ShmBatchList(
            segment.name,
            tuple(
                ShmBatch(segment.name, columns, length)
                for columns, length in shard_layout
            ),
        )
        for shard_layout in layout
    ]
    return handles, SegmentLease(segment)


def share_batch(
    batch: PacketBatch, label: str = "chunk"
) -> Tuple[ShmBatch, SegmentLease]:
    """Single-batch convenience over :func:`share_shard_batches`."""
    handles, lease = share_shard_batches([[batch]], label)
    return handles[0].batches[0], lease


def share_batches(
    batches: Sequence[PacketBatch], label: str = "fold"
) -> Tuple[List[ShmBatch], SegmentLease]:
    """Pack independent batches into one segment, one handle each.

    The serve layer's fold hand-off: a coalesced chunk is sharded by
    source, and each sub-batch ships to its fold worker as one
    :class:`ShmBatch` handle over a single shared segment.  The caller
    closes the lease once every worker has answered.
    """
    handles, lease = share_shard_batches([[b] for b in batches], label)
    return [handle.batches[0] for handle in handles], lease
