"""Serialization: events, flows, packet captures and published lists."""

from repro.io.eventlog import load_events_csv, save_events_csv
from repro.io.flowlog import load_flows_csv, save_flows_csv
from repro.io.listio import (
    diff_blocklists,
    load_blocklist,
    merge_blocklists,
    save_blocklist,
)
from repro.io.packetlog import load_packets_npz, save_packets_npz

__all__ = [
    "diff_blocklists",
    "load_blocklist",
    "load_events_csv",
    "load_flows_csv",
    "load_packets_npz",
    "merge_blocklists",
    "save_blocklist",
    "save_events_csv",
    "save_flows_csv",
    "save_packets_npz",
]
