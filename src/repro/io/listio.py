"""Publishing and consuming AH lists — the subscription workflow.

The paper's operational plan is to "produce and share daily lists of
such scanners (using all three definitions) that the network and
threat-exchange communities could subscribe to".  This module defines
the wire format for that exchange:

* :func:`save_blocklist` / :func:`load_blocklist` — one day's list with
  full annotations (the ``DailyBlocklist`` CSV dialect);
* :func:`diff_blocklists` — what a subscriber must add/remove when a
  new day's list arrives (the delta feeds firewalls efficiently);
* :func:`merge_blocklists` — union of several days with per-address
  recency, for operators who block with a decay window.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.core.lists import BlocklistEntry, DailyBlocklist
from repro.net.addr import format_ip, parse_ip

_HEADER = ["ip", "definitions", "darknet_packets", "asn", "country", "acknowledged"]


def save_blocklist(blocklist: DailyBlocklist, path: Union[str, Path]) -> None:
    """Write one day's blocklist in the published CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"# day={blocklist.day}\n")
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for entry in blocklist.entries:
            writer.writerow(
                [
                    format_ip(entry.address),
                    "+".join(str(d) for d in entry.definitions),
                    entry.packets,
                    entry.asn,
                    entry.country,
                    int(entry.acknowledged),
                ]
            )


def load_blocklist(path: Union[str, Path]) -> DailyBlocklist:
    """Read a blocklist written by :func:`save_blocklist`."""
    path = Path(path)
    with path.open(newline="") as handle:
        first = handle.readline().strip()
        if not first.startswith("# day="):
            raise ValueError(f"missing day header in {path}")
        day = int(first.split("=", 1)[1])
        reader = csv.reader(handle)
        header = next(reader)
        if header != _HEADER:
            raise ValueError(f"unexpected blocklist header: {header}")
        entries = []
        for row in reader:
            entries.append(
                BlocklistEntry(
                    address=parse_ip(row[0]),
                    definitions=tuple(int(d) for d in row[1].split("+") if d),
                    packets=int(row[2]),
                    asn=int(row[3]),
                    country=row[4],
                    acknowledged=bool(int(row[5])),
                )
            )
    return DailyBlocklist(day=day, entries=entries)


@dataclass(frozen=True)
class BlocklistDiff:
    """What changes between two consecutive published lists."""

    added: tuple
    removed: tuple
    retained: tuple

    @property
    def churn(self) -> float:
        """Share of the union that changed."""
        total = len(self.added) + len(self.removed) + len(self.retained)
        if total == 0:
            return 0.0
        return (len(self.added) + len(self.removed)) / total


def diff_blocklists(
    old: DailyBlocklist, new: DailyBlocklist
) -> BlocklistDiff:
    """Delta a subscriber applies when the next day's list arrives."""
    old_addresses = old.addresses()
    new_addresses = new.addresses()
    return BlocklistDiff(
        added=tuple(sorted(new_addresses - old_addresses)),
        removed=tuple(sorted(old_addresses - new_addresses)),
        retained=tuple(sorted(old_addresses & new_addresses)),
    )


def merge_blocklists(blocklists: Sequence[DailyBlocklist]) -> Dict[int, int]:
    """Union of several days' lists with per-address last-seen day.

    Returns ``{address: last_day_listed}`` — the state an operator
    keeps when expiring entries after a decay window.
    """
    last_seen: Dict[int, int] = {}
    for blocklist in blocklists:
        for entry in blocklist.entries:
            previous = last_seen.get(entry.address)
            if previous is None or blocklist.day > previous:
                last_seen[entry.address] = blocklist.day
    return last_seen


def expire_merged(
    last_seen: Dict[int, int], current_day: int, window_days: int
) -> Dict[int, int]:
    """Drop merged entries older than the decay window."""
    if window_days < 1:
        raise ValueError("window_days must be >= 1")
    return {
        address: day
        for address, day in last_seen.items()
        if current_day - day < window_days
    }
