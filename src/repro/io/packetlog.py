"""Binary (de)serialization of packet captures.

Darknet captures run to millions of packets; CSV would be wasteful, so
captures persist as compressed ``.npz`` archives holding the
:class:`~repro.packet.PacketBatch` columns verbatim.  The format is a
stand-in for pcap in this reproduction: lossless for everything the
analyses consume.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.packet import PacketBatch

#: Format marker stored inside every archive.
_MAGIC = "repro-packetlog-v1"


def save_packets_npz(batch: PacketBatch, path: Union[str, Path]) -> None:
    """Write a packet batch to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        ts=batch.ts,
        src=batch.src,
        dst=batch.dst,
        dport=batch.dport,
        proto=batch.proto,
        ipid=batch.ipid,
    )


def load_packets_npz(path: Union[str, Path]) -> PacketBatch:
    """Read a packet batch written by :func:`save_packets_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        magic = str(archive["magic"])
        if magic != _MAGIC:
            raise ValueError(f"not a repro packet log: {path} (magic={magic!r})")
        return PacketBatch(
            ts=archive["ts"],
            src=archive["src"],
            dst=archive["dst"],
            dport=archive["dport"],
            proto=archive["proto"],
            ipid=archive["ipid"],
        )


def save_packets_chunked(
    batch: PacketBatch,
    directory: Union[str, Path],
    chunk_seconds: float,
) -> int:
    """Split a capture into per-window archives (hourly-pcap style).

    Writes ``chunk-00000.npz``, ``chunk-00001.npz``, ... into
    ``directory`` (created if missing), one per non-empty time window of
    ``chunk_seconds``, epoch-aligned.  Filename order is time order, so
    the directory can be streamed back with :func:`iter_packets_chunked`
    without ever materializing the whole capture.

    Returns the number of chunk files written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = 0
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        if len(chunk) == 0:
            continue
        save_packets_npz(chunk, directory / f"chunk-{written:05d}.npz")
        written += 1
    return written


def iter_packets_chunked(directory: Union[str, Path]):
    """Yield the chunks of :func:`save_packets_chunked` in time order.

    Loads one archive at a time — the memory profile of the streaming
    pipeline over an on-disk capture is one chunk plus detector state.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a chunk directory: {directory}")
    paths = sorted(directory.glob("chunk-*.npz"))
    if not paths:
        raise ValueError(f"no chunk archives in {directory}")
    for path in paths:
        yield load_packets_npz(path)
