"""Binary (de)serialization of packet captures.

Darknet captures run to millions of packets; CSV would be wasteful, so
captures persist as compressed ``.npz`` archives holding the
:class:`~repro.packet.PacketBatch` columns verbatim.  The format is a
stand-in for pcap in this reproduction: lossless for everything the
analyses consume.

Writes are crash-safe: every archive lands via tmp + fsync + rename
(a crash leaves either the previous file or the complete new one,
never a truncated hybrid), and chunked captures carry a ``MANIFEST.json``
recording each chunk's sha256 digest *as it is written* — so a reader
can tell exactly which chunks of an interrupted or damaged capture are
trustworthy.  Readers verify digests and raise
:class:`~repro.core.faults.ChunkCorruptionError` naming the offending
file (strict mode), or skip-and-account the damage (degraded mode).

Archives lay columns out in :data:`repro.packet.COLUMNS` order — the
same struct-of-arrays schema :mod:`repro.io.shm` packs into shared
memory for the intra-host zero-copy hand-off, so the two surfaces stay
mutually convertible without reshaping (shared-memory views serialize
through :func:`packets_to_npz_bytes` unchanged).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.faults import (
    ChunkCorruptionError,
    atomic_write_bytes,
    sha256_hex,
)
from repro.packet import COLUMNS, PacketBatch

#: Format marker stored inside every archive.
_MAGIC = "repro-packetlog-v1"

#: Chunk-directory manifest filename and format marker.
MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_MAGIC = "repro-chunk-manifest-v1"

#: Values of ``on_corrupt``: fail fast, or skip-and-account.
CORRUPT_MODES = ("raise", "quarantine")


def _packets_npz_bytes(batch: PacketBatch) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        magic=np.array(_MAGIC),
        **{name: getattr(batch, name) for name in COLUMNS},
    )
    return buffer.getvalue()


def packets_to_npz_bytes(batch: PacketBatch) -> bytes:
    """Serialize a packet batch to npz archive bytes.

    The byte-level twin of :func:`save_packets_npz` — the same
    magic-tagged archive, returned instead of written.  This is the
    chunk-ingest wire format of the :mod:`repro.serve` service: clients
    POST exactly these bytes, so a chunk file written by
    ``save_packets_chunked`` can be replayed to a server verbatim.
    """
    return _packets_npz_bytes(batch)


def packets_from_npz_bytes(
    data: bytes, label: str = "<bytes>"
) -> PacketBatch:
    """Parse npz archive bytes back into a packet batch.

    Raises :class:`~repro.core.faults.ChunkCorruptionError` (with
    ``label`` in the message) on a truncated, altered, or mis-tagged
    payload — the server rejects such chunks without touching detector
    state.
    """
    return _parse_packets_npz(data, Path(label))


def save_packets_npz(batch: PacketBatch, path: Union[str, Path]) -> str:
    """Write a packet batch to a compressed ``.npz`` archive.

    The write is atomic (tmp + fsync + rename): an interrupted writer
    never leaves a truncated archive at ``path`` for a later
    :func:`load_packets_npz` to trip over.  Returns the archive's
    sha256 content digest (the value recorded in chunk manifests).
    """
    return atomic_write_bytes(Path(path), _packets_npz_bytes(batch))


def _parse_packets_npz(data: bytes, path: Path) -> PacketBatch:
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            magic = str(archive["magic"])
            if magic != _MAGIC:
                raise ChunkCorruptionError(
                    f"not a repro packet log: {path} (magic={magic!r})"
                )
            return PacketBatch(**{name: archive[name] for name in COLUMNS})
    except ChunkCorruptionError:
        raise
    except Exception as exc:
        raise ChunkCorruptionError(
            f"corrupt packet chunk {path}: {type(exc).__name__}: {exc}"
        ) from exc


def load_packets_npz(
    path: Union[str, Path], expected_digest: Optional[str] = None
) -> PacketBatch:
    """Read a packet batch written by :func:`save_packets_npz`.

    A truncated, altered, or otherwise unreadable archive raises
    :class:`~repro.core.faults.ChunkCorruptionError` with the offending
    path in the message; a missing file still raises
    ``FileNotFoundError``.  With ``expected_digest`` set (from a chunk
    manifest), the file's content digest is verified before parsing.
    """
    path = Path(path)
    data = path.read_bytes()
    if expected_digest is not None and sha256_hex(data) != expected_digest:
        raise ChunkCorruptionError(
            f"corrupt packet chunk {path}: content digest does not match "
            "the chunk manifest"
        )
    return _parse_packets_npz(data, path)


# ----------------------------------------------------------------------
# Chunked captures with a digest manifest
# ----------------------------------------------------------------------


class ChunkWriter:
    """Incremental, crash-consistent writer of a chunk directory.

    Each :meth:`write` lands one ``chunk-<index>.npz`` atomically and
    then rewrites ``MANIFEST.json`` (also atomically) with the digests
    of everything written *so far* — so a writer dying between chunk N
    and N+1 leaves a directory whose manifest certifies exactly chunks
    0..N.  :meth:`close` marks the manifest complete.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        chunk_seconds: Optional[float] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunk_seconds = chunk_seconds
        self.written = 0
        self._digests: List[str] = []

    def write(self, batch: PacketBatch) -> Path:
        """Persist the next chunk and extend the manifest."""
        path = self.directory / f"chunk-{self.written:05d}.npz"
        digest = save_packets_npz(batch, path)
        self._digests.append(digest)
        self.written += 1
        self._write_manifest(complete=False)
        return path

    def close(self) -> int:
        """Finalize the manifest; returns the number of chunks written."""
        self._write_manifest(complete=True)
        return self.written

    def _write_manifest(self, complete: bool) -> None:
        manifest = {
            "magic": _MANIFEST_MAGIC,
            "chunk_seconds": self.chunk_seconds,
            "complete": complete,
            "chunks": {
                f"chunk-{index:05d}.npz": digest
                for index, digest in enumerate(self._digests)
            },
        }
        atomic_write_bytes(
            self.directory / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )


def save_packets_chunked(
    batch: PacketBatch,
    directory: Union[str, Path],
    chunk_seconds: float,
) -> int:
    """Split a capture into per-window archives (hourly-pcap style).

    Writes ``chunk-00000.npz``, ``chunk-00001.npz``, ... into
    ``directory`` (created if missing), one per non-empty time window of
    ``chunk_seconds``, epoch-aligned, plus a ``MANIFEST.json`` of
    per-chunk content digests (updated after every chunk — see
    :class:`ChunkWriter`).  Filename order is time order, so the
    directory can be streamed back with :func:`iter_packets_chunked`
    without ever materializing the whole capture.

    Returns the number of chunk files written.
    """
    writer = ChunkWriter(directory, chunk_seconds)
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        if len(chunk) == 0:
            continue
        writer.write(chunk)
    return writer.close()


def load_manifest(directory: Union[str, Path]) -> Optional[dict]:
    """The chunk directory's digest manifest, or ``None`` (legacy dir).

    A manifest that exists but cannot be parsed raises
    :class:`~repro.core.faults.ChunkCorruptionError` — a damaged
    manifest means the directory's integrity cannot be certified.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as exc:
        raise ChunkCorruptionError(
            f"corrupt chunk manifest {path}: {exc}"
        ) from exc
    if manifest.get("magic") != _MANIFEST_MAGIC:
        raise ChunkCorruptionError(
            f"corrupt chunk manifest {path}: unrecognized format marker "
            f"{manifest.get('magic')!r}"
        )
    return manifest


def chunk_paths(directory: Union[str, Path]) -> list:
    """The validated, time-ordered archive paths of a chunk directory.

    Raises immediately — with a message naming the problem — when the
    directory is missing, holds no ``chunk-*.npz`` archives, has a
    malformed chunk filename, or has a gap in the chunk sequence
    (``save_packets_chunked`` numbers chunks contiguously from 0, so a
    gap means part of the capture was lost or never copied).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a chunk directory: {directory}")
    paths = sorted(directory.glob("chunk-*.npz"))
    if not paths:
        raise ValueError(
            f"no chunk archives (chunk-*.npz) in {directory} — expected a "
            "directory written by save_packets_chunked()"
        )
    indices = []
    for path in paths:
        suffix = path.name[len("chunk-"):-len(".npz")]
        if not suffix.isdigit():
            raise ValueError(
                f"malformed chunk filename {path.name!r} in {directory} — "
                "expected chunk-<index>.npz"
            )
        indices.append(int(suffix))
    expected = list(range(len(paths)))
    if indices != expected:
        missing = sorted(set(range(max(indices) + 1)) - set(indices))
        raise ValueError(
            f"chunk sequence in {directory} has gaps: missing "
            f"{['chunk-%05d.npz' % i for i in missing]} — the capture "
            "cannot be streamed in order"
        )
    return paths


def iter_packets_verified(
    directory: Union[str, Path],
    on_corrupt: str = "raise",
) -> Iterator[Tuple[Path, Optional[PacketBatch]]]:
    """Yield ``(path, batch)`` per chunk, verifying against the manifest.

    Chunks listed in ``MANIFEST.json`` are digest-checked before
    parsing; chunks the manifest has not recorded (a writer died after
    the rename, before the manifest update) are accepted if they parse
    — the atomic rename guarantees a present archive is complete unless
    externally damaged.  Directories without a manifest fall back to
    parse-only validation.

    ``on_corrupt="raise"`` (strict) propagates the first
    :class:`~repro.core.faults.ChunkCorruptionError`;
    ``on_corrupt="quarantine"`` (degraded) yields ``(path, None)`` for
    each damaged chunk so callers can account the loss and continue.
    """
    if on_corrupt not in CORRUPT_MODES:
        raise ValueError(
            f"on_corrupt must be one of {CORRUPT_MODES}, got {on_corrupt!r}"
        )
    paths = chunk_paths(directory)
    manifest = load_manifest(directory)
    digests = {} if manifest is None else manifest["chunks"]
    for path in paths:
        try:
            yield path, load_packets_npz(path, digests.get(path.name))
        except ChunkCorruptionError:
            if on_corrupt == "raise":
                raise
            yield path, None


def verify_chunks(
    directory: Union[str, Path]
) -> Tuple[List[Path], List[Path]]:
    """Audit a chunk directory: ``(valid_paths, corrupt_paths)``.

    Every chunk is digest-checked against the manifest (or parsed, for
    unlisted/legacy chunks); nothing is raised — this is the reporting
    surface for "which chunks of this interrupted capture survive".
    """
    valid: List[Path] = []
    corrupt: List[Path] = []
    for path, batch in iter_packets_verified(directory, "quarantine"):
        (corrupt if batch is None else valid).append(path)
    return valid, corrupt


def iter_packets_chunked(
    directory: Union[str, Path],
    on_corrupt: str = "raise",
    health=None,
):
    """Yield the chunks of :func:`save_packets_chunked` in time order.

    Loads one archive at a time — the memory profile of the streaming
    pipeline over an on-disk capture is one chunk plus detector state.
    The directory is validated via :func:`chunk_paths` before the first
    chunk is yielded, and every chunk is verified against the digest
    manifest.  In degraded mode (``on_corrupt="quarantine"``) damaged
    chunks are skipped and recorded on ``health``
    (:class:`~repro.core.telemetry.RunHealth`) instead of raising.
    """
    for path, batch in iter_packets_verified(directory, on_corrupt):
        if batch is None:
            if health is not None:
                health.record_quarantine(str(path))
            continue
        yield batch
