"""Binary (de)serialization of packet captures.

Darknet captures run to millions of packets; CSV would be wasteful, so
captures persist as compressed ``.npz`` archives holding the
:class:`~repro.packet.PacketBatch` columns verbatim.  The format is a
stand-in for pcap in this reproduction: lossless for everything the
analyses consume.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.packet import PacketBatch

#: Format marker stored inside every archive.
_MAGIC = "repro-packetlog-v1"


def save_packets_npz(batch: PacketBatch, path: Union[str, Path]) -> None:
    """Write a packet batch to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        ts=batch.ts,
        src=batch.src,
        dst=batch.dst,
        dport=batch.dport,
        proto=batch.proto,
        ipid=batch.ipid,
    )


def load_packets_npz(path: Union[str, Path]) -> PacketBatch:
    """Read a packet batch written by :func:`save_packets_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        magic = str(archive["magic"])
        if magic != _MAGIC:
            raise ValueError(f"not a repro packet log: {path} (magic={magic!r})")
        return PacketBatch(
            ts=archive["ts"],
            src=archive["src"],
            dst=archive["dst"],
            dport=archive["dport"],
            proto=archive["proto"],
            ipid=archive["ipid"],
        )
