"""Binary (de)serialization of packet captures.

Darknet captures run to millions of packets; CSV would be wasteful, so
captures persist as compressed ``.npz`` archives holding the
:class:`~repro.packet.PacketBatch` columns verbatim.  The format is a
stand-in for pcap in this reproduction: lossless for everything the
analyses consume.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.packet import PacketBatch

#: Format marker stored inside every archive.
_MAGIC = "repro-packetlog-v1"


def save_packets_npz(batch: PacketBatch, path: Union[str, Path]) -> None:
    """Write a packet batch to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        ts=batch.ts,
        src=batch.src,
        dst=batch.dst,
        dport=batch.dport,
        proto=batch.proto,
        ipid=batch.ipid,
    )


def load_packets_npz(path: Union[str, Path]) -> PacketBatch:
    """Read a packet batch written by :func:`save_packets_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        magic = str(archive["magic"])
        if magic != _MAGIC:
            raise ValueError(f"not a repro packet log: {path} (magic={magic!r})")
        return PacketBatch(
            ts=archive["ts"],
            src=archive["src"],
            dst=archive["dst"],
            dport=archive["dport"],
            proto=archive["proto"],
            ipid=archive["ipid"],
        )


def save_packets_chunked(
    batch: PacketBatch,
    directory: Union[str, Path],
    chunk_seconds: float,
) -> int:
    """Split a capture into per-window archives (hourly-pcap style).

    Writes ``chunk-00000.npz``, ``chunk-00001.npz``, ... into
    ``directory`` (created if missing), one per non-empty time window of
    ``chunk_seconds``, epoch-aligned.  Filename order is time order, so
    the directory can be streamed back with :func:`iter_packets_chunked`
    without ever materializing the whole capture.

    Returns the number of chunk files written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = 0
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        if len(chunk) == 0:
            continue
        save_packets_npz(chunk, directory / f"chunk-{written:05d}.npz")
        written += 1
    return written


def chunk_paths(directory: Union[str, Path]) -> list:
    """The validated, time-ordered archive paths of a chunk directory.

    Raises immediately — with a message naming the problem — when the
    directory is missing, holds no ``chunk-*.npz`` archives, has a
    malformed chunk filename, or has a gap in the chunk sequence
    (``save_packets_chunked`` numbers chunks contiguously from 0, so a
    gap means part of the capture was lost or never copied).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a chunk directory: {directory}")
    paths = sorted(directory.glob("chunk-*.npz"))
    if not paths:
        raise ValueError(
            f"no chunk archives (chunk-*.npz) in {directory} — expected a "
            "directory written by save_packets_chunked()"
        )
    indices = []
    for path in paths:
        suffix = path.name[len("chunk-"):-len(".npz")]
        if not suffix.isdigit():
            raise ValueError(
                f"malformed chunk filename {path.name!r} in {directory} — "
                "expected chunk-<index>.npz"
            )
        indices.append(int(suffix))
    expected = list(range(len(paths)))
    if indices != expected:
        missing = sorted(set(range(max(indices) + 1)) - set(indices))
        raise ValueError(
            f"chunk sequence in {directory} has gaps: missing "
            f"{['chunk-%05d.npz' % i for i in missing]} — the capture "
            "cannot be streamed in order"
        )
    return paths


def iter_packets_chunked(directory: Union[str, Path]):
    """Yield the chunks of :func:`save_packets_chunked` in time order.

    Loads one archive at a time — the memory profile of the streaming
    pipeline over an on-disk capture is one chunk plus detector state.
    The directory is validated via :func:`chunk_paths` before the first
    chunk is yielded.
    """
    for path in chunk_paths(directory):
        yield load_packets_npz(path)
