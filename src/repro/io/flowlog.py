"""NetFlow record (de)serialization in CSV form."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.flows.netflow import FlowTable
from repro.net.addr import format_ip, parse_ip

_HEADER = ["router", "day", "src", "dport", "proto", "packets", "sampled"]


def save_flows_csv(flows: FlowTable, path: Union[str, Path]) -> None:
    """Write a flow table to CSV (source IPs in dotted quad)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for i in range(len(flows)):
            writer.writerow(
                [
                    int(flows.router[i]),
                    int(flows.day[i]),
                    format_ip(int(flows.src[i])),
                    int(flows.dport[i]),
                    int(flows.proto[i]),
                    int(flows.packets[i]),
                    int(flows.sampled[i]),
                ]
            )


def load_flows_csv(path: Union[str, Path]) -> FlowTable:
    """Read a flow table written by :func:`save_flows_csv`."""
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != _HEADER:
            raise ValueError(f"unexpected flow CSV header: {header}")
        rows = list(reader)
    if not rows:
        return FlowTable()
    return FlowTable(
        router=np.array([int(r[0]) for r in rows], dtype=np.int8),
        day=np.array([int(r[1]) for r in rows], dtype=np.int32),
        src=np.array([parse_ip(r[2]) for r in rows], dtype=np.uint32),
        dport=np.array([int(r[3]) for r in rows], dtype=np.uint16),
        proto=np.array([int(r[4]) for r in rows], dtype=np.uint8),
        packets=np.array([int(r[5]) for r in rows], dtype=np.int64),
        sampled=np.array([int(r[6]) for r in rows], dtype=np.int64),
    )
