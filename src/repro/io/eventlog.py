"""Darknet event (de)serialization.

The ORION pipeline stores darknet events in flat files; operators
exchange AH lists and event summaries the same way.  A simple CSV
format keeps the artifacts inspectable with standard tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.events import EventTable
from repro.net.addr import format_ip, parse_ip

_HEADER = ["src", "dport", "proto", "start", "end", "packets", "unique_dsts"]


def save_events_csv(events: EventTable, path: Union[str, Path]) -> None:
    """Write an event table to CSV (source IPs in dotted quad)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for i in range(len(events)):
            writer.writerow(
                [
                    format_ip(int(events.src[i])),
                    int(events.dport[i]),
                    int(events.proto[i]),
                    f"{float(events.start[i]):.6f}",
                    f"{float(events.end[i]):.6f}",
                    int(events.packets[i]),
                    int(events.unique_dsts[i]),
                ]
            )


def load_events_csv(path: Union[str, Path]) -> EventTable:
    """Read an event table written by :func:`save_events_csv`."""
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != _HEADER:
            raise ValueError(f"unexpected event CSV header: {header}")
        for row in reader:
            rows.append(row)
    if not rows:
        return EventTable.empty()
    return EventTable(
        src=np.array([parse_ip(r[0]) for r in rows], dtype=np.uint32),
        dport=np.array([int(r[1]) for r in rows], dtype=np.uint16),
        proto=np.array([int(r[2]) for r in rows], dtype=np.uint8),
        start=np.array([float(r[3]) for r in rows], dtype=np.float64),
        end=np.array([float(r[4]) for r in rows], dtype=np.float64),
        packets=np.array([int(r[5]) for r in rows], dtype=np.int64),
        unique_dsts=np.array([int(r[6]) for r in rows], dtype=np.int64),
    )
