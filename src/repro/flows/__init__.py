"""ISP substrate: border routers, NetFlow export and stream monitors."""

from repro.flows.isp import ISPNetwork, build_campus_like, build_merit_like
from repro.flows.netflow import FlowTable, NetflowExporter
from repro.flows.router import BorderRouter, RoutingPolicy, region_of
from repro.flows.stream import StreamMonitor, StreamSeries

__all__ = [
    "BorderRouter",
    "FlowTable",
    "ISPNetwork",
    "NetflowExporter",
    "RoutingPolicy",
    "StreamMonitor",
    "StreamSeries",
    "build_campus_like",
    "build_merit_like",
    "region_of",
]
