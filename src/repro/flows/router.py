"""Border routers and the origin-dependent routing policy.

The paper observes that peering arrangements decide which core router
carries which scanner's packets: router-1 peers with the tier-1s that
carry Europe/Asia traffic and consequently endures the highest AH
impact (Table 2), while router-3 sees only about half of the AH
population (Table 8).  ``RoutingPolicy`` reproduces that structure:
every external source is deterministically assigned to one ingress
router according to region-dependent weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

#: Region assignment for the synthetic country codes.
_ASIA = {
    "CN", "TW", "KR", "JP", "VN", "ID", "IN", "SG", "HK", "TH", "MY",
    "PH", "KH", "LA", "MN", "PK", "BD", "LK", "NP", "MM", "KZ", "UZ",
    "KG", "TJ", "TM",
}
_EUROPE = {
    "DE", "NL", "FR", "GB", "RU", "ES", "PT", "IT", "GR", "TR", "PL",
    "CZ", "SK", "HU", "RO", "BG", "RS", "HR", "SI", "AT", "CH", "BE",
    "LU", "DK", "NO", "SE", "FI", "EE", "LV", "LT", "UA", "BY", "MD",
    "GE", "AM", "AZ",
}
_AMERICAS = {
    "US", "CA", "MX", "BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY",
    "PY", "BO",
}


def region_of(country: str) -> str:
    """Coarse region of a country code."""
    if country in _ASIA:
        return "asia"
    if country in _EUROPE:
        return "europe"
    if country in _AMERICAS:
        return "americas"
    return "other"


@dataclass(frozen=True)
class BorderRouter:
    """One monitored core router."""

    name: str
    index: int


@dataclass
class RoutingPolicy:
    """Deterministic source-to-ingress-router assignment.

    Attributes:
        routers: the border routers, ordered by index.
        region_weights: region -> per-router ingress probabilities.
    """

    routers: Sequence[BorderRouter]
    region_weights: Dict[str, Sequence[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for region, weights in self.region_weights.items():
            if len(weights) != len(self.routers):
                raise ValueError(f"weights for {region} must match router count")
            if abs(sum(weights) - 1.0) > 1e-9:
                raise ValueError(f"weights for {region} must sum to 1")
        # Row-per-region cumulative weight matrix for the vectorized
        # assignment path.  np.cumsum over a row adds sequentially, so
        # each row is float-for-float the ``acc += weight`` chain of the
        # scalar ``router_of`` loop — equality edges included.
        self._region_slot = {
            region: i for i, region in enumerate(sorted(self.region_weights))
        }
        self._cum_weights = np.cumsum(
            np.array(
                [
                    self.region_weights[region]
                    for region in sorted(self.region_weights)
                ],
                dtype=np.float64,
            ),
            axis=1,
        )

    @classmethod
    def default_three_router(cls) -> "RoutingPolicy":
        """The Merit-like policy: router-1 peers toward Europe/Asia."""
        routers = (
            BorderRouter("Router-1", 0),
            BorderRouter("Router-2", 1),
            BorderRouter("Router-3", 2),
        )
        return cls(
            routers=routers,
            region_weights={
                "asia": (0.62, 0.28, 0.10),
                "europe": (0.58, 0.30, 0.12),
                "americas": (0.22, 0.33, 0.45),
                "other": (0.34, 0.33, 0.33),
            },
        )

    @classmethod
    def single_router(cls, name: str = "Border") -> "RoutingPolicy":
        """Campus-style policy: everything enters at one border."""
        routers = (BorderRouter(name, 0),)
        weights = {r: (1.0,) for r in ("asia", "europe", "americas", "other")}
        return cls(routers=routers, region_weights=weights)

    # ------------------------------------------------------------------
    @staticmethod
    def _uniform_of(src: int, block: int = 0) -> float:
        """Deterministic per-(source, destination-block) uniform draw."""
        mixed = (int(src) * 2654435761 ^ (int(block) + 1) * 0x9E3779B9) % (2**32)
        return mixed / 2**32

    @staticmethod
    def _uniforms_of(sources: np.ndarray, block: int = 0) -> np.ndarray:
        """Vector :meth:`_uniform_of` — exact in uint64.

        ``src * 2654435761`` stays below 2**64 for 32-bit sources, so
        the wrap-free product, the xor and the low-32-bit mask reproduce
        the arbitrary-precision scalar arithmetic bit for bit.
        """
        mixed = sources.astype(np.uint64) * np.uint64(2654435761)
        mixed = mixed ^ np.uint64(((int(block) + 1) * 0x9E3779B9) % 2**64)
        mixed = mixed & np.uint64(0xFFFFFFFF)
        return mixed.astype(np.float64) / 2**32

    def _region_slots(self, countries: Sequence[str]) -> np.ndarray:
        """Cumulative-weight row index per country."""
        return np.array(
            [self._region_slot[region_of(c)] for c in countries],
            dtype=np.intp,
        )

    def _routers_for(
        self, sources: np.ndarray, slots: np.ndarray, block: int = 0
    ) -> np.ndarray:
        """Vectorized router pick for pre-resolved region slots.

        ``(cum_row <= u).sum()`` counts the weights the scalar loop
        would have stepped past before ``u < acc`` fired — the same
        index, with the same strict-inequality edge handling; the clip
        covers rows whose float cumsum tops out fractionally below 1.
        """
        u = self._uniforms_of(sources, block)
        cum = self._cum_weights[slots]
        picked = (cum <= u[:, None]).sum(axis=1)
        return np.minimum(picked, len(self.routers) - 1).astype(np.int8)

    def router_of(self, src: int, country: str, block: int = 0) -> int:
        """Ingress router for one source's traffic to one dst block.

        BGP picks the ingress per destination prefix, so one source's
        traffic toward different blocks of the ISP's address space can
        enter at different routers — the reason the paper observes
        nearly the whole AH population at two routers simultaneously
        (Table 8).  The draw is deterministic in (src, block).
        """
        weights = self.region_weights[region_of(country)]
        u = self._uniform_of(src, block)
        acc = 0.0
        for idx, weight in enumerate(weights):
            acc += weight
            if u < acc:
                return idx
        return len(weights) - 1

    def router_mix(
        self, src: int, country: str, block_sizes: Sequence[float]
    ) -> np.ndarray:
        """Share of this source's ISP-bound traffic per router.

        Args:
            src: source address.
            country: the source's country (region policy).
            block_sizes: address counts of the ISP's destination blocks.

        Returns:
            Array of per-router traffic fractions summing to 1.
        """
        total = float(sum(block_sizes))
        mix = np.zeros(len(self.routers), dtype=np.float64)
        for block, size in enumerate(block_sizes):
            mix[self.router_of(src, country, block)] += size / total
        return mix

    def assign(
        self,
        sources: np.ndarray,
        countries: Sequence[str],
        block: int = 0,
    ) -> np.ndarray:
        """Vectorized router assignment for many sources.

        One hash, one gather and one comparison over the whole batch;
        matches :meth:`router_of` element for element (regression- and
        property-tested), including the ``u == cum`` equality edges.
        """
        sources = np.asarray(sources)
        if len(sources) != len(countries):
            raise ValueError("sources and countries must align")
        if len(sources) == 0:
            return np.empty(0, dtype=np.int8)
        return self._routers_for(sources, self._region_slots(countries), block)

    def router_mix_matrix(
        self,
        sources: np.ndarray,
        countries: Sequence[str],
        block_sizes: Sequence[float],
    ) -> np.ndarray:
        """Per-source router traffic shares, batched.

        Row ``i`` equals ``router_mix(sources[i], countries[i],
        block_sizes)``: for each destination block, every source's
        deterministic ingress pick is computed vectorized and the
        block's size share is scattered onto the picked router column.

        Returns:
            ``(len(sources), len(routers))`` float matrix, rows sum to 1.
        """
        sources = np.asarray(sources)
        if len(sources) != len(countries):
            raise ValueError("sources and countries must align")
        n = len(sources)
        mix = np.zeros((n, len(self.routers)), dtype=np.float64)
        if n == 0:
            return mix
        total = float(sum(block_sizes))
        slots = self._region_slots(countries)
        row_index = np.arange(n)
        for block, size in enumerate(block_sizes):
            picked = self._routers_for(sources, slots, block)
            mix[row_index, picked] += size / total
        return mix

    def expected_share(self, region: str, router_index: int) -> float:
        """Ingress probability for a (region, router) pair."""
        return self.region_weights[region][router_index]
