"""Border routers and the origin-dependent routing policy.

The paper observes that peering arrangements decide which core router
carries which scanner's packets: router-1 peers with the tier-1s that
carry Europe/Asia traffic and consequently endures the highest AH
impact (Table 2), while router-3 sees only about half of the AH
population (Table 8).  ``RoutingPolicy`` reproduces that structure:
every external source is deterministically assigned to one ingress
router according to region-dependent weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

#: Region assignment for the synthetic country codes.
_ASIA = {
    "CN", "TW", "KR", "JP", "VN", "ID", "IN", "SG", "HK", "TH", "MY",
    "PH", "KH", "LA", "MN", "PK", "BD", "LK", "NP", "MM", "KZ", "UZ",
    "KG", "TJ", "TM",
}
_EUROPE = {
    "DE", "NL", "FR", "GB", "RU", "ES", "PT", "IT", "GR", "TR", "PL",
    "CZ", "SK", "HU", "RO", "BG", "RS", "HR", "SI", "AT", "CH", "BE",
    "LU", "DK", "NO", "SE", "FI", "EE", "LV", "LT", "UA", "BY", "MD",
    "GE", "AM", "AZ",
}
_AMERICAS = {
    "US", "CA", "MX", "BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY",
    "PY", "BO",
}


def region_of(country: str) -> str:
    """Coarse region of a country code."""
    if country in _ASIA:
        return "asia"
    if country in _EUROPE:
        return "europe"
    if country in _AMERICAS:
        return "americas"
    return "other"


@dataclass(frozen=True)
class BorderRouter:
    """One monitored core router."""

    name: str
    index: int


@dataclass
class RoutingPolicy:
    """Deterministic source-to-ingress-router assignment.

    Attributes:
        routers: the border routers, ordered by index.
        region_weights: region -> per-router ingress probabilities.
    """

    routers: Sequence[BorderRouter]
    region_weights: Dict[str, Sequence[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for region, weights in self.region_weights.items():
            if len(weights) != len(self.routers):
                raise ValueError(f"weights for {region} must match router count")
            if abs(sum(weights) - 1.0) > 1e-9:
                raise ValueError(f"weights for {region} must sum to 1")

    @classmethod
    def default_three_router(cls) -> "RoutingPolicy":
        """The Merit-like policy: router-1 peers toward Europe/Asia."""
        routers = (
            BorderRouter("Router-1", 0),
            BorderRouter("Router-2", 1),
            BorderRouter("Router-3", 2),
        )
        return cls(
            routers=routers,
            region_weights={
                "asia": (0.62, 0.28, 0.10),
                "europe": (0.58, 0.30, 0.12),
                "americas": (0.22, 0.33, 0.45),
                "other": (0.34, 0.33, 0.33),
            },
        )

    @classmethod
    def single_router(cls, name: str = "Border") -> "RoutingPolicy":
        """Campus-style policy: everything enters at one border."""
        routers = (BorderRouter(name, 0),)
        weights = {r: (1.0,) for r in ("asia", "europe", "americas", "other")}
        return cls(routers=routers, region_weights=weights)

    # ------------------------------------------------------------------
    @staticmethod
    def _uniform_of(src: int, block: int = 0) -> float:
        """Deterministic per-(source, destination-block) uniform draw."""
        mixed = (int(src) * 2654435761 ^ (int(block) + 1) * 0x9E3779B9) % (2**32)
        return mixed / 2**32

    def router_of(self, src: int, country: str, block: int = 0) -> int:
        """Ingress router for one source's traffic to one dst block.

        BGP picks the ingress per destination prefix, so one source's
        traffic toward different blocks of the ISP's address space can
        enter at different routers — the reason the paper observes
        nearly the whole AH population at two routers simultaneously
        (Table 8).  The draw is deterministic in (src, block).
        """
        weights = self.region_weights[region_of(country)]
        u = self._uniform_of(src, block)
        acc = 0.0
        for idx, weight in enumerate(weights):
            acc += weight
            if u < acc:
                return idx
        return len(weights) - 1

    def router_mix(
        self, src: int, country: str, block_sizes: Sequence[float]
    ) -> np.ndarray:
        """Share of this source's ISP-bound traffic per router.

        Args:
            src: source address.
            country: the source's country (region policy).
            block_sizes: address counts of the ISP's destination blocks.

        Returns:
            Array of per-router traffic fractions summing to 1.
        """
        total = float(sum(block_sizes))
        mix = np.zeros(len(self.routers), dtype=np.float64)
        for block, size in enumerate(block_sizes):
            mix[self.router_of(src, country, block)] += size / total
        return mix

    def assign(self, sources: np.ndarray, countries: Sequence[str]) -> np.ndarray:
        """Vector-ish router assignment for many sources (block 0)."""
        if len(sources) != len(countries):
            raise ValueError("sources and countries must align")
        return np.array(
            [self.router_of(int(s), c) for s, c in zip(sources, countries)],
            dtype=np.int8,
        )

    def expected_share(self, region: str, router_index: int) -> float:
        """Ingress probability for a (region, router) pair."""
        return self.region_weights[region][router_index]
