"""Columnar scanner-flow synthesis with per-scanner RNG streams.

The ISP flow path answers one question: how many packets did each
materialized scanner push through each border router on each day?  The
pre-columnar implementation walked a triple-nested Python loop
(scanner → count row → router) off one shared generator, which was both
slow and impossible to parallelize — every draw depended on every draw
before it.

This module rebuilds that stage around two ideas:

* **Per-scanner streams.**  One 63-bit *base* seed is drawn from the
  caller's generator (:func:`flow_base_seed` — the only draw the legacy
  ``rng`` argument still pays), and scanner ``i`` synthesizes from its
  own derived stream ``(base, FLOW_STREAM_SALT, i)``.  Scanners are
  therefore independent: any contiguous slice of the population can be
  synthesized by any worker and the result only depends on (base,
  population order), never on which process ran it.
* **Struct-of-arrays construction.**  Per scanner, all count draws
  happen as batched Poisson calls (:meth:`Scanner.count_columns`), the
  router split is one batched ``Generator.multinomial`` over the whole
  count-row block, and non-zero cells are lifted out with
  ``np.nonzero`` — no per-flow Python objects exist until the analyses
  ask for them.

Both properties are pinned by tests against the loop reference kept
here (:func:`scanner_flow_rows_loop` / :func:`collect_scanner_flows_loop`),
which consumes the derived streams in the exact scalar order: the
columnar path is bit-identical to it, and shard-parallel runs are
bit-identical to serial for any worker count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.flows.netflow import (
    SAMPLE_STREAM_SALT,
    FlowColumns,
    FlowTable,
    NetflowExporter,
)

#: Salt separating per-scanner synthesis streams from every other
#: consumer of the flow base seed (sampling, totals).
FLOW_STREAM_SALT = 0x464C4F57  # "FLOW"


def flow_base_seed(rng: np.random.Generator) -> int:
    """Draw the run's flow base seed (one draw from the caller's rng).

    Everything downstream — per-scanner synthesis streams, the
    exporter's sampling stream, the router-total streams — is derived
    from this single integer, so the whole flow stage is reproducible
    from (scenario seed, call order of this one draw) alone.
    """
    return int(rng.integers(0, 2**63))


def scanner_flow_rng(base: int, index: int) -> np.random.Generator:
    """The synthesis stream of the scanner at ``index`` in population order."""
    return np.random.default_rng((int(base), FLOW_STREAM_SALT, int(index)))


def scanner_flow_block(
    scanner,
    index: int,
    mix: np.ndarray,
    view,
    window: tuple,
    day_seconds: float,
    base: int,
) -> FlowColumns:
    """Synthesize one scanner's flow rows, columnar.

    Draw order within the scanner's stream: first every count draw (in
    :meth:`Scanner.count_columns` order), then one batched multinomial
    over all count rows with the scanner's router mix.  ``np.nonzero``
    walks the split matrix row-major, which reproduces the loop
    reference's append order (count row, then router ascending).
    """
    rng = scanner_flow_rng(base, index)
    day, port, proto, count = scanner.count_columns(
        view, window, day_seconds, rng
    )
    if len(day) == 0:
        return FlowColumns()
    splits = rng.multinomial(count, np.asarray(mix, dtype=np.float64))
    row_idx, router_idx = np.nonzero(splits > 0)
    return FlowColumns(
        router=router_idx.astype(np.int8),
        day=day[row_idx].astype(np.int32),
        src=np.full(len(row_idx), int(scanner.src), dtype=np.uint32),
        dport=port[row_idx].astype(np.uint16),
        proto=proto[row_idx].astype(np.uint8),
        true=splits[row_idx, router_idx].astype(np.int64),
    )


def synthesize_flow_columns(
    scanners: Sequence,
    mixes: np.ndarray,
    view,
    window: tuple,
    day_seconds: float,
    base: int,
    start_index: int = 0,
) -> FlowColumns:
    """Serial columnar synthesis over a population slice.

    ``start_index`` is the slice's offset in the full population — the
    per-scanner stream key — which is what lets a shard worker run this
    very function over its contiguous slice and produce exactly the rows
    the serial pass would have produced there.
    """
    blocks = [
        scanner_flow_block(
            scanner, start_index + i, mixes[i], view, window, day_seconds, base
        )
        for i, scanner in enumerate(scanners)
    ]
    return FlowColumns.concat(blocks)


# ----------------------------------------------------------------------
# Shard-state serialization — the checkpoint payload of the parallel
# flow path (repro.core.faults): a shard's synthesized columns survive
# a crash and are reloaded instead of re-synthesized on resume.
# ----------------------------------------------------------------------

#: Versioned header guarding flow-shard checkpoints; bump on
#: incompatible column-layout changes so stale checkpoints are
#: discarded (shard re-synthesized) rather than concatenated.
FLOW_STATE_MAGIC = b"repro-flow-state-v1\n"


def flow_state_to_bytes(columns: FlowColumns) -> bytes:
    """Serialize one shard's :class:`FlowColumns` (versioned header)."""
    import pickle

    return FLOW_STATE_MAGIC + pickle.dumps(columns, protocol=4)


def flow_state_from_bytes(data: bytes) -> FlowColumns:
    """Rebuild columns serialized by :func:`flow_state_to_bytes`.

    Raises ``ValueError`` on a missing or mismatched header.
    """
    import pickle

    if not data.startswith(FLOW_STATE_MAGIC):
        raise ValueError(
            "not a serialized flow-shard state (missing or mismatched "
            f"header; expected {FLOW_STATE_MAGIC!r})"
        )
    columns = pickle.loads(data[len(FLOW_STATE_MAGIC):])
    if not isinstance(columns, FlowColumns):
        raise ValueError(
            f"serialized state holds {type(columns).__name__}, "
            "not FlowColumns"
        )
    return columns


# ----------------------------------------------------------------------
# Loop reference — the pre-columnar construction, kept as the golden
# baseline: tests assert the vectorized path is bit-identical to it, and
# the flow benchmark measures speedup against it.
# ----------------------------------------------------------------------
def scanner_flow_rows_loop(
    scanner,
    index: int,
    mix: np.ndarray,
    view,
    window: tuple,
    day_seconds: float,
    base: int,
) -> list:
    """One scanner's flow rows via the scalar loop (reference path).

    Same derived stream as :func:`scanner_flow_block`, consumed draw by
    draw: per-row scalar Poisson counts via :meth:`Scanner.count_rows`,
    then one multinomial per count row.
    """
    rng = scanner_flow_rng(base, index)
    rows = []
    for day, port, proto, count in scanner.count_rows(
        view, window, day_seconds, rng
    ):
        split = rng.multinomial(count, mix)
        for router, router_count in enumerate(split):
            if router_count == 0:
                continue
            rows.append(
                (router, day, int(scanner.src), port, proto, int(router_count))
            )
    return rows


def collect_scanner_flows_loop(
    network,
    scanners: Sequence,
    window: tuple,
    clock,
    rng: np.random.Generator,
    exporter=None,
) -> tuple:
    """Loop-reference twin of :meth:`ISPNetwork.collect_scanner_flows`.

    Identical stream keying (one base seed off ``rng``, per-scanner
    derived streams, seed-derived sampling) but scalar construction
    throughout — per-flow tuples, per-row dict updates, one binomial per
    flow.  Returns the same ``(flow_table, true_totals)`` contract,
    bit-identical to the columnar path.
    """
    exporter = exporter or NetflowExporter()
    base = flow_base_seed(rng)
    scanners = list(scanners)
    sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
    countries = network._countries_of(sources)
    block_size = network.transit_view.size / network.dst_blocks
    block_sizes = [block_size] * network.dst_blocks
    rows = []
    true_totals: dict = {}
    for index, (scanner, country) in enumerate(zip(scanners, countries)):
        mix = network.policy.router_mix(int(scanner.src), country, block_sizes)
        for row in scanner_flow_rows_loop(
            scanner,
            index,
            mix,
            network.transit_view,
            window,
            clock.seconds_per_day,
            base,
        ):
            rows.append(row)
            key = (row[0], row[1])
            true_totals[key] = true_totals.get(key, 0) + row[5]
    sample_rng = np.random.default_rng((int(base), SAMPLE_STREAM_SALT))
    out_rows = []
    for router, day, src, dport, proto, true_count in rows:
        sampled = exporter.sample_count(true_count, sample_rng)
        if sampled == 0 and not exporter.keep_zero:
            continue
        out_rows.append(
            (
                router,
                day,
                src,
                dport,
                proto,
                sampled * exporter.sampling_rate,
                sampled,
            )
        )
    return FlowTable.from_rows(out_rows), true_totals
