"""Non-sampled packet-stream monitors (the Figure 1/2 instrumentation).

The paper validates the sampled-flow impact numbers against mirrored
packet streams: 72 hours of every packet at one major Merit core router
(>8 Mpps peaks) and at the campus border.  The monitoring station only
counts packets — total, and packets whose source is on the AH list —
which is exactly what :class:`StreamMonitor` produces, at one-second
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.flows.isp import ISPNetwork
from repro.scanners.base import Scanner
from repro.sim.clock import SimClock


@dataclass
class StreamSeries:
    """Per-second counters recorded by one monitoring station.

    Attributes:
        network: station label.
        start: timestamp of the first second.
        total_pps: total packets observed per second.
        ah_pps: packets from listed AH sources per second.
        slash24s: the network's announced /24 count (normalization).
    """

    network: str
    start: float
    total_pps: np.ndarray
    ah_pps: np.ndarray
    slash24s: int

    def __post_init__(self) -> None:
        if len(self.total_pps) != len(self.ah_pps):
            raise ValueError("series must share one length")

    def __len__(self) -> int:
        return len(self.total_pps)

    # ------------------------------------------------------------------
    def instantaneous_fraction(self) -> np.ndarray:
        """Per-second AH share of traffic (Figure 1, middle row)."""
        total = self.total_pps.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(total > 0, self.ah_pps / total, 0.0)
        return frac

    def cumulative_fraction(self) -> np.ndarray:
        """AH share counted from the start of the experiment
        (Figure 1, top row)."""
        total = np.cumsum(self.total_pps, dtype=np.float64)
        ah = np.cumsum(self.ah_pps, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(total > 0, ah / total, 0.0)
        return frac

    def normalized_ah_rate(self) -> np.ndarray:
        """AH pps per announced /24 (Figure 2)."""
        return self.ah_pps.astype(np.float64) / self.slash24s

    def high_load_mask(self, pps_threshold: float) -> np.ndarray:
        """Seconds where overall traffic exceeds a rate threshold
        (the red highlighting of Figure 1's bottom row)."""
        return self.total_pps >= pps_threshold

    def peak_total_pps(self) -> int:
        """Highest per-second total packet rate observed."""
        return int(self.total_pps.max()) if len(self) else 0

    def summary(self) -> dict:
        """Headline numbers for EXPERIMENTS.md."""
        inst = self.instantaneous_fraction()
        return {
            "network": self.network,
            "seconds": len(self),
            "total_packets": int(self.total_pps.sum()),
            "ah_packets": int(self.ah_pps.sum()),
            "overall_fraction": float(self.ah_pps.sum() / max(self.total_pps.sum(), 1)),
            "max_instantaneous_fraction": float(inst.max()) if len(self) else 0.0,
            "peak_total_pps": self.peak_total_pps(),
            "mean_ah_pps_per_slash24": float(self.normalized_ah_rate().mean()),
        }


@dataclass
class StreamMonitor:
    """Builds the per-second series for one station."""

    network: ISPNetwork
    clock: SimClock

    def record(
        self,
        ah_scanners: Sequence[Scanner],
        window: tuple,
        rng: np.random.Generator,
    ) -> StreamSeries:
        """Run the station over a window.

        Args:
            ah_scanners: scanners on the AH list whose packets the
                station attributes to "aggressive hitters".  Only the
                share entering at the monitored router is counted (the
                Merit station mirrors one core router).
            window: [start, end) in seconds; must be second-aligned.
            rng: random stream.

        Returns:
            The recorded :class:`StreamSeries`.
        """
        start, end = window
        seconds = int(round(end - start))
        if seconds <= 0:
            raise ValueError("window must span at least one second")

        ah_pps = np.zeros(seconds, dtype=np.int64)
        monitored = self.network.monitored_router
        ah_scanners = list(ah_scanners)
        if ah_scanners:
            sources = np.array(
                [int(s.src) for s in ah_scanners], dtype=np.uint32
            )
            # All router shares in one vectorized mix pass instead of a
            # per-scanner scalar hash chain.
            shares = self.network.router_mix_many(sources)[:, monitored]
        else:
            shares = np.empty(0, dtype=np.float64)
        for scanner, share in zip(ah_scanners, shares):
            scanner.accumulate_stream(
                ah_pps,
                self.network.transit_view,
                window,
                rng,
                rate_scale=float(share),
            )

        legit = self.network.traffic_models[monitored].per_second_counts(
            window, self.clock, rng
        )
        total = legit + ah_pps
        return StreamSeries(
            network=self.network.name,
            start=start,
            total_pps=total,
            ah_pps=ah_pps,
            slash24s=self.network.lit_slash24s,
        )
