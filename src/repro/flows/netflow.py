"""NetFlow records with packet sampling.

Merit's collectors export flows from 1:1000 packet-sampled ingress and
egress traffic at the core routers.  ``NetflowExporter`` applies that
sampling to the analytic per-day scanner counts, and ``FlowTable``
stores the resulting records in column form with the group-by helpers
the impact analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.config import FLOW_SAMPLING_RATE


@dataclass
class FlowTable:
    """Column-oriented scanner flow records.

    Columns (aligned arrays):
        router: ingress router index (int8).
        day: simulated day index (int32).
        src: source address (uint32).
        dport: destination port (uint16).
        proto: protocol code (uint8).
        packets: sampled packet count scaled *back up* by the sampling
            rate — the usual operational convention ("estimated
            packets") — so fractions computed against scaled totals are
            directly comparable.
        sampled: raw sampled packet count before scaling.
    """

    router: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int8)
    )
    day: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint32)
    )
    dport: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint16)
    )
    proto: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8)
    )
    packets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    sampled: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def __len__(self) -> int:
        return len(self.src)

    def select(self, mask: np.ndarray) -> "FlowTable":
        """Row subset."""
        return FlowTable(
            router=self.router[mask],
            day=self.day[mask],
            src=self.src[mask],
            dport=self.dport[mask],
            proto=self.proto[mask],
            packets=self.packets[mask],
            sampled=self.sampled[mask],
        )

    # ------------------------------------------------------------------
    def for_router_day(self, router: int, day: int) -> "FlowTable":
        """Rows of one (router, day) cell."""
        return self.select((self.router == router) & (self.day == day))

    def for_sources(self, sources: Iterable[int]) -> "FlowTable":
        """Rows whose source is in the given set."""
        wanted = np.asarray(sorted(int(a) for a in sources), dtype=np.uint32)
        if len(wanted) == 0:
            return self.select(np.zeros(len(self), dtype=bool))
        return self.select(np.isin(self.src, wanted))

    def total_packets(self) -> int:
        """Sum of estimated packets."""
        return int(self.packets.sum())

    def unique_sources(self) -> np.ndarray:
        """Sorted distinct sources."""
        return np.unique(self.src)

    def packets_by_port(self) -> Dict[tuple, int]:
        """(port, proto) -> estimated packets."""
        out: Dict[tuple, int] = {}
        for port, proto, pkts in zip(self.dport, self.proto, self.packets):
            key = (int(port), int(proto))
            out[key] = out.get(key, 0) + int(pkts)
        return out

    def packets_by_proto(self) -> Dict[int, int]:
        """proto -> estimated packets."""
        out: Dict[int, int] = {}
        for proto in np.unique(self.proto):
            mask = self.proto == proto
            out[int(proto)] = int(self.packets[mask].sum())
        return out

    @classmethod
    def from_rows(cls, rows: list) -> "FlowTable":
        """Build from ``(router, day, src, dport, proto, pkts, sampled)``."""
        if not rows:
            return cls()
        arr = np.array(rows, dtype=np.int64)
        return cls(
            router=arr[:, 0].astype(np.int8),
            day=arr[:, 1].astype(np.int32),
            src=arr[:, 2].astype(np.uint32),
            dport=arr[:, 3].astype(np.uint16),
            proto=arr[:, 4].astype(np.uint8),
            packets=arr[:, 5].astype(np.int64),
            sampled=arr[:, 6].astype(np.int64),
        )


@dataclass
class NetflowExporter:
    """Applies packet sampling to true per-flow counts.

    Attributes:
        sampling_rate: 1-in-N packet sampling (paper: 1000).
        keep_zero: keep flows whose sample came up empty (never done by
            real collectors; available for bias experiments).
    """

    sampling_rate: int = FLOW_SAMPLING_RATE
    keep_zero: bool = False

    def __post_init__(self) -> None:
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")

    def sample_count(self, true_count: int, rng: np.random.Generator) -> int:
        """Sampled packet count for one flow."""
        if true_count < 0:
            raise ValueError("true_count must be non-negative")
        if self.sampling_rate == 1:
            return int(true_count)
        return int(rng.binomial(true_count, 1.0 / self.sampling_rate))

    def export(
        self,
        rows: list,
        rng: np.random.Generator,
    ) -> FlowTable:
        """Export sampled flow records.

        Args:
            rows: ``(router, day, src, dport, proto, true_count)`` rows.
            rng: random stream for sampling draws.

        Returns:
            A :class:`FlowTable`; flows that sampled to zero packets are
            dropped unless ``keep_zero`` is set.
        """
        out = []
        for router, day, src, dport, proto, true_count in rows:
            sampled = self.sample_count(int(true_count), rng)
            if sampled == 0 and not self.keep_zero:
                continue
            estimated = sampled * self.sampling_rate
            out.append((router, day, src, dport, proto, estimated, sampled))
        return FlowTable.from_rows(out)

    def sample_total(self, true_total: int, rng: np.random.Generator) -> int:
        """Scaled-up estimate of a router-day total packet counter."""
        sampled = self.sample_count(int(true_total), rng)
        return sampled * self.sampling_rate
