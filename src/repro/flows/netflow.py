"""NetFlow records with packet sampling.

Merit's collectors export flows from 1:1000 packet-sampled ingress and
egress traffic at the core routers.  ``NetflowExporter`` applies that
sampling to the analytic per-day scanner counts, and ``FlowTable``
stores the resulting records in column form with the group-by helpers
the impact analyses need.

Flow synthesis is columnar end to end: the ISP model produces
:class:`FlowColumns` (true per-flow packet counts as aligned arrays,
see :mod:`repro.flows.synthesis`), and the exporter applies one
vectorized binomial draw over the whole true-count column instead of a
per-flow Python loop.  The sampling stream is derived from an integer
seed (never from a shared, order-sensitive generator), so export — and
the router-total estimates — are deterministic regardless of call
order or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.config import FLOW_SAMPLING_RATE

#: Salt for the exporter's per-run sampling stream (derived from the
#: flow base seed; independent of the synthesis streams).
SAMPLE_STREAM_SALT = 0x53414D50  # "SAMP"
#: Salt for router-day total estimates (:meth:`NetflowExporter.sample_total`).
TOTALS_STREAM_SALT = 0x544F5441  # "TOTA"


@dataclass
class FlowColumns:
    """True (unsampled) per-flow packet counts in column form.

    The struct-of-arrays intermediate between flow synthesis and NetFlow
    export: one row per (router, day, src, dport, proto) flow with its
    true packet count.  Rows are kept in the canonical synthesis order —
    scanner (population order), then count-row order, then router index
    — which is what makes shard-parallel synthesis bit-identical to
    serial: shards are contiguous scanner slices, so concatenating the
    per-shard columns in shard order reproduces the serial layout.
    """

    router: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int8)
    )
    day: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint32)
    )
    dport: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint16)
    )
    proto: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8)
    )
    #: true per-flow packet counts (pre-sampling).
    true: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def __len__(self) -> int:
        return len(self.src)

    def select(self, mask: np.ndarray) -> "FlowColumns":
        """Row subset (order-preserving)."""
        return FlowColumns(
            router=self.router[mask],
            day=self.day[mask],
            src=self.src[mask],
            dport=self.dport[mask],
            proto=self.proto[mask],
            true=self.true[mask],
        )

    @classmethod
    def concat(cls, blocks: list) -> "FlowColumns":
        """Concatenate blocks in order (the shard-merge primitive)."""
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return cls()
        return cls(
            router=np.concatenate([b.router for b in blocks]),
            day=np.concatenate([b.day for b in blocks]),
            src=np.concatenate([b.src for b in blocks]),
            dport=np.concatenate([b.dport for b in blocks]),
            proto=np.concatenate([b.proto for b in blocks]),
            true=np.concatenate([b.true for b in blocks]),
        )

    @classmethod
    def from_rows(cls, rows: list) -> "FlowColumns":
        """Build from ``(router, day, src, dport, proto, true)`` tuples."""
        if not rows:
            return cls()
        arr = np.array(rows, dtype=np.int64)
        return cls(
            router=arr[:, 0].astype(np.int8),
            day=arr[:, 1].astype(np.int32),
            src=arr[:, 2].astype(np.uint32),
            dport=arr[:, 3].astype(np.uint16),
            proto=arr[:, 4].astype(np.uint8),
            true=arr[:, 5].astype(np.int64),
        )

    def true_totals(self) -> Dict[tuple, int]:
        """(router, day) -> summed true packet counts.

        The scanners' contribution to the router-day denominators,
        aggregated with one ``np.add.at`` pass instead of a per-row
        dict update.
        """
        if not len(self):
            return {}
        key = (self.router.astype(np.int64) << np.int64(32)) | self.day.astype(
            np.int64
        )
        uniq, inverse = np.unique(key, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, self.true)
        return {
            (int(k) >> 32, int(k) & 0xFFFFFFFF): int(v)
            for k, v in zip(uniq, sums)
        }


@dataclass
class FlowTable:
    """Column-oriented scanner flow records.

    Columns (aligned arrays):
        router: ingress router index (int8).
        day: simulated day index (int32).
        src: source address (uint32).
        dport: destination port (uint16).
        proto: protocol code (uint8).
        packets: sampled packet count scaled *back up* by the sampling
            rate — the usual operational convention ("estimated
            packets") — so fractions computed against scaled totals are
            directly comparable.
        sampled: raw sampled packet count before scaling.
    """

    router: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int8)
    )
    day: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint32)
    )
    dport: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint16)
    )
    proto: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8)
    )
    packets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    sampled: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def __len__(self) -> int:
        return len(self.src)

    def select(self, mask: np.ndarray) -> "FlowTable":
        """Row subset."""
        return FlowTable(
            router=self.router[mask],
            day=self.day[mask],
            src=self.src[mask],
            dport=self.dport[mask],
            proto=self.proto[mask],
            packets=self.packets[mask],
            sampled=self.sampled[mask],
        )

    # ------------------------------------------------------------------
    def for_router_day(self, router: int, day: int) -> "FlowTable":
        """Rows of one (router, day) cell."""
        return self.select((self.router == router) & (self.day == day))

    def for_sources(self, sources: Iterable[int]) -> "FlowTable":
        """Rows whose source is in the given set."""
        wanted = np.asarray(sorted(int(a) for a in sources), dtype=np.uint32)
        if len(wanted) == 0:
            return self.select(np.zeros(len(self), dtype=bool))
        return self.select(np.isin(self.src, wanted))

    def total_packets(self) -> int:
        """Sum of estimated packets."""
        return int(self.packets.sum())

    def unique_sources(self) -> np.ndarray:
        """Sorted distinct sources."""
        return np.unique(self.src)

    def packets_by_port(self) -> Dict[tuple, int]:
        """(port, proto) -> estimated packets (one grouped pass)."""
        if not len(self):
            return {}
        key = (self.dport.astype(np.int64) << np.int64(8)) | self.proto.astype(
            np.int64
        )
        uniq, inverse = np.unique(key, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, self.packets)
        return {
            (int(k) >> 8, int(k) & 0xFF): int(v) for k, v in zip(uniq, sums)
        }

    def packets_by_proto(self) -> Dict[int, int]:
        """proto -> estimated packets (one grouped pass)."""
        if not len(self):
            return {}
        uniq, inverse = np.unique(self.proto, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, self.packets)
        return {int(p): int(v) for p, v in zip(uniq, sums)}

    @classmethod
    def from_rows(cls, rows: list) -> "FlowTable":
        """Build from ``(router, day, src, dport, proto, pkts, sampled)``."""
        if not rows:
            return cls()
        arr = np.array(rows, dtype=np.int64)
        return cls(
            router=arr[:, 0].astype(np.int8),
            day=arr[:, 1].astype(np.int32),
            src=arr[:, 2].astype(np.uint32),
            dport=arr[:, 3].astype(np.uint16),
            proto=arr[:, 4].astype(np.uint8),
            packets=arr[:, 5].astype(np.int64),
            sampled=arr[:, 6].astype(np.int64),
        )


@dataclass
class NetflowExporter:
    """Applies packet sampling to true per-flow counts.

    Attributes:
        sampling_rate: 1-in-N packet sampling (paper: 1000).
        keep_zero: keep flows whose sample came up empty (never done by
            real collectors; available for bias experiments).
    """

    sampling_rate: int = FLOW_SAMPLING_RATE
    keep_zero: bool = False

    def __post_init__(self) -> None:
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")

    def sample_count(self, true_count: int, rng: np.random.Generator) -> int:
        """Sampled packet count for one flow."""
        if true_count < 0:
            raise ValueError("true_count must be non-negative")
        if self.sampling_rate == 1:
            return int(true_count)
        return int(rng.binomial(true_count, 1.0 / self.sampling_rate))

    def _sample_columns(
        self, columns: FlowColumns, rng: np.random.Generator
    ) -> FlowTable:
        """One vectorized binomial over the true-count column.

        Draws for every row (even those later dropped), in row order —
        exactly the bit stream a scalar :meth:`sample_count` loop over
        the same rows would consume, so the columnar export is
        bit-identical to the per-flow reference.
        """
        if np.any(columns.true < 0):
            raise ValueError("true counts must be non-negative")
        if self.sampling_rate == 1:
            sampled = columns.true.astype(np.int64)
        else:
            sampled = rng.binomial(
                columns.true, 1.0 / self.sampling_rate
            ).astype(np.int64)
        if not self.keep_zero:
            keep = sampled > 0
            columns = columns.select(keep)
            sampled = sampled[keep]
        return FlowTable(
            router=columns.router,
            day=columns.day,
            src=columns.src,
            dport=columns.dport,
            proto=columns.proto,
            packets=sampled * self.sampling_rate,
            sampled=sampled,
        )

    def export_columns(self, columns: FlowColumns, seed: int) -> FlowTable:
        """Export sampled flow records from a true-count column block.

        Args:
            columns: synthesized true flow counts (canonical order).
            seed: flow base seed; the sampling stream is derived as
                ``(seed, SAMPLE_STREAM_SALT)``, so export does not
                depend on any shared generator's call order.

        Returns:
            A :class:`FlowTable`; flows that sampled to zero packets are
            dropped unless ``keep_zero`` is set.
        """
        rng = np.random.default_rng((int(seed), SAMPLE_STREAM_SALT))
        return self._sample_columns(columns, rng)

    def export(
        self,
        rows: list,
        rng: np.random.Generator,
    ) -> FlowTable:
        """Export sampled flow records from row tuples (legacy surface).

        Args:
            rows: ``(router, day, src, dport, proto, true_count)`` rows.
            rng: random stream for sampling draws.

        Returns:
            A :class:`FlowTable`; flows that sampled to zero packets are
            dropped unless ``keep_zero`` is set.  The draw order matches
            the historical per-flow loop (one binomial per row, in row
            order), so seeded callers see identical tables.
        """
        return self._sample_columns(FlowColumns.from_rows(rows), rng)

    def sample_total(self, true_total: int, seed: int, key: int = 0) -> int:
        """Scaled-up estimate of a router-day total packet counter.

        The draw comes from a stream derived as
        ``(seed, TOTALS_STREAM_SALT, key)`` — *not* from a shared
        generator — so estimating totals before, after, or interleaved
        with :meth:`export` calls always yields the same values.  Use a
        distinct ``key`` per counter (e.g. ``router * n_days + day``).
        """
        rng = np.random.default_rng(
            (int(seed), TOTALS_STREAM_SALT, int(key))
        )
        sampled = self.sample_count(int(true_total), rng)
        return sampled * self.sampling_rate
