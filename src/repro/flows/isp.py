"""Monitored-network models: the Merit-like ISP and the campus network.

An :class:`ISPNetwork` ties together a transit view (the address space
whose traffic crosses the monitored border routers — the ISP's lit
space plus, for the telescope operator, the dark space), the routing
policy that assigns each external source to an ingress router, and a
legitimate-traffic model per router.

It produces the two ISP datasets of the paper: sampled NetFlow
(``collect_scanner_flows``) and router-day total-packet counters
(``router_day_totals``), which together feed the Table 2/4/8 impact
analyses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.telemetry import PipelineTelemetry
from repro.flows.netflow import NetflowExporter
from repro.flows.router import RoutingPolicy
from repro.flows.synthesis import flow_base_seed, synthesize_flow_columns
from repro.net.asn import ASType, AutonomousSystem
from repro.net.internet import Internet, with_systems
from repro.net.prefix import Prefix, PrefixSet
from repro.scanners.base import Scanner, View
from repro.sim.clock import SimClock
from repro.traffic.cache import ContentCacheModel
from repro.traffic.legit import DiurnalTrafficModel


@dataclass
class ISPNetwork:
    """One monitored network with border routers and NetFlow export.

    Attributes:
        name: network label ("merit", "campus").
        transit_view: address space whose traffic transits the border.
        lit_slash24s: number of announced /24s, used by the Figure 2
            per-/24 normalization (includes dark space for the ISP,
            mirroring how the paper counts the operator's /24s).
        policy: source-to-router assignment.
        traffic_models: per-router legitimate traffic models.
        internet: address plan for source-country lookups.
        monitored_router: index of the router whose mirror feeds the
            packet-stream station (Merit's station covers one major
            core router; the campus station covers its only border).
    """

    name: str
    transit_view: View
    lit_slash24s: int
    policy: RoutingPolicy
    traffic_models: Sequence[DiurnalTrafficModel]
    internet: Internet
    monitored_router: int = 0
    #: number of destination blocks the ISP's space is split into for
    #: ingress selection (BGP picks the entry point per prefix, so one
    #: source's traffic fans out across routers).
    dst_blocks: int = 8

    def __post_init__(self) -> None:
        if len(self.traffic_models) != len(self.policy.routers):
            raise ValueError("need one traffic model per router")
        if not 0 <= self.monitored_router < len(self.policy.routers):
            raise ValueError("monitored_router out of range")

    @property
    def router_count(self) -> int:
        """Number of monitored border routers."""
        return len(self.policy.routers)

    def router_names(self) -> list:
        """Router display names, ordered by index."""
        return [r.name for r in self.policy.routers]

    # ------------------------------------------------------------------
    def assign_router(self, src: int) -> int:
        """Primary ingress router of one external source (block 0)."""
        country = self._country_of(src)
        return self.policy.router_of(src, country)

    def router_mix(self, src: int) -> np.ndarray:
        """Per-router share of this source's traffic to the ISP."""
        country = self._country_of(src)
        block_size = self.transit_view.size / self.dst_blocks
        return self.policy.router_mix(
            src, country, [block_size] * self.dst_blocks
        )

    def router_share(self, src: int, router: int) -> float:
        """Share of the source's ISP-bound traffic entering ``router``."""
        return float(self.router_mix(src)[router])

    def router_mix_many(
        self,
        sources: np.ndarray,
        countries: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Per-router traffic shares for many sources at once.

        Row ``i`` equals ``router_mix(sources[i])``; countries are
        looked up in bulk unless the caller already has them.
        """
        sources = np.asarray(sources, dtype=np.uint32)
        if countries is None:
            countries = self._countries_of(sources)
        block_size = self.transit_view.size / self.dst_blocks
        return self.policy.router_mix_matrix(
            sources, countries, [block_size] * self.dst_blocks
        )

    def _country_of(self, src: int) -> str:
        system = self.internet.registry.lookup_one(int(src))
        return system.country if system is not None else "??"

    def _countries_of(self, sources: np.ndarray) -> list:
        return self.internet.registry.countries(sources)

    # ------------------------------------------------------------------
    def collect_scanner_flows(
        self,
        scanners: Sequence[Scanner],
        window: tuple,
        clock: SimClock,
        rng: np.random.Generator,
        exporter: Optional[NetflowExporter] = None,
        *,
        workers: Optional[int] = None,
        schedule: str = "static",
        telemetry: Optional[PipelineTelemetry] = None,
        retry=None,
        checkpoint_dir=None,
    ) -> tuple:
        """Simulate the scanners' transit traffic and export NetFlow.

        Columnar throughout: router mixes for the whole population come
        from one vectorized pass, each scanner's count rows and router
        splits are batched draws from its own derived stream
        (:mod:`repro.flows.synthesis`), per-cell true totals are one
        grouped aggregation, and the exporter applies a single binomial
        over the true-count column.  ``rng`` is consumed exactly once —
        for the flow base seed — so the result is bit-identical for any
        worker count and for the scalar loop reference.

        Args:
            scanners: sources to materialize at the routers (typically
                the detected AH plus acknowledged scanners; the rest of
                the Internet's scanning is folded into the traffic
                models' floor).
            window: [start, end) collection period.
            clock: day calendar.
            rng: random stream (one draw: the flow base seed).
            exporter: NetFlow sampling config (default 1:1000).
            workers: shard synthesis across this many worker processes
                (contiguous population slices, merged in order); ``None``
                or 1 synthesizes serially.  Results are identical.
            schedule: how the parallel path cuts the population —
                ``static`` (even counts), ``packed`` (size-aware
                balanced slices) or ``stealing`` (over-decomposed
                stealable sub-tasks); see
                :func:`repro.parallel.parallel_flow_columns`.  Results
                are identical in every mode.
            telemetry: optional gauge sink; a "flows" stage plus
                per-worker synthesis throughput is recorded.
            retry: per-shard :class:`~repro.core.faults.RetryPolicy`
                for the parallel path.
            checkpoint_dir: persist finished flow-shard states here so
                an interrupted collection resumes without re-synthesis
                (forces the sharded code path even for 1 worker).

        Returns:
            ``(flow_table, true_totals)`` where ``true_totals`` maps
            ``(router, day)`` to the scanners' true (unsampled) packet
            counts — the piece of the router totals the scanners are
            responsible for.
        """
        exporter = exporter or NetflowExporter()
        t0 = time.perf_counter()
        base = flow_base_seed(rng)
        scanners = list(scanners)
        sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
        countries = self._countries_of(sources)
        mixes = self.router_mix_many(sources, countries)
        day_seconds = clock.seconds_per_day
        if (workers is not None and workers > 1) or checkpoint_dir is not None:
            from repro.parallel import parallel_flow_columns

            columns = parallel_flow_columns(
                scanners,
                mixes,
                self.transit_view,
                window,
                day_seconds,
                base,
                workers=workers if workers is not None else 1,
                schedule=schedule,
                telemetry=telemetry,
                retry=retry,
                checkpoint_dir=checkpoint_dir,
            )
        else:
            columns = synthesize_flow_columns(
                scanners, mixes, self.transit_view, window, day_seconds, base
            )
        true_totals = columns.true_totals()
        table = exporter.export_columns(columns, base)
        if telemetry is not None:
            telemetry.stage("flows").add(
                len(scanners), len(table), time.perf_counter() - t0
            )
        return table, true_totals

    def router_day_totals(
        self,
        days: Sequence[int],
        scanner_true_totals: Dict[tuple, int],
        clock: SimClock,
        rng: np.random.Generator,
    ) -> Dict[tuple, int]:
        """Total packets each router processed on each day.

        The denominator of every impact percentage: legitimate traffic
        from the per-router models plus the scanners' true counts.
        """
        totals: Dict[tuple, int] = {}
        for day in days:
            for router in range(self.router_count):
                legit = self.traffic_models[router].daily_total(day, clock, rng)
                scan = scanner_true_totals.get((router, day), 0)
                totals[(router, day)] = legit + scan
        return totals


def build_merit_like(
    internet: Internet,
    dark_prefix: Prefix,
    *,
    lit_prefix_length: int = 17,
    asn: int = 237,
    cache_fraction: float = 0.45,
    router_border_pps: Sequence[float] = (520.0, 860.0, 840.0),
    monitored_router: int = 0,
) -> tuple:
    """Carve the telescope operator's ISP out of the address plan.

    Args:
        internet: the synthetic Internet (its allocator is advanced).
        dark_prefix: the telescope prefix, which lives inside this ISP
            and whose traffic transits the same border routers.
        lit_prefix_length: size of the ISP's lit (user) address block.
        asn: the ISP's AS number.
        cache_fraction: share of user demand served by in-net caches
            (content caching shrinks the border denominator — §4).
        router_border_pps: target mean *border* pps per router; the
            model's demand base is back-computed through the cache.
        monitored_router: router whose mirror feeds the stream station.

    Returns:
        ``(network, internet)`` with the ISP registered in the plan.
    """
    lit = internet.allocator.allocate(lit_prefix_length)
    system = AutonomousSystem(
        asn=asn,
        org="telescope-operator-isp",
        country="US",
        as_type=ASType.EDU,
        prefixes=(lit, dark_prefix),
    )
    internet = with_systems(internet, [system])
    policy = RoutingPolicy.default_three_router()
    cache = ContentCacheModel(cache_fraction)
    models = tuple(
        DiurnalTrafficModel(
            base_pps=border / cache.border_factor(),
            cache=cache,
            floor_pps=15.0,
        )
        for border in router_border_pps
    )
    view = View(name="merit-transit", prefixes=PrefixSet([lit, dark_prefix]))
    network = ISPNetwork(
        name="merit",
        transit_view=view,
        lit_slash24s=PrefixSet([lit, dark_prefix]).slash24s(),
        policy=policy,
        traffic_models=models,
        internet=internet,
        monitored_router=monitored_router,
    )
    return network, internet


def build_campus_like(
    internet: Internet,
    *,
    prefix_length: int = 19,
    asn: int = 104,
    border_pps: float = 3_600.0,
) -> tuple:
    """Carve the campus network (CU-like) out of the address plan.

    The campus has a single monitored border, no in-network content
    caches (all user demand crosses the border), and a much smaller
    address footprint — the combination behind the paper's Figure 1/2
    contrast with the ISP.
    """
    lit = internet.allocator.allocate(prefix_length)
    system = AutonomousSystem(
        asn=asn,
        org="campus-university",
        country="US",
        as_type=ASType.EDU,
        prefixes=(lit,),
    )
    internet = with_systems(internet, [system])
    policy = RoutingPolicy.single_router("Campus-Border")
    models = (
        DiurnalTrafficModel(
            base_pps=border_pps,
            cache=ContentCacheModel(0.0),
            floor_pps=3.0,
            # Campus populations have sharper day/night and weekend
            # swings than a statewide ISP.
            diurnal_amplitude=0.45,
            weekend_factor=0.55,
        ),
    )
    view = View(name="campus-transit", prefixes=PrefixSet([lit]))
    network = ISPNetwork(
        name="campus",
        transit_view=view,
        lit_slash24s=PrefixSet([lit]).slash24s(),
        policy=policy,
        traffic_models=models,
        internet=internet,
        monitored_router=0,
    )
    return network, internet
