"""Chunked capture sources for the streaming pipeline.

A real telescope does not hand the analysis a year of packets at once —
capture arrives as hourly pcaps (ORION rotates files on the hour) or as
bounded batches off a queue.  ``ChunkedCaptureSource`` models that
boundary: it yields :class:`CaptureChunk` windows in time order, either
by slicing an in-memory capture (simulation runs) or by loading one
archive at a time from a chunk directory written by
:func:`repro.io.packetlog.save_packets_chunked` (replay runs, bounded
memory end to end).

Downstream, each chunk feeds
:class:`repro.core.streaming.StreamingDetector` — the source is the
first stage of the streaming pipeline and the only one that ever sees
raw packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

from repro.packet import PacketBatch


@dataclass(frozen=True)
class CaptureChunk:
    """One time window of captured packets."""

    index: int
    #: half-open window [start, end) in capture time.
    start: float
    end: float
    packets: PacketBatch

    def __len__(self) -> int:
        return len(self.packets)


class ChunkedCaptureSource:
    """Yields a capture as time-ordered :class:`CaptureChunk` windows.

    Construct with :meth:`from_capture` (slice an in-memory capture
    into epoch-aligned windows) or :meth:`from_directory` (stream
    archives written by ``save_packets_chunked`` one file at a time).
    Iterating yields only non-empty chunks; quiet windows are skipped
    but window edges stay calendar-aligned.
    """

    def __init__(self, chunks: Iterator[CaptureChunk], chunk_seconds: float):
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        self._chunks = chunks
        self._consumed = False
        self.chunk_seconds = float(chunk_seconds)

    def __iter__(self) -> Iterator[CaptureChunk]:
        """Start the single pass over the chunks.

        Sources are generator-backed and strictly single-pass: a second
        iteration would silently yield nothing, so it raises instead.
        Construct a fresh source to replay a capture.
        """
        if self._consumed:
            raise RuntimeError(
                "ChunkedCaptureSource is single-pass and has already been "
                "iterated; construct a new source to read the capture again"
            )
        self._consumed = True
        return self._chunks

    # ------------------------------------------------------------------
    @classmethod
    def from_capture(
        cls, capture, chunk_seconds: float
    ) -> "ChunkedCaptureSource":
        """Chunk an in-memory capture (or bare :class:`PacketBatch`).

        Windows are epoch-aligned (``floor(first_ts / chunk_seconds)``
        starts the grid), matching how hourly pcap rotation would cut
        the same traffic.
        """
        batch = getattr(capture, "packets", capture)

        def generate() -> Iterator[CaptureChunk]:
            index = 0
            for start, end, chunk in batch.iter_time_chunks(
                chunk_seconds, align_to_epoch=True
            ):
                if len(chunk) == 0:
                    continue
                yield CaptureChunk(
                    index=index, start=start, end=end, packets=chunk
                )
                index += 1

        return cls(generate(), chunk_seconds)

    @classmethod
    def from_directory(
        cls, directory: Union[str, Path], chunk_seconds: float
    ) -> "ChunkedCaptureSource":
        """Stream a chunk directory written by ``save_packets_chunked``.

        Loads one archive at a time; window edges are derived from each
        chunk's own timestamps on the epoch-aligned grid.  The directory
        is validated up front — a missing directory, an empty one, or a
        gap in the ``chunk-*.npz`` sequence raise immediately with a
        clear message instead of surfacing mid-stream.
        """
        from repro.io.packetlog import chunk_paths, load_packets_npz

        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        paths = chunk_paths(directory)

        def generate() -> Iterator[CaptureChunk]:
            for index, path in enumerate(paths):
                batch = load_packets_npz(path)
                first = float(batch.ts.min())
                start = math.floor(first / chunk_seconds) * chunk_seconds
                yield CaptureChunk(
                    index=index,
                    start=start,
                    end=start + chunk_seconds,
                    packets=batch,
                )

        return cls(generate(), chunk_seconds)


class LazyCaptureSource(ChunkedCaptureSource):
    """A chunked source that *generates* its capture window by window.

    Instead of slicing a materialized capture, each chunk is emitted on
    demand by :class:`repro.scanners.lazy.PopulationEmitter`: only the
    scanners with sessions overlapping the window do any work, and the
    sequence of chunks is bit-identical to
    ``from_capture(telescope.capture(scanners, window), chunk_seconds)``
    — same windows, same indices, same packets — without ever holding
    more than ~one window (plus open generation spans) in memory.
    """

    @classmethod
    def from_population(
        cls,
        scanners,
        view,
        chunk_seconds: float,
        window=None,
    ) -> "LazyCaptureSource":
        """Lazily chunk the capture ``scanners`` send into ``view``.

        Args:
            scanners: population in emission order (the order is part of
                the equal-timestamp tie-breaking contract).
            view: monitored address region.
            chunk_seconds: window length, epoch-aligned.
            window: optional overall [start, end) clip (the scenario
                window in simulation runs).
        """
        from repro.scanners.lazy import PopulationEmitter

        emitter = PopulationEmitter(
            scanners, view, chunk_seconds, window=window
        )

        def generate() -> Iterator[CaptureChunk]:
            index = 0
            for start, end, batch in emitter:
                if len(batch) == 0:
                    continue
                yield CaptureChunk(
                    index=index, start=start, end=end, packets=batch
                )
                index += 1

        source = cls(generate(), chunk_seconds)
        source._emitter = emitter
        return source

    @property
    def spans_derived(self) -> int:
        """RNG span streams the emitter has keyed so far (pre-dedup).

        Telemetry for the batched span derivation: read after the
        source is drained for the shard total.  Always >=
        :attr:`spans_emitted`.
        """
        return self._emitter.spans_derived

    @property
    def spans_emitted(self) -> int:
        """Derived spans that actually produced packets."""
        return self._emitter.spans_emitted
