"""Network-telescope substrate: the darknet and its packet capture."""

from repro.telescope.capture import DarknetCapture
from repro.telescope.chunks import CaptureChunk, ChunkedCaptureSource
from repro.telescope.darknet import Telescope

__all__ = [
    "CaptureChunk",
    "ChunkedCaptureSource",
    "DarknetCapture",
    "Telescope",
]
