"""Captured darknet traffic and its summary statistics.

The capture is the raw material every analysis starts from: the event
builder consumes it to form logical scans, and the characterization
modules compute port rankings and fingerprints straight from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.packet import PacketBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telescope.darknet import Telescope


@dataclass
class DarknetCapture:
    """Time-sorted packets recorded by a telescope."""

    packets: PacketBatch
    telescope: "Telescope"

    def __post_init__(self) -> None:
        if len(self.packets) > 1 and not bool(
            np.all(np.diff(self.packets.ts) >= 0)
        ):
            self.packets = self.packets.sorted_by_time()

    def __len__(self) -> int:
        return len(self.packets)

    # ------------------------------------------------------------------
    def day_slice(self, day: int, day_seconds: float) -> PacketBatch:
        """Packets of one simulated day (binary search on sorted ts)."""
        lo = float(day * day_seconds)
        hi = float((day + 1) * day_seconds)
        i0 = int(np.searchsorted(self.packets.ts, lo, side="left"))
        i1 = int(np.searchsorted(self.packets.ts, hi, side="left"))
        return self.packets.select(slice(i0, i1))

    def source_count(self) -> int:
        """Number of distinct source IPs observed."""
        return len(self.packets.unique_sources())

    def destination_count(self) -> int:
        """Number of distinct dark IPs contacted."""
        return len(self.packets.unique_destinations())

    def packets_from(self, sources) -> int:
        """Total packets originating from the given source set."""
        if len(self.packets) == 0:
            return 0
        wanted = np.asarray(sorted(int(a) for a in sources), dtype=np.uint32)
        if len(wanted) == 0:
            return 0
        mask = np.isin(self.packets.src, wanted)
        return int(np.count_nonzero(mask))

    def select_sources(self, sources) -> PacketBatch:
        """Packets originating from the given source set."""
        wanted = np.asarray(sorted(int(a) for a in sources), dtype=np.uint32)
        if len(wanted) == 0 or len(self.packets) == 0:
            return PacketBatch.empty()
        mask = np.isin(self.packets.src, wanted)
        return self.packets.select(mask)

    def summary(self) -> dict:
        """Table-1-style dataset description."""
        return {
            "packets": len(self.packets),
            "source_ips": self.source_count(),
            "dest_ips": self.destination_count(),
            "dark_size": self.telescope.size,
        }
