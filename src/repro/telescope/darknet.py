"""The network telescope (darknet) itself.

The ORION telescope announces ~500k contiguous unused addresses and
records every packet that arrives.  Here the telescope is a monitored
:class:`~repro.scanners.base.View` over a dark prefix carved from the
synthetic address plan, plus the capture step that collects scanner
emissions into a :class:`~repro.telescope.capture.DarknetCapture`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import event_timeout_seconds
from repro.net.prefix import Prefix, PrefixSet
from repro.scanners.base import Scanner, View, emit_population
from repro.telescope.capture import DarknetCapture


@dataclass(frozen=True)
class Telescope:
    """A darknet: one or more dark prefixes under observation."""

    prefixes: PrefixSet
    name: str = "darknet"

    @classmethod
    def from_prefix(cls, prefix: Prefix, name: str = "darknet") -> "Telescope":
        """Telescope over a single dark prefix."""
        return cls(prefixes=PrefixSet([prefix]), name=name)

    @property
    def size(self) -> int:
        """Number of dark addresses."""
        return self.prefixes.size

    def view(self) -> View:
        """The telescope as an emission view."""
        return View(name=self.name, prefixes=self.prefixes)

    def default_timeout(self) -> float:
        """The event timeout derived from this telescope's aperture."""
        return event_timeout_seconds(self.size)

    def capture(
        self,
        scanners: Sequence[Scanner],
        window: Optional[tuple] = None,
    ) -> DarknetCapture:
        """Record all packets the population sends into the dark space.

        Args:
            scanners: the scanner population.
            window: optional [start, end) time restriction.

        Returns:
            A time-sorted :class:`DarknetCapture`.
        """
        packets = emit_population(scanners, self.view(), window)
        return DarknetCapture(packets=packets, telescope=self)

    def stream(
        self,
        scanners: Sequence[Scanner],
        chunk_seconds: float,
        window: Optional[tuple] = None,
    ) -> "LazyCaptureSource":
        """Capture the population as a lazy stream of chunks.

        The streaming twin of :meth:`capture`: yields the same packets
        as ``ChunkedCaptureSource.from_capture(self.capture(...))`` —
        bit-identical chunks — but generates each window on demand, so
        peak memory is bounded by one window plus open generation spans
        instead of the whole capture.

        Args:
            scanners: the scanner population.
            chunk_seconds: chunk window length (epoch-aligned).
            window: optional [start, end) time restriction.

        Returns:
            A single-pass :class:`LazyCaptureSource`.
        """
        from repro.telescope.chunks import LazyCaptureSource

        return LazyCaptureSource.from_population(
            scanners, self.view(), chunk_seconds, window=window
        )
