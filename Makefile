# Single source of truth for the commands CI runs — `make lint` locally
# is exactly the lint job, `make bench-smoke` exactly the bench job.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench bench-smoke fault-matrix serve-smoke

lint:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

# Full benchmark harness: timing rounds + regenerated tables/figures.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# One pass through every benchmark without timing rounds — catches
# import/logic rot cheaply; artifacts still land in benchmarks/results/.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

# Fault-tolerance matrix: drive retry / pool-respawn / resume /
# quarantine against injected faults at WORKERS shards, assert results
# stay bit-identical, and export the RunHealth telemetry JSON to
# benchmarks/results/BENCH_fault_health_$(WORKERS).json.
WORKERS ?= 2
fault-matrix:
	$(PYTHON) -m pytest tests/test_faults.py -q
	$(PYTHON) benchmarks/run_fault_matrix.py --workers $(WORKERS)

# Ingestion-service smoke: boot `repro.cli serve` as a subprocess,
# drive a two-tenant scenario through the load generator, assert AH
# parity with offline run_scenario, then SIGKILL and restore from the
# snapshot directory (benchmarks/run_serve_smoke.py).
serve-smoke:
	$(PYTHON) -m pytest tests/test_serve.py tests/test_tenants.py tests/test_engine.py -q
	$(PYTHON) benchmarks/run_serve_smoke.py
