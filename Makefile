# Single source of truth for the commands CI runs — `make lint` locally
# is exactly the lint job, `make bench-smoke` exactly the bench job.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench bench-smoke fault-matrix

lint:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

# Full benchmark harness: timing rounds + regenerated tables/figures.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# One pass through every benchmark without timing rounds — catches
# import/logic rot cheaply; artifacts still land in benchmarks/results/.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

# Fault-tolerance matrix: drive retry / pool-respawn / resume /
# quarantine against injected faults at WORKERS shards, assert results
# stay bit-identical, and export the RunHealth telemetry JSON to
# benchmarks/results/fault-health-$(WORKERS).json.
WORKERS ?= 2
fault-matrix:
	$(PYTHON) -m pytest tests/test_faults.py -q
	$(PYTHON) benchmarks/run_fault_matrix.py --workers $(WORKERS)
