# Single source of truth for the commands CI runs — `make lint` locally
# is exactly the lint job, `make bench-smoke` exactly the bench job.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench bench-smoke

lint:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

# Full benchmark harness: timing rounds + regenerated tables/figures.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# One pass through every benchmark without timing rounds — catches
# import/logic rot cheaply; artifacts still land in benchmarks/results/.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable
