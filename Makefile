# Single source of truth for the commands CI runs — `make lint` locally
# is exactly the lint job, `make bench-smoke` exactly the bench job,
# and `make ci-local` walks the whole job sequence in one go.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench bench-smoke bench-emit fault-matrix serve-smoke serve-bench chaos-serve perf-gate ci-local

lint:
	ruff check .

# Extra pytest flags ride through PYTEST_ARGS — CI passes
# --junitxml/--durations here so local runs stay terse by default.
PYTEST_ARGS ?=
test:
	$(PYTHON) -m pytest -x -q $(PYTEST_ARGS)

# Full benchmark harness: timing rounds + regenerated tables/figures.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# One pass through every benchmark without timing rounds — catches
# import/logic rot cheaply; artifacts still land in benchmarks/results/.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

# Emit-path benchmark alone: regenerate BENCH_emit.json (lazy vs
# materialized time/memory ratios, span counters, shm availability) and
# render the before/after table against the committed baseline — the
# table also lands in $$GITHUB_STEP_SUMMARY when that variable is set.
bench-emit:
	$(PYTHON) -m pytest benchmarks/test_perf_emit.py -q --benchmark-disable
	$(PYTHON) benchmarks/perf_gate.py --fresh-dir benchmarks/results \
		--baseline-git HEAD

# Fault-tolerance matrix: drive retry / pool-respawn / resume /
# quarantine against injected faults at WORKERS shards, assert results
# stay bit-identical, and export the RunHealth telemetry JSON to
# benchmarks/results/BENCH_fault_health_$(WORKERS).json.
WORKERS ?= 2
fault-matrix:
	$(PYTHON) -m pytest tests/test_faults.py -q
	$(PYTHON) benchmarks/run_fault_matrix.py --workers $(WORKERS)

# Ingestion-service smoke: boot `repro.cli serve` as a subprocess,
# drive a two-tenant scenario through the load generator, assert AH
# parity with offline run_scenario, then SIGKILL and restore from the
# snapshot directory (benchmarks/run_serve_smoke.py).
serve-smoke:
	$(PYTHON) -m pytest tests/test_serve.py tests/test_tenants.py tests/test_engine.py tests/test_foldpool.py -q
	$(PYTHON) benchmarks/run_serve_smoke.py

# Serve-path throughput benchmark: boot the real server twice (per-chunk
# executor folds vs micro-batched pool folds) over the same 4-tenant
# workload, assert AH parity, and regenerate
# benchmarks/results/BENCH_serve.json for the perf gate.  SERVE_BENCH_ARGS
# defaults to the CI smoke profile; set it empty for the full workload.
SERVE_BENCH_ARGS ?= --smoke
serve-bench:
	$(PYTHON) benchmarks/run_serve_bench.py $(SERVE_BENCH_ARGS)

# Serve-path chaos harness: SIGKILL the real server subprocess at
# seeded-random points under two-tenant load, CHAOS_ROUNDS times, and
# prove zero acked-chunk loss (journal replay) plus exact AH parity
# with the offline pipeline.  Report: benchmarks/results/BENCH_chaos_serve.json.
CHAOS_ROUNDS ?= 5
chaos-serve:
	$(PYTHON) -m pytest tests/test_journal.py -q
	$(PYTHON) benchmarks/run_chaos_serve.py --rounds $(CHAOS_ROUNDS)

# Perf-regression gate: compare regenerated BENCH_*.json against the
# committed baselines.  In CI, FRESH_RESULTS lists the downloaded
# artifact directories (bench-smoke + serve lanes, space-separated) and
# the baseline is the checkout; locally (after bench-smoke overwrote
# benchmarks/results in place) set BASELINE_GIT=HEAD to diff against
# the committed versions.
FRESH_RESULTS ?= benchmarks/results
BASELINE_GIT ?=
perf-gate:
	$(PYTHON) benchmarks/perf_gate.py \
		$(foreach dir,$(FRESH_RESULTS),--fresh-dir $(dir)) \
		$(if $(BASELINE_GIT),--baseline-git $(BASELINE_GIT),)

# The whole CI job sequence, in order, on the local machine: lint,
# byte-compile, tier-1 tests (with the same JUnit/durations artifacts),
# benchmark smoke, ingestion-service smoke + bench + chaos, both fault
# matrices, then the perf gate against the committed (HEAD) baselines.
ci-local:
	$(MAKE) lint
	$(PYTHON) -m compileall -q src
	mkdir -p test-results
	$(MAKE) test PYTEST_ARGS="--junitxml=test-results/junit.xml --durations=20"
	$(MAKE) bench-smoke
	$(MAKE) serve-smoke
	$(MAKE) serve-bench
	$(MAKE) chaos-serve
	$(MAKE) fault-matrix WORKERS=2
	$(MAKE) fault-matrix WORKERS=4
	$(MAKE) perf-gate BASELINE_GIT=HEAD
