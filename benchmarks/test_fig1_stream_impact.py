"""Figure 1 — Network impact observed via the mirrored packet streams.

Regenerates the three rows of the figure for both stations (ISP and
campus): cumulative AH packet fraction from the start of the
experiment, instantaneous per-second fraction, and total packet rates
with the high-load seconds flagged.  Expected shape: the ISP fraction
sits an order of magnitude above the campus one (content caching at the
ISP shrinks the denominator), the cumulative curve declines as the
weekend rolls into the week, and instantaneous spikes far exceed the
average.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.figures import downsample, sparkline
from repro.analysis.tables import format_table, render_percent


def test_fig1_stream_impact(benchmark, stream_72h, results_dir):
    streams = benchmark.pedantic(
        stream_72h.stream_series, rounds=1, iterations=1
    )

    blocks = []
    summaries = {}
    for name in ("merit", "campus"):
        series = streams[name]
        summary = series.summary()
        summaries[name] = summary
        cumulative = series.cumulative_fraction()
        instantaneous = series.instantaneous_fraction()
        high_load = series.high_load_mask(
            np.percentile(series.total_pps, 99)
        )
        coincident = int(np.count_nonzero(high_load & (instantaneous > summary["overall_fraction"])))
        rows = [
            ("overall AH fraction", render_percent(summary["overall_fraction"], 3)),
            ("final cumulative fraction", render_percent(cumulative[-1], 3)),
            ("max instantaneous fraction", render_percent(summary["max_instantaneous_fraction"], 2)),
            ("peak total pps", f"{summary['peak_total_pps']:,}"),
            ("high-load seconds w/ high AH", str(coincident)),
            ("cumulative (72h)", sparkline(cumulative, width=48)),
            ("instantaneous (per min)", sparkline(downsample(instantaneous, 60), width=48)),
            ("total rate (per min)", sparkline(downsample(series.total_pps, 60), width=48)),
        ]
        blocks.append(
            format_table(
                ["metric", name],
                [[k, str(v)] for k, v in rows],
                title=f"Figure 1: stream impact at {name}",
                align_right=False,
            )
        )
    emit(results_dir, "fig1_stream_impact", "\n\n".join(blocks))

    merit, campus = summaries["merit"], summaries["campus"]
    # ISP fraction well above campus (caching effect), both positive.
    assert merit["overall_fraction"] > 3 * campus["overall_fraction"]
    assert campus["overall_fraction"] > 0.0
    # Instantaneous spikes exceed the mean substantially at the ISP.
    assert merit["max_instantaneous_fraction"] > 1.5 * merit["overall_fraction"]
    # Cumulative fraction declines from its weekend start into the week.
    cum = streams["merit"].cumulative_fraction()
    day = 86_400
    assert cum[-1] < cum[day - 1]
