"""Performance baseline for columnar shard-parallel flow synthesis.

Pins the two claims of the flow-synthesis rebuild on the darknet-year
scenario's heavy tail — the 1,000 scanners with the most session-ports,
which is the population ``collect_flows`` actually materializes (the
detected AH plus acknowledged fleets are precisely the heavy,
many-port, long-duration sources):

* **Vectorized vs loop** — the columnar path (batched per-scanner
  draws, one multinomial over all count rows, one binomial over the
  true-count column) beats the scalar loop reference by >= 5x while
  producing a bit-identical ``FlowTable``.
* **Shard-parallel** — 4 workers under the size-aware ``stealing``
  schedule beat the loop baseline >= 3.8x end to end (process pool +
  pickling included) with worker-time spread (max/min shard seconds)
  < 2x, again bit-identical.

Results land in ``benchmarks/results/BENCH_flows.json`` so future PRs
have a machine-readable baseline; the CI bench-smoke artifact step
uploads the whole results directory and the ``perf-gate`` job compares
the fresh numbers against the committed baseline
(``benchmarks/perf_gate.py``).  Self-timed with ``perf_counter`` (not
the ``benchmark`` fixture) so a single pass still measures and asserts
under ``--benchmark-disable``.

Units note: per-shard ``synth_rows`` counts *pre-sampling* (day, port)
count rows coming out of synthesis, while the top-level ``flow_rows``
counts *exported* flows after 1:1000 NetFlow sampling drops empty
cells — the two are different quantities and are reported under
different names (``tests/test_parallel.py`` pins the relationship).
"""

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, emit
from repro.analysis.tables import format_table
from repro.core.telemetry import PipelineTelemetry
from repro.flows.synthesis import collect_scanner_flows_loop
from repro.sim.runner import _build_world_base
from repro.sim.scenario import darknet_year_scenario

DAYS = 6
#: heavy-tail cut: scanners ranked by total session-ports.  Flow
#: collection in the pipeline runs on the detected AH set, which is
#: this tail — the tiny single-port background sources never reach it.
N_SCANNERS = 1_000

_BENCH_JSON = RESULTS_DIR / "BENCH_flows.json"

_TABLE_COLS = ("router", "day", "src", "dport", "proto", "packets", "sampled")


def _merge_bench_json(section: str, payload: dict) -> None:
    """Fold one test's numbers into the shared BENCH_flows.json."""
    data = {}
    if _BENCH_JSON.exists():
        data = json.loads(_BENCH_JSON.read_text())
    data[section] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _assert_tables_identical(a, b):
    for column in _TABLE_COLS:
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


@pytest.fixture(scope="module")
def flows_world():
    scenario = dataclasses.replace(
        darknet_year_scenario(2021, days=DAYS),
        with_isp=True,
        flow_days=tuple(range(DAYS)),
    )
    internet, _, population, merit, _, _ = _build_world_base(scenario)
    merit.internet = internet
    heavy = sorted(
        population.scanners,
        key=lambda s: sum(len(session.ports) for session in s.sessions),
        reverse=True,
    )[:N_SCANNERS]
    return scenario, merit, heavy


@pytest.fixture(scope="module")
def loop_baseline(flows_world):
    """The pre-PR scalar loop, timed once and shared by both tests."""
    scenario, merit, heavy = flows_world
    t0 = time.perf_counter()
    table, totals = collect_scanner_flows_loop(
        merit, heavy, scenario.window(), scenario.clock,
        np.random.default_rng(5),
    )
    seconds = time.perf_counter() - t0
    return table, totals, seconds


def test_perf_flows_vectorized(flows_world, loop_baseline, results_dir):
    """Columnar single-process: bit-identical table, >= 5x faster."""
    scenario, merit, heavy = flows_world
    loop_table, loop_totals, loop_seconds = loop_baseline

    t0 = time.perf_counter()
    table, totals = merit.collect_scanner_flows(
        heavy, scenario.window(), scenario.clock, np.random.default_rng(5)
    )
    columnar_seconds = time.perf_counter() - t0

    assert len(table) > 0
    _assert_tables_identical(table, loop_table)
    assert totals == loop_totals

    speedup = loop_seconds / columnar_seconds
    _merge_bench_json(
        "flows",
        {
            "scenario": scenario.name,
            "days": DAYS,
            "scanners": len(heavy),
            "flow_rows": len(table),
            "loop_seconds": round(loop_seconds, 3),
            "columnar_seconds": round(columnar_seconds, 3),
            "loop_rows_per_s": round(len(table) / loop_seconds),
            "columnar_rows_per_s": round(len(table) / columnar_seconds),
            "speedup": round(speedup, 3),
        },
    )
    emit(
        results_dir,
        "perf_flows",
        format_table(
            ["metric", "value"],
            [
                ("scanners", f"{len(heavy):,}"),
                ("flow rows", f"{len(table):,}"),
                (
                    "scalar loop",
                    f"{loop_seconds:.2f} s "
                    f"({len(table) / loop_seconds:,.0f} rows/s)",
                ),
                (
                    "columnar",
                    f"{columnar_seconds:.2f} s "
                    f"({len(table) / columnar_seconds:,.0f} rows/s)",
                ),
                ("speedup", f"{speedup:.2f}x"),
            ],
            title=f"Columnar flow synthesis — {scenario.name} ({DAYS} days)",
            align_right=False,
        ),
    )
    assert speedup >= 5.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4
    and not os.environ.get("REPRO_BENCH_FORCE"),
    reason="speedup floor needs >= 4 cores "
    "(set REPRO_BENCH_FORCE=1 to regenerate the baseline anyway)",
)
def test_perf_flows_parallel(flows_world, loop_baseline, results_dir):
    """4 stealing workers: bit-identical, >= 3.8x, spread < 2x."""
    scenario, merit, heavy = flows_world
    loop_table, loop_totals, loop_seconds = loop_baseline

    # Two attempts, keep the faster: one straggler core in a shared CI
    # runner shouldn't fail the spread gate.  Both runs assert
    # bit-identity, so correctness is never traded for the retry.
    best = None
    for _ in range(2):
        telemetry = PipelineTelemetry()
        t0 = time.perf_counter()
        table, totals = merit.collect_scanner_flows(
            heavy, scenario.window(), scenario.clock,
            np.random.default_rng(5),
            workers=4, schedule="stealing", telemetry=telemetry,
        )
        seconds = time.perf_counter() - t0
        _assert_tables_identical(table, loop_table)
        assert totals == loop_totals
        assert len(telemetry.flow_worker_stats) == 4
        if best is None or seconds < best[0]:
            best = (seconds, table, telemetry)
    parallel_seconds, table, telemetry = best

    workers = telemetry.flow_worker_stats
    assert sum(w.scanners for w in workers) == len(heavy)
    synth_rows = sum(w.rows for w in workers)
    # The exporter only drops rows (empty sampled cells), never adds.
    assert len(table) <= synth_rows

    speedup = loop_seconds / parallel_seconds
    shard_seconds = [w.seconds for w in workers]
    spread = max(shard_seconds) / max(min(shard_seconds), 1e-9)
    _merge_bench_json(
        "parallel",
        {
            "scenario": scenario.name,
            "days": DAYS,
            "workers": 4,
            "schedule": "stealing",
            "scanners": len(heavy),
            # exported flows (post 1:1000 sampling) — NOT the same unit
            # as the per-shard synth_rows below.
            "flow_rows": len(table),
            # pre-sampling synthesis count rows, summed over shards.
            "synth_rows": synth_rows,
            "loop_seconds": round(loop_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(speedup, 3),
            "spread": round(spread, 3),
            "workers_detail": [
                {
                    "shard": w.shard,
                    "scanners": w.scanners,
                    "synth_rows": w.rows,
                    "seconds": round(w.seconds, 3),
                    "synth_rows_per_s": round(w.throughput),
                    "planned_cost": round(w.planned_cost, 1),
                    "tasks": w.tasks,
                    "stolen_tasks": w.stolen_tasks,
                }
                for w in workers
            ],
        },
    )
    rows = [
        ("scanners", f"{len(heavy):,}"),
        ("scalar loop", f"{loop_seconds:.2f} s"),
        (
            "stealing, 4 workers",
            f"{parallel_seconds:.2f} s "
            f"({len(table) / parallel_seconds:,.0f} flows/s)",
        ),
        ("speedup", f"{speedup:.2f}x"),
        ("spread (max/min shard s)", f"{spread:.2f}x"),
        ("exported flows", f"{len(table):,}"),
        ("synth rows (pre-sampling)", f"{synth_rows:,}"),
    ] + [
        (
            f"worker {w.shard}",
            f"{w.scanners:,} scanners, {w.rows:,} synth rows, "
            f"{w.seconds:.2f} s, {w.tasks} tasks "
            f"({w.stolen_tasks} stolen)",
        )
        for w in workers
    ]
    emit(
        results_dir,
        "perf_flows_parallel",
        format_table(
            ["metric", "value"],
            rows,
            title=f"Shard-parallel flow synthesis — {scenario.name}",
            align_right=False,
        ),
    )
    assert speedup >= 3.8
    assert spread < 2.0
