"""Chaos harness for the durable serve path (``repro.serve.journal``).

The ack contract under test: **a 202-acked chunk survives any process
crash**.  This driver boots the real server as a subprocess (the same
``python -m repro.cli serve`` path production uses), drives two
tenants' captures at it from concurrent loadgen threads, and SIGKILLs
the server at a randomized point in ack-space each round — no drain,
no snapshot, no warning.  After every kill it restarts the server over
the same ``--snapshot-dir`` and asserts that the restored engines hold
at least every packet whose chunk was acked before the kill (snapshot
+ write-ahead-journal replay).  After the last round it delivers the
remaining chunks and asserts the end state is *exactly* the offline
serial pipeline's: per-tenant packet counts equal and AH source sets
(definitions 1–3) identical to ``run_scenario`` over the same
captures.

Randomization is seeded (``--seed``) so a failing sequence of kill
points reproduces.  Kills land at arbitrary moments relative to
journal appends, queue folds, and snapshot writes; the torn-tail
framing, replay dedup, and retransmit dedup are all exercised because
the drivers resend every chunk whose ack the kill swallowed.

Run from the repo root (CI runs ``make chaos-serve`` with 5 rounds)::

    PYTHONPATH=src python benchmarks/run_chaos_serve.py --rounds 20

Writes a loss/parity report to ``benchmarks/results/BENCH_chaos_serve.json``.
"""

import argparse
import json
import random
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from run_serve_smoke import (  # noqa: E402
    CHUNK_SECONDS,
    _assert_ah_parity,
    _start_server,
    _tenant_config,
)

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.loadgen import chunk_payloads, drive  # noqa: E402
from repro.sim.runner import build_world, run_scenario  # noqa: E402
from repro.sim.scenario import tiny_scenario  # noqa: E402

RESULTS_DEFAULT = REPO_ROOT / "benchmarks" / "results" / "BENCH_chaos_serve.json"


class ChaosState:
    """Shared ack bookkeeping across driver threads and the killer."""

    def __init__(self, payloads):
        self.lock = threading.Lock()
        #: per-tenant index of the next chunk still awaiting its ack;
        #: everything below it was 202-acked and must survive any kill.
        self.cursor = {name: 0 for name in payloads}
        self.acked_packets = {name: 0 for name in payloads}
        self.total_acks = 0
        self.payloads = payloads

    def on_ack(self, name):
        def _hook(_index, n_packets):
            with self.lock:
                self.cursor[name] += 1
                self.acked_packets[name] += int(n_packets)
                self.total_acks += 1

        return _hook

    def remaining(self):
        with self.lock:
            return sum(
                len(self.payloads[name]) - self.cursor[name]
                for name in self.payloads
            )

    def snapshot(self):
        with self.lock:
            return (
                dict(self.cursor),
                dict(self.acked_packets),
                self.total_acks,
            )


def _drive_round(state, name, host, port):
    """Send one tenant's unacked suffix until done or the server dies."""
    with state.lock:
        start = state.cursor[name]
    slice_ = state.payloads[name][start:]
    if not slice_:
        return
    client = ServeClient(host, port, timeout=30.0)
    try:
        drive(
            client,
            name,
            slice_,
            sync=False,
            backoff=0.02,
            connect_retries=2,
            on_ack=state.on_ack(name),
        )
    except Exception:  # noqa: BLE001 — the kill is the point
        pass
    finally:
        client.close()


def _assert_no_acked_loss(client, state, round_no):
    """Every packet of every acked chunk must be folded after boot."""
    checks = {}
    cursor, acked_packets, _ = state.snapshot()
    for name in state.payloads:
        status = client.status(name)
        folded = status["packets"]
        promised = acked_packets[name]
        assert folded >= promised, (
            f"round {round_no}: tenant {name!r} lost acked chunks — "
            f"{promised:,} packets were 202-acked but only {folded:,} "
            f"survive the restart ({cursor[name]} chunks acked)"
        )
        checks[name] = {
            "acked_chunks": cursor[name],
            "acked_packets": promised,
            "restored_packets": folded,
        }
    return checks


def main() -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL the serve subprocess under load; prove "
        "zero acked-chunk loss and offline AH parity."
    )
    parser.add_argument(
        "--rounds", type=int, default=20, help="SIGKILL rounds (default 20)"
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--journal-fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="journal fsync policy for the server under test; 'batch' "
        "(default) is the SIGKILL-durable production setting",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULTS_DEFAULT,
        help="loss/parity report path (default: %(default)s)",
    )
    args = parser.parse_args()
    rng = random.Random(args.seed)
    started = time.monotonic()

    scenarios = {"merit": tiny_scenario(), "campus": tiny_scenario(seed=777)}
    captures, configs, offline = {}, {}, {}
    for name, sc in scenarios.items():
        _, telescope, _, capture, _, _, timeout = build_world(sc)
        captures[name] = capture.packets
        workers = 2 if name == "campus" else 1
        configs[name] = _tenant_config(sc, timeout, telescope.size, workers)
        offline[name] = run_scenario(sc).detections
        print(
            f"[offline] {name}: {len(capture):,} packets, "
            f"AH1={len(offline[name][1].sources)} "
            f"AH2={len(offline[name][2].sources)} "
            f"AH3={len(offline[name][3].sources)}"
        )

    payloads = {
        name: list(chunk_payloads(capture, CHUNK_SECONDS))
        for name, capture in captures.items()
    }
    state = ChaosState(payloads)
    extra_args = ("--journal-fsync", args.journal_fsync)
    rounds_report = []
    kills = 0

    with tempfile.TemporaryDirectory(prefix="chaos-serve-") as tmp:
        snapshot_dir = Path(tmp) / "snapshots"

        for round_no in range(1, args.rounds + 1):
            proc, client = _start_server(snapshot_dir, extra_args)
            try:
                if round_no == 1:
                    for name in scenarios:
                        client.create_tenant(name, configs[name])
                    checks = {}
                else:
                    checks = _assert_no_acked_loss(client, state, round_no)
                remaining = state.remaining()
                # Kill after a random number of further acks — early,
                # mid-fold, mid-coalesce, right after a snapshot
                # boundary: over the rounds the kill point sweeps the
                # whole ingest pipeline.  Paced against the remaining
                # chunks so every round (not just the early ones) kills
                # with traffic still in flight.
                rounds_left = args.rounds - round_no + 1
                pace = max(1, min(12, remaining // rounds_left))
                kill_after = rng.randint(1, pace) if remaining else 0
                _, _, acks_before = state.snapshot()
                kill_at = acks_before + kill_after
                host, port = client.host, client.port
                client.close()

                drivers = [
                    threading.Thread(
                        target=_drive_round,
                        args=(state, name, host, port),
                        name=f"chaos-drive-{name}",
                        daemon=True,
                    )
                    for name in scenarios
                ]
                for thread in drivers:
                    thread.start()
                while proc.poll() is None:
                    with state.lock:
                        acks = state.total_acks
                    if acks >= kill_at:
                        break
                    if not any(t.is_alive() for t in drivers):
                        break
                    time.sleep(0.002)
                # Small jitter so the kill lands at a random offset
                # inside whatever the server is doing right now.
                time.sleep(rng.uniform(0.0, 0.05))
            except BaseException:
                proc.kill()
                raise
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            kills += 1
            for thread in drivers:
                thread.join(timeout=60)
            cursor, acked_packets, total_acks = state.snapshot()
            rounds_report.append(
                {
                    "round": round_no,
                    "kill_after_acks": kill_at,
                    "total_acks": total_acks,
                    "acked_chunks": dict(cursor),
                    "boot_checks": checks,
                }
            )
            print(
                f"[round {round_no:>2}] SIGKILL at >= {kill_at} acks "
                f"(now {total_acks}); acked "
                + ", ".join(
                    f"{name}={cursor[name]}/{len(payloads[name])}"
                    for name in sorted(payloads)
                )
            )

        # ---- Final round: verify, deliver the rest, exact parity. ---
        proc, client = _start_server(snapshot_dir, extra_args)
        try:
            _assert_no_acked_loss(client, state, args.rounds + 1)
            for name in sorted(payloads):
                _drive_round(state, name, client.host, client.port)
            replayed = {}
            for name in sorted(payloads):
                client.sync(name)
                status = client.status(name)
                expected = len(captures[name])
                assert status["packets"] == expected, (
                    f"tenant {name!r}: {status['packets']:,} packets "
                    f"folded, offline capture has {expected:,} — the "
                    "journal lost or double-folded chunks"
                )
                _assert_ah_parity(client, name, offline[name])
                replayed[name] = status["serve"]["replayed_chunks"]
            health = client.health()
            assert not health["journal_degraded"], health["journal_degraded"]
            client.close()
        except BaseException:
            proc.kill()
            raise
        proc.terminate()
        proc.wait(timeout=30)

    elapsed = time.monotonic() - started
    report = {
        "bench": "chaos_serve",
        "seed": args.seed,
        "rounds": args.rounds,
        "sigkills": kills,
        "journal_fsync": args.journal_fsync,
        "tenants": {
            name: {
                "chunks": len(payloads[name]),
                "packets": len(captures[name]),
                "replayed_chunks_final_boot": replayed[name],
            }
            for name in sorted(payloads)
        },
        "acked_chunk_loss": 0,
        "ah_parity": "identical (definitions 1-3)",
        "seconds": round(elapsed, 2),
        "rounds_detail": rounds_report,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"[ok] chaos serve passed in {elapsed:.1f}s: {kills} SIGKILLs, "
        "zero acked-chunk loss, AH parity (defs 1-3) with the offline "
        f"pipeline — report at {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
