"""Ablation — blocklist size vs ameliorated AH traffic.

Operationalizes the paper's closing argument (Figure 6 right): because
AH packet contributions are Zipf-like, "even starting by blocking a
small amount of AH, a large fraction of the problem is ameliorated" —
important since operators keep blocklists short to limit collateral
damage from DHCP churn and NAT.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.lists import amelioration_curve, blocklist_size_for_share

TARGETS = (0.25, 0.50, 0.75, 0.90, 0.99)


def test_ablation_blocklist(benchmark, darknet_2022, results_dir):
    day = darknet_2022.result.scenario.days // 2

    def build():
        blocklist = darknet_2022.daily_blocklist(day)
        curve = amelioration_curve(blocklist)
        sizes = {t: blocklist_size_for_share(blocklist, t) for t in TARGETS}
        return blocklist, curve, sizes

    blocklist, curve, sizes = benchmark.pedantic(build, rounds=1, iterations=1)

    total = len(blocklist)
    rows = [
        [
            render_percent(target, 0),
            str(sizes[target]),
            render_percent(sizes[target] / total, 1),
        ]
        for target in TARGETS
    ]
    table = format_table(
        ["traffic ameliorated", "blocklist entries", "share of day's AH"],
        rows,
        title=f"Ablation: blocklist size vs ameliorated traffic (day {day}, {total} AH)",
        align_right=False,
    )
    emit(results_dir, "ablation_blocklist", table)

    assert total > 50
    # Concentration: half the AH traffic goes away with far fewer than
    # half the entries.
    assert sizes[0.50] < 0.4 * total
    # The curve is a proper CDF over entries.
    assert len(curve) == total
    assert curve[-1] == 1.0
    # Every non-acked entry carries actionable metadata.
    entry = blocklist.non_acknowledged()[0]
    assert entry.asn > 0 and len(entry.country) == 2
