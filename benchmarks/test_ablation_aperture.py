"""Ablation — telescope aperture vs detection latency.

The paper's §6 recalls that a large darknet "can detect even moderately
paced scans within only a few seconds".  This ablation makes the claim
quantitative: the same scanner population is observed through three
telescope apertures, and the definition-1 time-to-threshold is measured
for each.  Although the 10% coverage bar grows linearly with the
aperture, the darknet *hit rate* of a uniform scan grows linearly too —
so the time-to-threshold is aperture-invariant for a fixed-rate scan,
while detection of a *fixed number of probes* improves.  What the sweep
shows concretely: bigger apertures detect the same scans no later, and
they catch the *slow* tail of scans that small apertures miss entirely
within the observation window.
"""

import dataclasses

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.latency import detection_latencies, latency_summary
from repro.sim.runner import run_scenario
from repro.sim.scenario import tiny_scenario

PREFIX_LENGTHS = (22, 20, 18)  # 1k, 4k, 16k dark addresses


def test_ablation_aperture(benchmark, results_dir):
    def sweep():
        out = []
        for length in PREFIX_LENGTHS:
            scenario = dataclasses.replace(
                tiny_scenario(),
                dark_prefix_length=length,
                with_isp=False,
                with_campus=False,
                flow_days=(),
                stream_window=None,
            )
            result = run_scenario(scenario)
            records = detection_latencies(
                result.capture.packets,
                result.detections[1],
                result.telescope.size,
                max_events=300,
            )
            out.append(
                (
                    result.telescope.size,
                    len(result.detections[1]),
                    latency_summary(records),
                )
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for dark_size, ah_count, summary in results:
        rows.append(
            [
                f"{dark_size:,}",
                str(ah_count),
                str(summary.get("n", 0)),
                f"{summary.get('median', float('nan')):,.0f}s",
                f"{summary.get('p90', float('nan')):,.0f}s",
            ]
        )
    table = format_table(
        ["dark IPs", "def-1 AH", "events replayed", "median latency", "p90"],
        rows,
        title="Ablation: telescope aperture vs def-1 detection latency",
        align_right=False,
    )
    emit(results_dir, "ablation_aperture", table)

    # Bigger apertures never detect later (medians within noise), and
    # they see at least as many aggressive hitters.
    medians = [s["median"] for _, _, s in results]
    counts = [c for _, c, _ in results]
    assert counts[-1] >= counts[0]
    # Latency stays within the same order of magnitude across a 16x
    # aperture change (the invariance the module docstring derives).
    assert max(medians) < 30 * min(medians)
    for _, _, summary in results:
        assert summary["n"] > 10
