"""Table 1 — Description of Datasets.

Regenerates the dataset-description table: packets, source IPs,
destination IPs and darknet events for the two darknet datasets, plus
the AH detection headline (the ~0.1% of sources responsible for >60% of
darknet packets) that motivates the whole study.
"""

from repro.analysis.tables import format_table, render_percent


def _dataset_rows(report):
    summary = report.dataset_summary()
    ah = report.detections[1].sources
    capture = report.result.capture
    ah_packets = capture.packets_from(ah)
    return summary, ah, ah_packets


def test_table1_datasets(benchmark, darknet_2021, darknet_2022, results_dir):
    from benchmarks.conftest import emit

    def build():
        rows = []
        shapes = {}
        for label, report in (
            ("Darknet-1", darknet_2021),
            ("Darknet-2", darknet_2022),
        ):
            summary, ah, ah_packets = _dataset_rows(report)
            ah_share = ah_packets / summary["packets"]
            src_share = len(ah) / summary["source_ips"]
            rows.append(
                [
                    label,
                    f"{summary['packets']:,}",
                    f"{summary['source_ips']:,}",
                    f"{summary['dest_ips']:,}",
                    f"{summary['events']:,}",
                    f"{len(ah):,}",
                    render_percent(src_share),
                    render_percent(ah_share, 1),
                ]
            )
            shapes[label] = (src_share, ah_share)
        return rows, shapes

    rows, shapes = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        [
            "Dataset",
            "Packets",
            "Source IPs",
            "Dest IPs",
            "Events",
            "AH (def1)",
            "AH src share",
            "AH pkt share",
        ],
        rows,
        title="Table 1: Description of datasets (scaled reproduction)",
    )
    emit(results_dir, "table1_datasets", table)

    # Shape expectations from the paper: AH are a sub-percent sliver of
    # sources yet contribute the majority (~65%) of darknet packets.
    for src_share, ah_share in shapes.values():
        assert src_share < 0.05
        assert ah_share > 0.5
