"""Table 4 — Network impact attributed to acknowledged scanners.

Regenerates the per-router packet share of "seemingly benign" research
scanning for the Flows-2 day, per definition.  Expected shape: a
noticeable but sub-AH toll (the paper reports 0.16-2.56%) — research
orgs are a small slice of the AH population carrying an outsized packet
share.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_count, render_percent


def test_table4_acked_impact(benchmark, flows_day, results_dir):
    table_data = benchmark.pedantic(
        flows_day.acked_impact_table, rounds=1, iterations=1
    )

    rows = []
    for definition in (1, 2, 3):
        row = [f"Definition #{definition}"]
        for router in sorted(table_data[definition]):
            packets, fraction = table_data[definition][router]
            row.append(f"{render_count(packets)} ({render_percent(fraction)})")
        rows.append(row)
    table = format_table(
        ["", "Router-1", "Router-2", "Router-3"],
        rows,
        title="Table 4: Network impact attributed to ACKed scanners (2022-10-01)",
        align_right=False,
    )
    emit(results_dir, "table4_acked_impact", table)

    # ACKed impact is positive but smaller than the full AH impact.
    ah_cells = {c.router: c.fraction for c in flows_day.impact_cells(1)}
    for definition in (1, 2):
        fractions = [f for _, f in table_data[definition].values()]
        assert max(fractions) > 0.0005
        for router, (_, fraction) in table_data[definition].items():
            assert fraction <= ah_cells[router] + 0.01
