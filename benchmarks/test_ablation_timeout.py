"""Ablation — the darknet event timeout rule.

The paper derives its ~10-minute event expiration from the telescope
aperture, an assumed 100 pps scan rate and a 2-day "long scan"
(avoiding the flow-timeout problem of splitting long scans).  This
ablation rebuilds the Darknet-2 events under a sweep of timeouts and
shows the trade-off: short timeouts shatter slow scans into many small
events (deflating per-event dispersion and the definition-1
population); very long timeouts merge distinct scans.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.detection import detect_dispersion
from repro.core.events import build_events

TIMEOUTS = (60.0, 600.0, 3_600.0, 14_400.0, 34_000.0, 86_400.0)


def test_ablation_timeout(benchmark, darknet_2022, results_dir):
    capture = darknet_2022.result.capture
    dark_size = darknet_2022.result.dark_size
    config = darknet_2022.result.scenario.detection
    derived = darknet_2022.result.telescope.default_timeout()

    def sweep():
        out = []
        for timeout in TIMEOUTS:
            events = build_events(capture.packets, timeout)
            detection = detect_dispersion(events, dark_size, config)
            out.append((timeout, len(events), len(detection)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{timeout:,.0f}s" + (" (~derived)" if abs(timeout - derived) < 2_000 else ""),
            f"{n_events:,}",
            str(n_ah),
        ]
        for timeout, n_events, n_ah in results
    ]
    table = format_table(
        ["timeout", "events", "def-1 AH"],
        rows,
        title=(
            "Ablation: event timeout vs event count and AH population "
            f"(rule-derived timeout = {derived:,.0f}s)"
        ),
        align_right=False,
    )
    emit(results_dir, "ablation_timeout", table)

    event_counts = [n for _, n, _ in results]
    ah_counts = [a for _, _, a in results]
    # Longer timeouts merge events monotonically.
    assert event_counts == sorted(event_counts, reverse=True)
    # Aggressively short timeouts split long scans and lose AH.
    assert ah_counts[0] < ah_counts[-2]
    # The population stabilizes near the derived value: the rule works.
    stable = [a for t, _, a in results if t >= 3_600.0]
    assert max(stable) - min(stable) <= 0.1 * max(stable)
