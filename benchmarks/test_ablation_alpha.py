"""Ablation — the ECDF tail mass (alpha) of Definition 2.

The paper fixes alpha = 1e-4 over tens of billions of events; this
reproduction rescales it with the simulated event population (see
EXPERIMENTS.md).  The sweep shows how the packet threshold and the
detected population react: smaller alpha means a higher critical
threshold and a smaller, heavier-hitting population — and how the
overlap with definition 1 (the paper's Jaccard ~0.8 observation) peaks
when alpha matches the structural tail.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.config import DetectionConfig
from repro.core.detection import detect_volume, jaccard

ALPHAS = (1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2)


def test_ablation_alpha(benchmark, darknet_2022, results_dir):
    events = darknet_2022.result.events
    d1 = darknet_2022.detections[1].sources

    def sweep():
        out = []
        for alpha in ALPHAS:
            result = detect_volume(events, DetectionConfig(alpha=alpha))
            out.append(
                (alpha, result.threshold, len(result), jaccard(d1, result.sources))
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{alpha:g}", f"{threshold:,.0f}", str(count), f"{j:.2f}"]
        for alpha, threshold, count, j in results
    ]
    table = format_table(
        ["alpha", "packet threshold", "def-2 AH", "Jaccard vs def-1"],
        rows,
        title="Ablation: ECDF tail mass (definition #2)",
        align_right=False,
    )
    emit(results_dir, "ablation_alpha", table)

    thresholds = [t for _, t, _, _ in results]
    counts = [c for _, _, c, _ in results]
    # Thresholds fall and populations grow as alpha loosens.
    assert thresholds == sorted(thresholds, reverse=True)
    assert counts == sorted(counts)
    # Overlap with definition 1 peaks at the calibrated tail, not at
    # the loosest setting (which floods def-2 with small scans).
    jaccards = {alpha: j for alpha, _, _, j in results}
    assert max(jaccards.values()) == max(
        jaccards[a] for a in ALPHAS if a <= 1e-2
    )
    assert jaccards[2.5e-3] > jaccards[5e-2]
