"""Ablation — AH-list churn and blocklist refresh cadence.

The paper's §7 argues operators must keep AH blocklists short and fresh
because of DHCP/NAT address churn.  This ablation quantifies that from
the Darknet-2 detection: day-over-day retention of the active AH set,
the survival curve of a newly-appeared AH, and how stale a deployed
list becomes under different refresh intervals.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.churn import churn_summary, staleness, survival_curve

REFRESH_DAYS = (1, 2, 3, 7)


def test_ablation_churn(benchmark, darknet_2022, results_dir):
    detection = darknet_2022.detections[1]

    def build():
        summary = churn_summary(detection)
        curve = survival_curve(detection, max_days=7)
        stale = {d: staleness(detection, d) for d in REFRESH_DAYS}
        return summary, curve, stale

    summary, curve, stale = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ["mean day-over-day retention", render_percent(summary["mean_retention"], 1)],
        ["mean day-over-day Jaccard", f"{summary['mean_jaccard']:.2f}"],
        ["mean new AH per day", f"{summary['mean_arrivals']:.0f}"],
    ]
    for k, value in enumerate(curve):
        rows.append([f"P(active after {k} days)", render_percent(float(value), 1)])
    for days in REFRESH_DAYS:
        rows.append(
            [f"list freshness, {days}-day refresh", render_percent(stale[days], 1)]
        )
    table = format_table(
        ["metric", "value"],
        rows,
        title="Ablation: AH churn and blocklist refresh cadence (Darknet-2)",
        align_right=False,
    )
    emit(results_dir, "ablation_churn", table)

    # Careers are short: a new AH rarely survives a week.
    assert curve[0] == 1.0
    assert curve[-1] < 0.6
    # Fresher lists stay more accurate.
    assert stale[1] >= stale[7] - 1e-9
    # Substantial daily churn: the paper's motivation for daily lists.
    assert summary["mean_jaccard"] < 0.95
    assert summary["mean_arrivals"] > 5
