"""Figure 6 (left) — Honeypot classification of the monthly AH.

Regenerates the intent breakdown of the definition-1 AH after removing
acknowledged scanners: malicious / unknown / benign / not-seen, plus
the acknowledged slice.  Expected shape: a large malicious fraction,
an unknown majority among the rest, very few benign leftovers (the
ACKed filter is comprehensive), and near-total honeypot coverage.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent


def test_fig6_gn_breakdown(benchmark, darknet_2022, results_dir):
    def build():
        return (
            darknet_2022.greynoise_breakdown(definition=1),
            darknet_2022.greynoise_overlap(definition=1),
        )

    breakdown, overlap = benchmark.pedantic(build, rounds=1, iterations=1)

    total = sum(breakdown.values())
    rows = [
        [category, str(count), render_percent(count / total, 1)]
        for category, count in sorted(
            breakdown.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    rows.append(["daily GN overlap of AH", "-", render_percent(overlap, 1)])
    table = format_table(
        ["category", "IPs", "share"],
        rows,
        title="Figure 6 (left): GN breakdown of AH (definition #1)",
        align_right=False,
    )
    emit(results_dir, "fig6_gn_breakdown", table)

    non_acked = total - breakdown["acked"]
    # The unknown-intent population is the majority of non-ACKed AH;
    # the malicious fraction is large; benign leftovers are rare.
    assert breakdown["unknown"] > breakdown["malicious"]
    assert breakdown["malicious"] > 0.15 * non_acked
    assert breakdown["benign"] < 0.05 * non_acked
    # Nearly all detected AH appear at the distributed honeypots
    # (paper: 99.3% on an average day).
    assert overlap > 0.95
    assert breakdown["not-seen"] < 0.05 * total
