"""Figure 3 — Temporal trends of the definition-1 aggressive hitters.

Regenerates the two panels for both years: (left) daily-new AH, active
AH and all daily sources; (right) packets from daily AH vs all darknet
packets.  Expected shape: active AH exceed daily-new AH by 2-4x, the
2022 population is larger than 2021's (growth over the 22 months), and
the AH carry the majority of darknet packets on a typical day.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.figures import sparkline
from repro.analysis.tables import format_table, render_percent


def _trend_summary(report):
    points = report.temporal_trends(definition=1)
    # Skip warm-up and cool-down edges of the simulated window.
    core = points[2:-2]
    return points, {
        "daily_mean": float(np.mean([p.daily_new_ah for p in core])),
        "active_mean": float(np.mean([p.active_ah for p in core])),
        "sources_mean": float(np.mean([p.all_daily_sources for p in core])),
        "share_mean": float(np.mean([p.ah_packet_share for p in core if p.total_packets])),
    }


def test_fig3_temporal_trends(benchmark, darknet_2021, darknet_2022, results_dir):
    points_2021, summary_2021 = benchmark.pedantic(
        lambda: _trend_summary(darknet_2021), rounds=1, iterations=1
    )
    points_2022, summary_2022 = _trend_summary(darknet_2022)

    rows = []
    for year, summary, points in (
        ("2021", summary_2021, points_2021),
        ("2022", summary_2022, points_2022),
    ):
        rows.append(
            [
                year,
                f"{summary['daily_mean']:.0f}",
                f"{summary['active_mean']:.0f}",
                f"{summary['sources_mean']:.0f}",
                render_percent(summary["share_mean"], 1),
                sparkline([p.active_ah for p in points], width=28),
            ]
        )
    table = format_table(
        ["year", "daily AH", "active AH", "all srcs/day", "AH pkt share", "active/day"],
        rows,
        title="Figure 3: temporal trends (definition #1)",
        align_right=False,
    )
    emit(results_dir, "fig3_temporal_trends", table)

    for summary in (summary_2021, summary_2022):
        # Active hitters outnumber the daily-new ones (careers span
        # multiple days) — paper: 1,452 daily vs 3,876 active in 2021.
        assert summary["active_mean"] > 1.3 * summary["daily_mean"]
        # AH are a sliver of daily sources yet a dominant packet share
        # (paper: ~0.1% of sources, >63% of packets; the scaled run
        # lands lower because research fleets here are long-lived IPs
        # whose recurring surveys never re-enter the "daily" set).
        assert summary["daily_mean"] < 0.05 * summary["sources_mean"]
        assert summary["share_mean"] > 0.3
    # Growth from 2021 to 2022 (paper: 1,452 -> 1,779 daily).
    assert summary_2022["daily_mean"] > summary_2021["daily_mean"]
