"""CI fault matrix: drive every recovery path, prove identity, export health.

Builds a random capture, saves it as a digest-manifested chunk
directory, then runs the shard-parallel directory pipeline through the
fault layer's scenarios at the requested worker count:

1. injected shard kills absorbed by retry;
2. a hard worker abort absorbed by pool respawn (real processes);
3. an interrupted checkpointed run completed by ``resume_run``;
4. a corrupted chunk archive quarantined in degraded mode.

Each scenario asserts the final events/detections are bit-identical to
the fault-free serial reference (for quarantine: the reference over the
surviving chunks), then the accumulated ``RunHealth`` telemetry is
written as JSON next to the bench artifacts —
``benchmarks/results/BENCH_fault_health_<workers>.json`` by default — so the
CI job can upload it alongside the bench-smoke results.

Usage::

    PYTHONPATH=src python benchmarks/run_fault_matrix.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.core.faults import FaultPlan, RetryPolicy, ShardFailedError
from repro.core.telemetry import PipelineTelemetry
from repro.io.packetlog import (
    load_packets_npz,
    save_packets_chunked,
)
from repro.packet import PacketBatch, Protocol
from repro.parallel import parallel_detect_directory, resume_run

DARK_SIZE = 256
CONFIG = DetectionConfig(alpha=0.05, min_packet_threshold=2, min_port_threshold=1)
TIMEOUT = 600.0
CHUNK_SECONDS = 40_000.0


def build_capture(seed: int = 4242, n: int = 60_000) -> PacketBatch:
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * 400_000.0),
        src=rng.integers(1, 400, n).astype(np.uint32),
        dst=rng.integers(0, DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443, 5060], dtype=np.uint16), n),
        proto=np.full(n, Protocol.TCP_SYN.value, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def assert_identical(result, ref_events, ref_detections, label: str) -> None:
    events = result.events
    if len(events) != len(ref_events) or not all(
        np.array_equal(getattr(events, col), getattr(ref_events, col))
        for col in ("src", "dport", "proto", "start", "end", "packets", "unique_dsts")
    ):
        raise AssertionError(f"{label}: event table diverged from reference")
    for definition, ref in ref_detections.items():
        got = result.detections[definition]
        if got.sources != ref.sources or got.threshold != ref.threshold:
            raise AssertionError(
                f"{label}: definition-{definition} detections diverged"
            )
    print(f"  ok: {label} is bit-identical to the fault-free reference")


def scenario_retry(capture_dir, workers, telemetry):
    """Injected kills on every shard, absorbed by the retry budget."""
    result = parallel_detect_directory(
        capture_dir, TIMEOUT, DARK_SIZE, CONFIG,
        workers=workers,
        telemetry=telemetry,
        retry=RetryPolicy(max_retries=2, backoff_seconds=0.01),
        fault_plan=FaultPlan(kill={shard: 1 for shard in range(workers)}),
    )
    return result


def scenario_respawn(capture_dir, workers, telemetry):
    """A hard worker abort (os._exit) absorbed by pool respawn."""
    result = parallel_detect_directory(
        capture_dir, TIMEOUT, DARK_SIZE, CONFIG,
        workers=workers,
        telemetry=telemetry,
        retry=RetryPolicy(max_retries=2, backoff_seconds=0.01),
        fault_plan=FaultPlan(abort={0: 1}),
    )
    assert telemetry.health.respawns >= 1, "expected a pool respawn"
    return result


def scenario_resume(capture_dir, workers, telemetry, run_dir):
    """Interrupt a checkpointed run, then complete it via resume_run."""
    victim = workers - 1
    try:
        parallel_detect_directory(
            capture_dir, TIMEOUT, DARK_SIZE, CONFIG,
            workers=workers,
            use_processes=False,
            retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
            fault_plan=FaultPlan(kill={victim: 1}),
            checkpoint_dir=run_dir,
        )
    except ShardFailedError:
        pass
    else:
        raise AssertionError("interrupted run should have failed")
    result = resume_run(run_dir, telemetry=telemetry)
    assert telemetry.health.checkpoint_hits >= 1, "expected checkpoint reuse"
    return result


def scenario_quarantine(capture_dir, workers, telemetry):
    """Corrupt one chunk; degraded mode skips it and accounts the loss."""
    paths = sorted(Path(capture_dir).glob("chunk-*.npz"))
    victim = paths[len(paths) // 2]
    original = victim.read_bytes()
    victim.write_bytes(b"deliberately damaged archive")
    try:
        result = parallel_detect_directory(
            capture_dir, TIMEOUT, DARK_SIZE, CONFIG,
            workers=workers,
            telemetry=telemetry,
            on_corrupt="quarantine",
        )
        assert telemetry.health.quarantined_chunks == [str(victim)]
        survivors = PacketBatch.concat(
            [load_packets_npz(p) for p in paths if p != victim]
        )
        ref_events = build_events(survivors, TIMEOUT)
        ref_detections = detect_all(ref_events, DARK_SIZE, CONFIG)
        return result, ref_events, ref_detections
    finally:
        victim.write_bytes(original)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="health JSON path (default: benchmarks/results/BENCH_fault_health_<N>.json)",
    )
    args = parser.parse_args()
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    out = args.out or (
        Path(__file__).parent / "results" / f"BENCH_fault_health_{args.workers}.json"
    )

    batch = build_capture()
    ref_events = build_events(batch, TIMEOUT)
    ref_detections = detect_all(ref_events, DARK_SIZE, CONFIG)

    telemetry = PipelineTelemetry(chunk_seconds=CHUNK_SECONDS)
    print(f"fault matrix @ {args.workers} workers")
    with tempfile.TemporaryDirectory() as tmp:
        capture_dir = Path(tmp) / "capture"
        n_chunks = save_packets_chunked(batch, capture_dir, CHUNK_SECONDS)
        print(f"  capture: {len(batch):,} packets in {n_chunks} chunks")

        result = scenario_retry(capture_dir, args.workers, telemetry)
        assert_identical(result, ref_events, ref_detections, "retry")

        result = scenario_respawn(capture_dir, args.workers, telemetry)
        assert_identical(result, ref_events, ref_detections, "respawn")

        result = scenario_resume(
            capture_dir, args.workers, telemetry, Path(tmp) / "run"
        )
        assert_identical(result, ref_events, ref_detections, "resume")

        result, q_events, q_detections = scenario_quarantine(
            capture_dir, args.workers, telemetry
        )
        assert_identical(result, q_events, q_detections, "quarantine")

    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {"workers": args.workers, "health": telemetry.health.as_dict()}
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  health telemetry -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
