"""Figure 4 — Top-25 ports targeted by the AH, with tool fingerprints.

Regenerates the service ranking for both years with the
ZMap/Masscan/Other IP-ID fingerprint split.  Expected shape: Redis
(6379/TCP) and Telnet (23/TCP) lead, SSH ranks in the top-3, ~20 of the
top-25 services recur across both years, TCP dominates (only a few UDP
services), TCP/445 is absent, and the ZMap/Masscan fingerprints are
prominent (unlike in the 2014 study).
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.characterize import port_overlap
from repro.packet import Protocol
from repro.scanners.ports import service_label


def _rows(report):
    ranked = report.top_ports(definition=1, top_n=25)
    rows = []
    for rank, row in enumerate(ranked, start=1):
        total = row.packets
        rows.append(
            [
                f"#{rank}",
                service_label(row.port, Protocol(row.proto)),
                f"{total:,}",
                render_percent(row.zmap_packets / total, 0),
                render_percent(row.masscan_packets / total, 0),
                render_percent(row.other_packets / total, 0),
            ]
        )
    return ranked, rows


def test_fig4_top_ports(benchmark, darknet_2021, darknet_2022, results_dir):
    ranked_2021, rows_2021 = benchmark.pedantic(
        lambda: _rows(darknet_2021), rounds=1, iterations=1
    )
    ranked_2022, rows_2022 = _rows(darknet_2022)

    blocks = [
        format_table(
            ["rank", "service", "packets", "zmap", "masscan", "other"],
            rows,
            title=f"Figure 4: top-25 AH ports — {label}",
            align_right=False,
        )
        for label, rows in (("2021", rows_2021), ("2022", rows_2022))
    ]
    emit(results_dir, "fig4_top_ports", "\n\n".join(blocks))

    for ranked in (ranked_2021, ranked_2022):
        keys = [(r.port, r.proto) for r in ranked]
        top3_ports = [k[0] for k in keys[:3]]
        # Redis and Telnet lead; SSH in the top three.
        assert 6_379 in top3_ports
        assert 23 in top3_ports
        assert 22 in [k[0] for k in keys[:5]]
        # TCP/445 absent from the AH ranking (it lives in small scans).
        assert 445 not in [k[0] for k in keys]
        # Few UDP services; TCP dominates.
        udp = [k for k in keys if k[1] == Protocol.UDP.value]
        assert len(udp) <= 6
        # ZMap/Masscan fingerprints are prominent overall.
        total = sum(r.packets for r in ranked)
        tooled = sum(r.zmap_packets + r.masscan_packets for r in ranked)
        assert tooled / total > 0.3

    # Year-over-year stability: ~20 of the top 25 recur.
    assert port_overlap(ranked_2021, ranked_2022) >= 15
