"""Performance + memory baseline for lazy capture generation.

Pins the two claims of the lazy-emission layer on the darknet-year
scenario (a 6-day window — long enough that steady-state costs dominate
fixed ones, short enough for the smoke pass):

* **Memory** — generating the capture window by window
  (`LazyCaptureSource`) peaks at <= 0.25x of materializing it
  (`Telescope.capture`), because no process ever holds more than ~one
  chunk plus the open generation spans.
* **Time** — since the batched span derivation, streaming the capture
  is no slower than materializing it (`time_ratio <= 1.0`); both
  ratios land in the JSON and are gated by ``benchmarks/perf_gate.py``.
* **Wall-clock** — with 4 workers, shard-local lazy generation + sharded
  detection (`parallel_generate_detect`) beats the PR 2 pipeline
  (materialize the full capture, then stream-detect serially) by >= 2x
  end to end.

Results land in ``benchmarks/results/BENCH_emit.json`` so future PRs
have a machine-readable baseline; the CI bench-smoke artifact step
uploads the whole results directory.  Self-timed with ``perf_counter``
(not the ``benchmark`` fixture) so a single pass still measures and
asserts under ``--benchmark-disable``.
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, emit
from repro.analysis.tables import format_table
from repro.core.streaming import stream_detect
from repro.parallel import parallel_generate_detect
from repro.sim.runner import _build_world_base
from repro.sim.scenario import darknet_year_scenario
from repro.telescope.chunks import LazyCaptureSource

CHUNK_SECONDS = 3_600.0
DAYS = 6
#: window for the tracemalloc comparison — tracing slows allocation ~4x,
#: so the memory claim is pinned on a 2-day slice of the same scenario.
MEMORY_DAYS = 2

_BENCH_JSON = RESULTS_DIR / "BENCH_emit.json"


def _merge_bench_json(section: str, payload: dict) -> None:
    """Fold one test's numbers into the shared BENCH_emit.json."""
    data = {}
    if _BENCH_JSON.exists():
        data = json.loads(_BENCH_JSON.read_text())
    data[section] = payload
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _batch_bytes(batch) -> int:
    return sum(
        getattr(batch, column).nbytes
        for column in ("ts", "src", "dst", "dport", "proto", "ipid")
    )


@pytest.fixture(scope="module")
def emit_world():
    scenario = darknet_year_scenario(2021, days=DAYS)
    _, telescope, population, _, _, timeout = _build_world_base(scenario)
    return scenario, telescope, population, timeout


def test_perf_emit_throughput_and_memory(emit_world, results_dir):
    """Lazy generation: same packets, fraction of the peak memory."""
    scenario, telescope, population, timeout = emit_world
    window = scenario.window()
    view = telescope.view()

    # Throughput, untraced: materialize vs stream the same capture.
    t0 = time.perf_counter()
    capture = telescope.capture(population.scanners, window)
    materialize_seconds = time.perf_counter() - t0
    total_packets = len(capture)
    capture_bytes = _batch_bytes(capture.packets)
    del capture

    t0 = time.perf_counter()
    lazy_packets = 0
    peak_chunk = 0
    source = LazyCaptureSource.from_population(
        population.scanners, view, CHUNK_SECONDS, window=window
    )
    for chunk in source:
        lazy_packets += len(chunk)
        peak_chunk = max(peak_chunk, len(chunk))
    lazy_seconds = time.perf_counter() - t0
    assert lazy_packets == total_packets

    # Peak traced allocation, on a shorter slice of the same scenario.
    mem_window = (0.0, MEMORY_DAYS * scenario.clock.seconds_per_day)
    tracemalloc.start()
    mem_capture = telescope.capture(population.scanners, mem_window)
    materialized_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    mem_packets = len(mem_capture)
    del mem_capture

    tracemalloc.start()
    lazy_mem_packets = 0
    for chunk in LazyCaptureSource.from_population(
        population.scanners, view, CHUNK_SECONDS, window=mem_window
    ):
        lazy_mem_packets += len(chunk)
    lazy_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert lazy_mem_packets == mem_packets

    from repro.io.shm import shared_memory_available

    _merge_bench_json(
        "emit",
        {
            "scenario": scenario.name,
            "days": DAYS,
            "chunk_seconds": CHUNK_SECONDS,
            "packets": total_packets,
            "peak_chunk_packets": peak_chunk,
            "capture_bytes": capture_bytes,
            "materialize_seconds": round(materialize_seconds, 3),
            "lazy_seconds": round(lazy_seconds, 3),
            "lazy_pkt_per_s": round(lazy_packets / lazy_seconds),
            "time_ratio": round(lazy_seconds / materialize_seconds, 4),
            "spans_derived": source.spans_derived,
            "spans_emitted": source.spans_emitted,
            "memory_days": MEMORY_DAYS,
            "memory_packets": mem_packets,
            "materialized_peak_bytes": materialized_peak,
            "lazy_peak_bytes": lazy_peak,
            "peak_ratio": round(lazy_peak / materialized_peak, 4),
            "shm": shared_memory_available(),
        },
    )
    emit(
        results_dir,
        "perf_emit",
        format_table(
            ["metric", "value"],
            [
                ("packets", f"{total_packets:,}"),
                ("materialize", f"{materialize_seconds:.2f} s"),
                (
                    "lazy stream",
                    f"{lazy_seconds:.2f} s "
                    f"({lazy_packets / lazy_seconds:,.0f} pkt/s)",
                ),
                ("capture bytes", f"{capture_bytes / 1e6:,.0f} MB"),
                (
                    f"materialized peak ({MEMORY_DAYS}d)",
                    f"{materialized_peak / 1e6:,.0f} MB",
                ),
                (f"lazy peak ({MEMORY_DAYS}d)", f"{lazy_peak / 1e6:,.0f} MB"),
            ],
            title=f"Lazy emission — {scenario.name} ({DAYS} days)",
            align_right=False,
        ),
    )
    # The acceptance claims: streaming is no slower than materializing
    # (the batched span derivation closed the old 30% gap) and peaks at
    # no more than a quarter of the materialized allocation.
    assert lazy_seconds <= materialize_seconds
    assert lazy_peak <= 0.25 * materialized_peak


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor needs >= 4 cores",
)
def test_perf_lazy_parallel_speedup(emit_world, results_dir):
    """4-worker shard-local generation beats the PR 2 pipeline >= 2x.

    The baseline is what every run paid before lazy emission:
    materialize the full capture serially, then stream-detect it.  The
    contender never materializes anything — each worker generates its
    own shard's packets while detecting — and must also produce
    identical events.
    """
    scenario, telescope, population, timeout = emit_world
    window = scenario.window()
    view = telescope.view()

    t0 = time.perf_counter()
    capture = telescope.capture(population.scanners, window)
    events, _ = stream_detect(
        (c for _, _, c in capture.packets.iter_time_chunks(CHUNK_SECONDS)),
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
    )
    baseline_seconds = time.perf_counter() - t0
    n = len(capture)
    del capture

    t0 = time.perf_counter()
    result = parallel_generate_detect(
        population.scanners,
        view,
        CHUNK_SECONDS,
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        workers=4,
        window=window,
    )
    lazy_seconds = time.perf_counter() - t0

    assert np.array_equal(result.events.src, events.src)
    assert np.array_equal(result.events.start, events.start)
    assert np.array_equal(result.events.packets, events.packets)

    speedup = baseline_seconds / lazy_seconds
    _merge_bench_json(
        "parallel",
        {
            "scenario": scenario.name,
            "days": DAYS,
            "workers": 4,
            "packets": n,
            "baseline_seconds": round(baseline_seconds, 3),
            "lazy_seconds": round(lazy_seconds, 3),
            "speedup": round(speedup, 3),
            "workers_detail": [
                {
                    "shard": r.shard,
                    "packets": r.packets,
                    "generate_seconds": round(r.generate_seconds, 3),
                    "seconds": round(r.seconds, 3),
                }
                for r in result.worker_reports
            ],
        },
    )
    rows = [
        ("packets", f"{n:,}"),
        (
            "materialize + serial detect",
            f"{baseline_seconds:.2f} s ({n / baseline_seconds:,.0f} pkt/s)",
        ),
        (
            "lazy generate+detect, 4 workers",
            f"{lazy_seconds:.2f} s ({n / lazy_seconds:,.0f} pkt/s)",
        ),
        ("speedup", f"{speedup:.2f}x"),
    ] + [
        (
            f"worker {r.shard}",
            f"{r.packets:,} pkts, gen {r.generate_seconds:.2f} s, "
            f"total {r.seconds:.2f} s",
        )
        for r in result.worker_reports
    ]
    emit(
        results_dir,
        "perf_emit_speedup",
        format_table(
            ["metric", "value"],
            rows,
            title=f"Lazy shard-local generation — {scenario.name}",
            align_right=False,
        ),
    )
    assert speedup >= 2.0
