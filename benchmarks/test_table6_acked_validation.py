"""Table 6 — Validation via the "Acknowledged Scanners" lists.

Regenerates, per definition and per darknet dataset: exact published-IP
matches, reverse-DNS ("domain") matches, total matched IPs, their
darknet packets and share of all AH packets, and the number of distinct
organizations.  Expected shape: domain matches dominate (published
lists lag the real fleets), ACKed AH carry ~20-35% of AH packets, and a
few dozen orgs are involved.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent


def test_table6_acked_validation(benchmark, darknet_2021, darknet_2022, results_dir):
    def build():
        return {
            "2021": darknet_2021.acked_validation_table(),
            "2022": darknet_2022.acked_validation_table(),
        }

    data = benchmark.pedantic(build, rounds=1, iterations=1)

    headers = ["", "D1 2021", "D1 2022", "D2 2021", "D2 2022", "D3 2021", "D3 2022"]
    metrics = (
        ("IP match", lambda r: str(r.ip_matches)),
        ("Domain matches", lambda r: str(r.domain_matches)),
        ("Total IPs", lambda r: str(r.total_ips)),
        ("Packets", lambda r: f"{r.packets:,}"),
        ("Packets (% all AH)", lambda r: render_percent(r.packets_share_of_ah, 1)),
        ("Total Orgs", lambda r: str(r.orgs)),
    )
    rows = []
    for name, getter in metrics:
        row = [name]
        for definition in (1, 2, 3):
            for year in ("2021", "2022"):
                row.append(getter(data[year][definition]))
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title='Table 6: Validation via "ACKed Scanners" lists',
        align_right=False,
    )
    emit(results_dir, "table6_acked_validation", table)

    for year in ("2021", "2022"):
        for definition in (1, 2):
            result = data[year][definition]
            assert result.total_ips > 0
            # rDNS recovers fleet members the published list misses.
            assert result.domain_matches > 0
            # ACKed AH are a minority of IPs but a solid packet share.
            assert 0.05 < result.packets_share_of_ah < 0.6
            assert result.orgs >= 5
