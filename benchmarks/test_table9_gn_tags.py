"""Table 9 — Honeypot (GreyNoise) tags for the non-ACKed AH.

Regenerates the top-20 behavior tags of the aggressive hitters that are
*not* acknowledged research scanners, from the simulated distributed
honeypot database.  Expected shape: botnet/bruteforcer tags (Mirai,
Telnet/SSH bruteforcers) and tool tags (ZMap Client) dominate.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table


def test_table9_gn_tags(benchmark, darknet_2022, results_dir):
    rows_data = benchmark.pedantic(
        lambda: darknet_2022.greynoise_tags_table(definition=1, top_n=20),
        rounds=1,
        iterations=1,
    )

    rows = [
        [f"#{rank}", tag, str(count)]
        for rank, (tag, count) in enumerate(rows_data, start=1)
    ]
    table = format_table(
        ["Rank", "GreyNoise Tags", "IP Count"],
        rows,
        title="Table 9: GN tags for non-ACKed AH (Darknet-2)",
        align_right=False,
    )
    emit(results_dir, "table9_gn_tags", table)

    tags = dict(rows_data)
    assert tags, "expected a populated tag table"
    # Mirai is a leading tag among the miscreant AH; tool fingerprints
    # (ZMap) and service bruteforcers appear as well.
    assert "Mirai" in tags
    assert "ZMap Client" in tags
    assert any("Bruteforcer" in t or "Worm" in t or "Scanner" in t for t in tags)
    # Sorted by IP count, descending.
    counts = [c for _, c in rows_data]
    assert counts == sorted(counts, reverse=True)
