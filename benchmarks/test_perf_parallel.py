"""Performance benchmark for the shard-parallel detection layer.

Times the serial streaming pipeline against :func:`parallel_detect`
over the darknet-year capture and pins the contract from both sides:
the parallel path must return *identical* events and detections (the
determinism guarantee) and, with 4 workers on a machine that has the
cores for it, must run at least 2x faster than serial.

Self-timed with ``perf_counter`` rather than the ``benchmark`` fixture
so a single pass still measures and asserts under
``--benchmark-disable`` (the CI bench-smoke mode).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.streaming import stream_detect
from repro.parallel import parallel_detect
from repro.sim.runner import build_world
from repro.sim.scenario import darknet_year_scenario

CHUNK_SECONDS = 3_600.0


@pytest.fixture(scope="module")
def darknet_world():
    """The darknet-year capture plus everything detection needs."""
    scenario = darknet_year_scenario(2021)
    _, telescope, _, capture, _, _, timeout = build_world(scenario)
    return scenario, capture, telescope.size, timeout


def _chunks(capture):
    return (c for _, _, c in capture.packets.iter_time_chunks(CHUNK_SECONDS))


def _time_serial(scenario, capture, dark_size, timeout):
    t0 = time.perf_counter()
    events, detections = stream_detect(
        _chunks(capture),
        timeout,
        dark_size,
        scenario.detection,
        scenario.clock.seconds_per_day,
    )
    return time.perf_counter() - t0, events, detections


def _time_parallel(scenario, capture, dark_size, timeout, workers):
    t0 = time.perf_counter()
    result = parallel_detect(
        _chunks(capture),
        timeout,
        dark_size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        workers=workers,
    )
    return time.perf_counter() - t0, result


def test_perf_parallel_matches_serial(darknet_world):
    """Determinism on the real dataset: 2-way shard == serial, exactly."""
    scenario, capture, dark_size, timeout = darknet_world
    _, events, detections = _time_serial(scenario, capture, dark_size, timeout)
    _, result = _time_parallel(scenario, capture, dark_size, timeout, 2)
    assert np.array_equal(result.events.src, events.src)
    assert np.array_equal(result.events.start, events.start)
    assert np.array_equal(result.events.packets, events.packets)
    for definition in (1, 2, 3):
        assert result.detections[definition].sources == detections[definition].sources
        assert result.detections[definition].threshold == detections[definition].threshold


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor needs >= 4 cores",
)
def test_perf_parallel_speedup(darknet_world, results_dir):
    """4 workers must beat serial by >= 2x on the darknet-year capture."""
    scenario, capture, dark_size, timeout = darknet_world
    serial_s, events, _ = _time_serial(scenario, capture, dark_size, timeout)
    parallel_s, result = _time_parallel(
        scenario, capture, dark_size, timeout, 4
    )
    assert np.array_equal(result.events.src, events.src)

    speedup = serial_s / parallel_s
    n = len(capture)
    rows = [
        ("packets", f"{n:,}"),
        ("serial", f"{serial_s:.2f} s ({n / serial_s:,.0f} pkt/s)"),
        ("4 workers", f"{parallel_s:.2f} s ({n / parallel_s:,.0f} pkt/s)"),
        ("speedup", f"{speedup:.2f}x"),
    ] + [
        (
            f"worker {r.shard}",
            f"{r.packets:,} pkts in {r.seconds:.2f} s",
        )
        for r in result.worker_reports
    ]
    emit(
        results_dir,
        "perf_parallel_speedup",
        format_table(
            ["metric", "value"],
            rows,
            title=f"Shard-parallel speedup — {scenario.name}",
            align_right=False,
        ),
    )
    assert speedup >= 2.0
