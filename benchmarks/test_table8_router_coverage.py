"""Table 8 — Share of the active AH population seen at each router.

Regenerates the per-day, per-definition fraction of darknet-identified
AH whose packets appear at each core router's (sampled) flows.
Expected shape: router-1 observes nearly all AH, router-2 nearly as
many, router-3 roughly half — the routing-policy signature the paper
uses to argue the AH lists transfer across vantage points.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent


def test_table8_router_coverage(benchmark, flows_week, results_dir):
    coverage = benchmark.pedantic(
        flows_week.router_coverage_table, rounds=1, iterations=1
    )

    clock = flows_week.clock
    rows = []
    for definition in (1, 2, 3):
        for row in coverage[definition]:
            rows.append(
                [
                    f"D{definition}",
                    clock.label(row["day"]),
                    str(row["active_ah"]),
                ]
                + [render_percent(f, 1) for f in row["seen_fraction"]]
            )
    table = format_table(
        ["Def", "Day", "# of AH", "Router-1", "Router-2", "Router-3"],
        rows,
        title="Table 8: Active AH observed at each router (Flows-1 week)",
        align_right=False,
    )
    emit(results_dir, "table8_router_coverage", table)

    d1 = coverage[1]
    assert d1
    r1 = np.array([row["seen_fraction"][0] for row in d1])
    r2 = np.array([row["seen_fraction"][1] for row in d1])
    r3 = np.array([row["seen_fraction"][2] for row in d1])
    # Router-1 sees the large majority of the AH population; router-3
    # sees notably fewer (paper: ~97-99% vs ~50%).
    assert r1.mean() > 0.75
    assert r1.mean() > r3.mean()
    assert r2.mean() > r3.mean()
