"""Serve-path throughput benchmark: micro-batched pooled folds vs per-chunk.

Boots the real ingestion server (``python -m repro.cli serve``) twice
over the same N-tenant workload and measures aggregate ingest
throughput end to end — HTTP, queueing, folding, back-pressure and all:

* **per_chunk** — the pre-optimization serve path: ``--fold-processes
  0`` (folds run on the event-loop executor threads, GIL-bound) and
  ``coalesce_chunks=1`` (every queued wire chunk folds alone);
* **pooled** — the shipping defaults: adaptive micro-batching (drain
  the queue up to the chunk/byte budget, fold once) feeding the
  sharded fold-process pool.

Each tenant is driven from its own thread through its own
:class:`ServeClient` (the load generator), while a separate prober
thread measures **query-under-load** latency — AH queries answered
through the same per-tenant command queue the folds travel on.  After
both runs, the served AH sets (definitions 1–3) must be identical to
each other *and* to an offline :class:`DetectionEngine` fed the same
chunks serially — the optimization must not move results by a single
source.

Results land in ``benchmarks/results/BENCH_serve.json``; the CI
perf-gate compares the pooled/per-chunk speedup against the committed
baseline (``benchmarks/perf_gate.py``).  The ``compare`` section is
only emitted on hosts with >= ``MIN_COMPARE_CPUS`` cores — a 3x claim
measured on a 1-core box would be noise, and the gate treats the
absent metric as not-enforceable.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_serve_bench.py --smoke
    PYTHONPATH=src python benchmarks/run_serve_bench.py  # full workload
"""

import argparse
import hashlib
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.run_serve_smoke import _start_server  # noqa: E402
from repro.config import DetectionConfig  # noqa: E402
from repro.core.engine import DetectionEngine  # noqa: E402
from repro.io.packetlog import packets_to_npz_bytes  # noqa: E402
from repro.packet import PacketBatch, Protocol  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.loadgen import drive, percentile  # noqa: E402
from repro.serve.tenants import TenantConfig  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_serve.json"

#: below this many cores the pooled-vs-per-chunk comparison is noise;
#: the throughput sections are still emitted, the speedup is not.
MIN_COMPARE_CPUS = 4

_DARK_SIZE = 256
_TIMEOUT = 600.0
_DAY_SECONDS = 86_400.0
_DETECTION = DetectionConfig(
    alpha=0.05, min_packet_threshold=4, min_port_threshold=2
)


# ----------------------------------------------------------------------
# Workload synthesis
# ----------------------------------------------------------------------

def _capture(seed: int, n_packets: int, duration: float) -> PacketBatch:
    """A synthetic telescope capture with a detectable heavy tail."""
    rng = np.random.default_rng(seed)
    n_sources = max(50, n_packets // 400)
    # Zipf-flavored source activity: a few sources send most packets.
    weights = 1.0 / np.arange(1, n_sources + 1, dtype=np.float64)
    weights /= weights.sum()
    return PacketBatch(
        ts=np.sort(rng.random(n_packets) * duration),
        src=rng.choice(
            np.arange(1, n_sources + 1, dtype=np.uint32),
            n_packets,
            p=weights,
        ),
        dst=rng.integers(0, _DARK_SIZE, n_packets).astype(np.uint32),
        dport=rng.choice(
            np.array([22, 23, 80, 443, 3389, 5900], dtype=np.uint16),
            n_packets,
        ),
        proto=np.full(n_packets, Protocol.TCP_SYN.value, dtype=np.uint8),
        ipid=np.zeros(n_packets, dtype=np.uint16),
    )


def _payloads(batch: PacketBatch, n_chunks: int):
    """Even packet-count chunks as ``(n_packets, npz_bytes)`` pairs."""
    edges = np.linspace(0, len(batch), n_chunks + 1).astype(int)
    out = []
    for a, b in zip(edges[:-1], edges[1:]):
        chunk = batch.select(slice(int(a), int(b)))
        if len(chunk):
            out.append((len(chunk), packets_to_npz_bytes(chunk)))
    return out


def _spread_tenant_ids(n_tenants: int, processes: int):
    """Tenant ids whose fold-pool shard keys cover distinct workers.

    Worker affinity is ``blake2b(repr((tenant_id, shard))) % processes``
    (see :meth:`FoldPool.worker_index`); with only N ~ processes
    tenants a random draw can pile several onto one worker, which
    would benchmark hash luck rather than the fold path.  A real
    deployment amortizes this over many tenants/shards; the bench gets
    the same even spread by picking ids deliberately.
    """

    def worker_of(tenant_id):
        digest = hashlib.blake2b(
            repr((tenant_id, 0)).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % processes

    chosen, covered, i = [], set(), 0
    while len(chosen) < n_tenants and i < 10_000:
        name = f"tenant-{i:03d}"
        i += 1
        worker = worker_of(name)
        if worker in covered and len(covered) < processes:
            continue
        chosen.append(name)
        covered.add(worker)
    return chosen


def _tenant_config(**overrides) -> TenantConfig:
    base = dict(
        timeout=_TIMEOUT,
        dark_size=_DARK_SIZE,
        detection=_DETECTION,
        day_seconds=_DAY_SECONDS,
        workers=1,
        snapshot_every_chunks=None,
        queue_depth=8,
    )
    base.update(overrides)
    return TenantConfig(**base)


# ----------------------------------------------------------------------
# One measured server run
# ----------------------------------------------------------------------

def _run_mode(
    label: str,
    payloads: dict,
    config: TenantConfig,
    extra_args,
    snapshot_root: Path,
) -> dict:
    """Boot a server, drive all tenants concurrently, measure, query."""
    proc, admin = _start_server(snapshot_root / label, extra_args=extra_args)
    tenant_ids = list(payloads)
    try:
        for tenant_id in tenant_ids:
            admin.create_tenant(tenant_id, config)

        # Warm-up: first chunk of each tenant, outside the timed
        # window (covers connection setup and first-fold warmup).
        for tenant_id in tenant_ids:
            drive(admin, tenant_id, payloads[tenant_id][:1], sync=True)

        stats, errors = {}, []
        barrier = threading.Barrier(len(tenant_ids) + 1)
        done = threading.Event()
        query_seconds = []

        def _drive_tenant(tenant_id):
            with ServeClient(admin.host, admin.port) as client:
                barrier.wait()
                try:
                    stats[tenant_id] = drive(
                        client, tenant_id, payloads[tenant_id][1:]
                    )
                except Exception as exc:  # surfaced after join
                    errors.append(f"{tenant_id}: {exc}")

        def _probe_queries():
            # AH queries ride the same per-tenant queue as the folds:
            # this is the latency a dashboard sees mid-burst.
            with ServeClient(admin.host, admin.port) as client:
                while not done.is_set():
                    t0 = time.perf_counter()
                    client.ah_sources(tenant_ids[0], 1)
                    query_seconds.append(time.perf_counter() - t0)
                    done.wait(0.05)

        threads = [
            threading.Thread(target=_drive_tenant, args=(tid,))
            for tid in tenant_ids
        ]
        prober = threading.Thread(target=_probe_queries)
        for thread in threads:
            thread.start()
        prober.start()
        barrier.wait()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        done.set()
        prober.join()
        if errors:
            raise SystemExit(f"[{label}] drive failed: {errors}")

        ah, health = {}, admin.health()
        for tenant_id in tenant_ids:
            ah[tenant_id] = {
                definition: admin.ah_sources(tenant_id, definition)
                for definition in (1, 2, 3)
            }

        chunks = sum(s.chunks for s in stats.values())
        packets = sum(s.packets for s in stats.values())
        acks = [x for s in stats.values() for x in s.ack_seconds]
        histogram = {}
        for tenant_id in tenant_ids:
            serve = health["tenants"][tenant_id]["serve"]
            for size, count in serve["coalesce_histogram"].items():
                histogram[size] = histogram.get(size, 0) + count
        summary = {
            "fold_processes": health["fold_processes"],
            "seconds": round(wall, 4),
            "chunks": chunks,
            "packets": packets,
            "chunks_per_second": round(chunks / wall, 2),
            "packets_per_second": round(packets / wall, 1),
            "ack_p50_ms": round(percentile(acks, 0.50) * 1e3, 3),
            "ack_p99_ms": round(percentile(acks, 0.99) * 1e3, 3),
            "query_p50_ms": round(percentile(query_seconds, 0.50) * 1e3, 3),
            "query_p99_ms": round(percentile(query_seconds, 0.99) * 1e3, 3),
            "queries": len(query_seconds),
            "retries": sum(s.retries for s in stats.values()),
            "coalesce_histogram": dict(
                sorted(histogram.items(), key=lambda kv: int(kv[0]))
            ),
        }
        print(
            f"[{label}] {chunks} chunks / {packets:,} packets in "
            f"{wall:.2f}s — {summary['chunks_per_second']:.1f} chunks/s, "
            f"{summary['packets_per_second']:,.0f} pkt/s, "
            f"ack p99 {summary['ack_p99_ms']:.1f}ms, "
            f"query p99 {summary['query_p99_ms']:.1f}ms"
        )
        admin.close()
    except BaseException:
        proc.kill()
        raise
    proc.terminate()
    proc.wait(timeout=30)
    return {"summary": summary, "ah": ah}


def _offline_ah(payloads: dict) -> dict:
    """Ground truth: a serial engine folds each tenant's chunks."""
    from repro.io.packetlog import packets_from_npz_bytes

    out = {}
    for tenant_id, pairs in payloads.items():
        engine = DetectionEngine(
            _TIMEOUT, _DARK_SIZE, _DETECTION, _DAY_SECONDS, workers=1
        )
        for _, blob in pairs:
            engine.ingest(packets_from_npz_bytes(blob))
        result = engine.query()
        out[tenant_id] = {
            definition: {int(s) for s in result.ah_sources(definition)}
            for definition in (1, 2, 3)
        }
    return out


def _assert_parity(label: str, served: dict, reference: dict) -> None:
    for tenant_id, by_definition in reference.items():
        for definition, expected in by_definition.items():
            got = served[tenant_id][definition]
            assert got == expected, (
                f"[{label}] tenant {tenant_id} definition {definition}: "
                f"served {len(got)} sources, expected {len(expected)}"
            )


# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload (CI serve-smoke lane); full is ~5x bigger",
    )
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument(
        "--journal-fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="write-ahead journal fsync policy for both measured modes "
        "(default: the shipping 'batch')",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the write-ahead chunk journal — measures the "
        "serve path without the durability tax, for A/B overhead runs",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULTS_PATH,
        help=f"output JSON path (default {RESULTS_PATH})",
    )
    args = parser.parse_args(argv)

    chunks_per_tenant = 16 if args.smoke else 40
    packets_per_chunk = 6_000 if args.smoke else 20_000
    cpu_count = os.cpu_count() or 1
    compare_ok = cpu_count >= MIN_COMPARE_CPUS

    tenant_ids = _spread_tenant_ids(
        args.tenants, min(MIN_COMPARE_CPUS, cpu_count)
    )
    payloads = {
        tenant_id: _payloads(
            _capture(
                seed=1_000 + i,
                n_packets=chunks_per_tenant * packets_per_chunk,
                duration=6 * 3_600.0,
            ),
            chunks_per_tenant,
        )
        for i, tenant_id in enumerate(tenant_ids)
    }
    total = sum(n for pairs in payloads.values() for n, _ in pairs)
    print(
        f"[workload] {args.tenants} tenants x {chunks_per_tenant} chunks "
        f"x ~{packets_per_chunk:,} packets = {total:,} packets "
        f"({cpu_count} cores)"
    )

    reference = _offline_ah(payloads)

    journal_args = (
        ("--no-journal",)
        if args.no_journal
        else ("--journal-fsync", args.journal_fsync)
    )
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
        root = Path(tmp)
        per_chunk = _run_mode(
            "per_chunk",
            payloads,
            _tenant_config(coalesce_chunks=1),
            ("--fold-processes", "0") + journal_args,
            root,
        )
        pooled = _run_mode(
            "pooled",
            payloads,
            _tenant_config(),
            # shipping default otherwise: auto-sized pool + coalescing
            journal_args,
            root,
        )

    _assert_parity("per_chunk", per_chunk["ah"], reference)
    _assert_parity("pooled", pooled["ah"], reference)
    print("[parity] AH sets identical: per_chunk == pooled == offline")

    payload = {
        "host": {
            "cpu_count": cpu_count,
            "smoke": bool(args.smoke),
            "journal": "off" if args.no_journal else args.journal_fsync,
        },
        "workload": {
            "tenants": args.tenants,
            "chunks_per_tenant": chunks_per_tenant,
            "packets_per_chunk": packets_per_chunk,
            "total_packets": total,
        },
        "per_chunk": per_chunk["summary"],
        "pooled": pooled["summary"],
        "parity": {"identical": True, "definitions": [1, 2, 3]},
    }
    if compare_ok:
        speedup = (
            pooled["summary"]["chunks_per_second"]
            / per_chunk["summary"]["chunks_per_second"]
        )
        payload["compare"] = {
            "ingest_speedup": round(speedup, 3),
            "query_p99_ratio": round(
                pooled["summary"]["query_p99_ms"]
                / max(per_chunk["summary"]["query_p99_ms"], 1e-9),
                3,
            ),
        }
        print(f"[compare] pooled ingest speedup: {speedup:.2f}x")
    else:
        print(
            f"[compare] skipped: {cpu_count} < {MIN_COMPARE_CPUS} cores "
            "(throughput sections still recorded)"
        )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[ok] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
