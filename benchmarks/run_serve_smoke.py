"""End-to-end smoke test of the ingestion service (``repro.serve``).

Boots the real server as a subprocess (``python -m repro.cli serve``),
drives two tenants' captures through the load-generator client, and
asserts the served aggressive-hitter sets are identical to offline
:func:`repro.sim.runner.run_scenario` over the same captures — then
SIGKILLs the server mid-life and proves a restart from the snapshot
directory carries both tenants forward to the same answer.

What this pins down, in order:

1. the ``serve`` CLI subcommand boots and announces its bound port;
2. npz chunk ingest over HTTP reproduces the offline pipeline
   bit-for-bit (definitions 1, 2 and 3) for concurrent tenants with
   different worker counts;
3. kill-and-restore: after an abrupt ``SIGKILL`` (no graceful drain),
   a new server over the same ``--snapshot-dir`` restores tenant
   state and continued ingest still converges on the offline answer.

Run from the repo root (CI runs it as ``make serve-smoke``)::

    PYTHONPATH=src python benchmarks/run_serve_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.loadgen import chunk_payloads, drive  # noqa: E402
from repro.serve.tenants import TenantConfig  # noqa: E402
from repro.sim.runner import build_world, run_scenario  # noqa: E402
from repro.sim.scenario import tiny_scenario  # noqa: E402

CHUNK_SECONDS = 3_600.0
READY_PREFIX = "repro-serve listening on "
BOOT_TIMEOUT = 60.0


def _start_server(snapshot_dir: Path, extra_args=()):
    """Boot ``repro.cli serve`` on an ephemeral port; return (proc, client)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--snapshot-dir",
            str(snapshot_dir),
            *extra_args,
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    address = []
    ready = threading.Event()

    def _watch_stdout():
        for line in proc.stdout:
            line = line.strip()
            if line.startswith(READY_PREFIX) and not ready.is_set():
                host, _, port = line[len(READY_PREFIX):].rpartition(":")
                address.append((host, int(port)))
                ready.set()
        ready.set()  # EOF: unblock the waiter even on boot failure

    threading.Thread(target=_watch_stdout, daemon=True).start()
    if not ready.wait(BOOT_TIMEOUT) or not address:
        proc.kill()
        raise SystemExit("serve subprocess never announced a port")
    host, port = address[0]
    return proc, ServeClient(host, port)


def _tenant_config(scenario, timeout, dark_size, workers):
    return TenantConfig(
        timeout=timeout,
        dark_size=dark_size,
        detection=scenario.detection,
        day_seconds=scenario.clock.seconds_per_day,
        workers=workers,
        snapshot_every_chunks=32,
    )


def _assert_ah_parity(client, tenant_id, offline_detections):
    for definition in (1, 2, 3):
        served = client.ah_sources(tenant_id, definition)
        expected = {int(s) for s in offline_detections[definition].sources}
        assert served == expected, (
            f"tenant {tenant_id!r} definition {definition}: served "
            f"{len(served)} sources, offline {len(expected)}"
        )


def main() -> int:
    # Two telescopes with different traffic: the tiny scenario at two
    # seeds.  Offline run_scenario over each capture is the ground
    # truth the served answers must match exactly.
    scenarios = {
        "merit": tiny_scenario(),
        "campus": tiny_scenario(seed=777),
    }
    captures, configs, offline = {}, {}, {}
    for name, sc in scenarios.items():
        _, telescope, _, capture, _, _, timeout = build_world(sc)
        captures[name] = capture.packets
        workers = 2 if name == "campus" else 1
        configs[name] = _tenant_config(sc, timeout, telescope.size, workers)
        offline[name] = run_scenario(sc).detections
        print(
            f"[offline] {name}: {len(capture):,} packets, "
            f"AH1={len(offline[name][1].sources)} "
            f"AH2={len(offline[name][2].sources)} "
            f"AH3={len(offline[name][3].sources)}"
        )

    payloads = {
        name: list(chunk_payloads(capture, CHUNK_SECONDS))
        for name, capture in captures.items()
    }
    half = len(payloads["merit"]) // 2

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        snapshot_dir = Path(tmp) / "snapshots"

        # ---- Phase 1: boot, ingest, assert parity. ------------------
        started = time.monotonic()
        proc, client = _start_server(snapshot_dir)
        print(f"[phase 1] server up on port {client.port}")
        try:
            for name in scenarios:
                client.create_tenant(name, configs[name])
            # campus gets its whole capture; merit only the first half
            # (the rest rides through the restarted server).
            stats = drive(client, "campus", payloads["campus"])
            print(
                f"[phase 1] campus: {stats.chunks} chunks, "
                f"{stats.packets:,} packets, {stats.retries} retries, "
                f"{stats.throughput:,.0f} pkt/s over HTTP"
            )
            drive(client, "merit", payloads["merit"][:half])
            _assert_ah_parity(client, "campus", offline["campus"])
            health = client.health()
            assert health["ok"] and health["tenants"]["campus"]["errors"] == 0

            # Persist both tenants, then kill without ceremony.
            for name in scenarios:
                client.snapshot(name)
            client.close()
        except BaseException:
            proc.kill()
            raise
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        print("[phase 1] server killed (SIGKILL, no graceful drain)")

        # ---- Phase 2: restore from snapshots, finish merit. ---------
        proc, client = _start_server(snapshot_dir)
        try:
            restored = client.health()["tenants"]
            assert set(restored) == set(scenarios), restored
            assert restored["campus"]["packets"] == len(captures["campus"])
            print(
                f"[phase 2] restored tenants: "
                f"merit={restored['merit']['packets']:,} pkts, "
                f"campus={restored['campus']['packets']:,} pkts"
            )
            drive(client, "merit", payloads["merit"][half:])
            for name in scenarios:
                _assert_ah_parity(client, name, offline[name])
            status = client.status("merit")
            assert status["packets"] == len(captures["merit"])
            client.close()
        except BaseException:
            proc.kill()
            raise
        proc.terminate()
        proc.wait(timeout=30)

    elapsed = time.monotonic() - started
    print(
        f"[ok] serve smoke passed in {elapsed:.1f}s: two tenants, "
        "AH parity with offline run_scenario, kill-and-restore verified"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
