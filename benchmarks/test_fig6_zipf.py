"""Figure 6 (right) — Cumulative AH traffic share by ranked source.

Regenerates the Zipf-like concentration curve: AH sources ranked by
packet contribution, with the cumulative share of all AH traffic.
Expected shape: the top 1% of AH contribute well over their share
(paper: >25% of AH traffic on a typical day), so even a short blocklist
ameliorates a large fraction of the problem.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.figures import sparkline
from repro.analysis.tables import format_table, render_percent
from repro.core.characterize import top_fraction_share


def test_fig6_zipf(benchmark, darknet_2022, results_dir):
    curve = benchmark.pedantic(
        lambda: darknet_2022.zipf_contribution(definition=1),
        rounds=1,
        iterations=1,
    )

    marks = [0.01, 0.05, 0.10, 0.25, 0.50]
    rows = [
        [render_percent(m, 0), render_percent(top_fraction_share(curve, m), 1)]
        for m in marks
    ]
    rows.append(["curve", sparkline(curve, width=48)])
    table = format_table(
        ["top AH fraction", "share of AH traffic"],
        rows,
        title="Figure 6 (right): cumulative AH traffic by ranked IP",
        align_right=False,
    )
    emit(results_dir, "fig6_zipf", table)

    assert len(curve) == len(darknet_2022.detections[1])
    # Concentration: the top 1% of AH carry a disproportionate share.
    assert top_fraction_share(curve, 0.01) > 0.025
    # Monotone, normalized.
    assert np.all(np.diff(curve) >= -1e-12)
    assert curve[-1] == 1.0 if len(curve) else True
