"""Ablation — the Definition-1 address-dispersion threshold.

The paper inherits the 10% "large scan" cut-off from Durumeric et al.
This sweep varies the fraction of the dark space an event must touch
and reports the resulting AH population and its darknet packet share,
showing the threshold sits on a plateau: most aggressive scanners cover
far more than 10%, so the definition is insensitive to the exact value
— the property that makes the 10% convention safe to reuse.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.config import DetectionConfig
from repro.core.detection import detect_dispersion

FRACTIONS = (0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50)


def test_ablation_dispersion(benchmark, darknet_2022, results_dir):
    events = darknet_2022.result.events
    capture = darknet_2022.result.capture
    dark_size = darknet_2022.result.dark_size
    total_packets = len(capture)

    def sweep():
        out = []
        for fraction in FRACTIONS:
            config = DetectionConfig(dispersion_fraction=fraction)
            result = detect_dispersion(events, dark_size, config)
            packets = capture.packets_from(result.sources)
            out.append((fraction, len(result), packets / total_packets))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [render_percent(fraction, 0), str(count), render_percent(share, 1)]
        for fraction, count, share in results
    ]
    table = format_table(
        ["dispersion threshold", "def-1 AH", "AH darknet pkt share"],
        rows,
        title="Ablation: address-dispersion threshold (definition #1)",
        align_right=False,
    )
    emit(results_dir, "ablation_dispersion", table)

    counts = [c for _, c, _ in results]
    # Monotone: tighter thresholds shrink the population.
    assert counts == sorted(counts, reverse=True)
    # Plateau around the paper's 10%: halving or doubling the threshold
    # moves the population by far less than the threshold ratio.
    by_frac = {f: c for f, c, _ in results}
    assert by_frac[0.05] < 1.4 * by_frac[0.10]
    assert by_frac[0.20] > 0.6 * by_frac[0.10]
    # Even at 1% the detected set keeps a dominant packet share.
    assert results[0][2] > 0.5
