"""Shared scenario fixtures for the benchmark harness.

Each fixture runs one of the paper's dataset scenarios exactly once per
session; the individual benchmarks then time and print the *analyses*
(detection, joins, rankings) over those datasets, and write the
rendered tables to ``benchmarks/results/`` so the regenerated artifacts
survive the run.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see each table on stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import StudyReport, run_study
from repro.sim.scenario import (
    darknet_year_scenario,
    flows_day_scenario,
    flows_week_scenario,
    stream_72h_scenario,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def darknet_2021() -> StudyReport:
    """The Darknet-1 (2021) longitudinal dataset."""
    return run_study(darknet_year_scenario(2021))


@pytest.fixture(scope="session")
def darknet_2022() -> StudyReport:
    """The Darknet-2 (2022) longitudinal dataset."""
    return run_study(darknet_year_scenario(2022))


@pytest.fixture(scope="session")
def flows_week() -> StudyReport:
    """The Flows-1 week (2022-01-15 .. 01-21) with the ISP model."""
    return run_study(flows_week_scenario())


@pytest.fixture(scope="session")
def flows_day() -> StudyReport:
    """The Flows-2 day (2022-10-01) with the ISP model."""
    return run_study(flows_day_scenario())


@pytest.fixture(scope="session")
def stream_72h() -> StudyReport:
    """The 72-hour mirrored packet streams at both stations."""
    return run_study(stream_72h_scenario())
