"""Figure 2 — AH packet rates normalized by announced /24 count.

Regenerates the per-/24 normalization of the stream experiment: the
campus network, despite seeing a far smaller absolute AH fraction, is
hit *harder per announced /24* than the ISP station (which mirrors only
one of three core routers but normalizes over the whole ISP's /24s).
"""


from benchmarks.conftest import emit
from repro.analysis.figures import downsample, series_stats, sparkline
from repro.analysis.tables import format_table


def test_fig2_normalized_rates(benchmark, stream_72h, results_dir):
    def build():
        streams = stream_72h.stream_series()
        return {
            name: series.normalized_ah_rate() for name, series in streams.items()
        }

    normalized = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for name, series in normalized.items():
        stats = series_stats(series)
        rows.append(
            [
                name,
                str(stream_72h.stream_series()[name].slash24s),
                f"{stats['mean']:.4f}",
                f"{stats['p95']:.4f}",
                f"{stats['max']:.4f}",
                sparkline(downsample(series, 600), width=40),
            ]
        )
    table = format_table(
        ["network", "/24s", "mean pps//24", "p95", "max", "per-10min"],
        rows,
        title="Figure 2: normalized AH packet rate by /24 subnets",
        align_right=False,
    )
    emit(results_dir, "fig2_normalized_rates", table)

    # The paper's point: per /24, the campus is the more affected one.
    assert normalized["campus"].mean() > normalized["merit"].mean()
    assert normalized["campus"].mean() > 0
