"""Table 7 — Aggressive scanners across all definitions.

Regenerates, for both darknet datasets, the per-definition population
sizes (IPs, ASNs, orgs, countries) and every pairwise/triple
intersection.  Expected shape: definitions 1 and 2 overlap strongly
(Jaccard ~0.8 at paper scale), definition 3 is far smaller and nearly
disjoint from the other two.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table


def test_table7_definitions(benchmark, darknet_2021, darknet_2022, results_dir):
    def build():
        return {
            "Darknet-1": darknet_2021.definition_overlap_table(),
            "Darknet-2": darknet_2022.definition_overlap_table(),
        }

    data = benchmark.pedantic(build, rounds=1, iterations=1)

    columns = ["D1", "D2", "D3", "D1&D2", "D2&D3", "D1&D3", "D1&D2&D3"]
    blocks = []
    for dataset, table in data.items():
        rows = [
            [metric] + [str(table[metric][c]) for c in columns]
            for metric in ("IP", "ASN", "Org", "Country")
        ]
        blocks.append(
            format_table(
                [dataset] + columns,
                rows,
                title=f"Table 7: Aggressive scanners across definitions — {dataset}",
                align_right=False,
            )
        )
    emit(results_dir, "table7_definitions", "\n\n".join(blocks))

    for report in (darknet_2021, darknet_2022):
        j12 = report.definition_jaccard(1, 2)
        j13 = report.definition_jaccard(1, 3)
        assert j12 > 0.6  # strong D1/D2 overlap
        assert j13 < 0.2  # D3 nearly disjoint
        det = report.detections
        assert len(det[3]) < 0.45 * len(det[1])

    # The definition-3 port threshold shifts sharply upward from 2021 to
    # 2022 (paper: 6,542 -> 57,410 ports/day), reflecting the move
    # toward exhaustive port coverage.
    assert (
        darknet_2022.detections[3].threshold
        > 1.5 * darknet_2021.detections[3].threshold
    )
