"""CI perf-regression gate over the committed benchmark baselines.

Compares freshly regenerated ``BENCH_flows.json`` / ``BENCH_emit.json``
(the bench-smoke job's ``benchmark-results`` artifact) against the
baselines committed under ``benchmarks/results/`` and fails the build
when a gated metric regresses:

* the 4-worker flow-synthesis speedup may not drop more than
  ``--tolerance`` below the committed baseline (and never below the
  ``--speedup-floor`` acceptance threshold);
* the flow worker-time spread (max/min shard seconds) must stay under
  ``--spread-max``;
* the single-process columnar speedup and the emit-path parallel
  speedup get the same baseline-relative band when both sides report
  them;
* the emit path's lazy/materialize ratios are hard ceilings: lazy
  streaming may not be slower than materializing (``time_ratio < 1``)
  and may not peak above a quarter of the materialized allocation
  (``peak_ratio < 0.25``).

Only *ratio* metrics are gated — speedups and spreads compare two
timings from the same machine, so they transfer between the baseline
host and whatever runner CI lands on.  Absolute numbers (seconds,
rows/s) are shown in the report but never enforced.

A before/after markdown table is printed to stdout and appended to
``$GITHUB_STEP_SUMMARY`` when that variable is set (the job-summary
panel in the Actions UI).

Usage::

    python benchmarks/perf_gate.py --fresh-dir fresh-results
    python benchmarks/perf_gate.py --fresh-dir benchmarks/results \
        --baseline-git HEAD        # after `make bench-smoke` locally

Stdlib only: the gate job does not need numpy.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

BENCH_FILES = ("BENCH_flows.json", "BENCH_emit.json")

#: benchmarks/results relative to the repository root — where the
#: committed baselines live and what ``--baseline-git`` reads from.
RESULTS_SUBDIR = "benchmarks/results"


@dataclass
class GateRow:
    """One metric's before/after comparison."""

    metric: str
    baseline: Optional[float]
    fresh: Optional[float]
    threshold: str
    passed: bool
    gated: bool

    def markdown(self) -> str:
        def fmt(value):
            return "—" if value is None else f"{value:.3f}"

        status = (
            ("✅ pass" if self.passed else "❌ FAIL")
            if self.gated
            else "ℹ️ info"
        )
        return (
            f"| {self.metric} | {fmt(self.baseline)} | {fmt(self.fresh)} "
            f"| {self.threshold} | {status} |"
        )


def _load_dir(directory: Path) -> dict:
    data = {}
    for name in BENCH_FILES:
        path = directory / name
        if path.exists():
            data[name] = json.loads(path.read_text())
    return data


def _load_git(ref: str) -> dict:
    data = {}
    for name in BENCH_FILES:
        spec = f"{ref}:{RESULTS_SUBDIR}/{name}"
        try:
            blob = subprocess.run(
                ["git", "show", spec],
                capture_output=True,
                check=True,
            ).stdout
        except subprocess.CalledProcessError:
            continue
        data[name] = json.loads(blob)
    return data


def _get(data: dict, file: str, *keys) -> Optional[float]:
    node = data.get(file)
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def build_rows(
    baseline: dict,
    fresh: dict,
    *,
    tolerance: float,
    spread_max: float,
    speedup_floor: float,
) -> list:
    """All comparison rows; gated ones carry pass/fail state."""

    rows = []

    def relative(metric, file, *keys, floor=None):
        base = _get(baseline, file, *keys)
        new = _get(fresh, file, *keys)
        limits = []
        if base is not None:
            limits.append(base * (1.0 - tolerance))
        if floor is not None:
            limits.append(floor)
        if new is None or not limits:
            # Metric absent on one side: nothing to enforce (a skipped
            # bench on a small runner must not fail the gate), but the
            # gap stays visible in the report.
            rows.append(
                GateRow(metric, base, new, "n/a", passed=True, gated=False)
            )
            return
        threshold = max(limits)
        rows.append(
            GateRow(
                metric,
                base,
                new,
                f">= {threshold:.3f}",
                passed=new >= threshold,
                gated=True,
            )
        )

    def absolute_max(metric, file, *keys, limit):
        base = _get(baseline, file, *keys)
        new = _get(fresh, file, *keys)
        if new is None:
            rows.append(
                GateRow(metric, base, new, "n/a", passed=True, gated=False)
            )
            return
        rows.append(
            GateRow(
                metric,
                base,
                new,
                f"< {limit:.2f}",
                passed=new < limit,
                gated=True,
            )
        )

    relative(
        "flows: columnar speedup vs loop",
        "BENCH_flows.json", "flows", "speedup",
    )
    relative(
        "flows: 4-worker speedup vs loop",
        "BENCH_flows.json", "parallel", "speedup",
        floor=speedup_floor,
    )
    absolute_max(
        "flows: worker-time spread (max/min)",
        "BENCH_flows.json", "parallel", "spread",
        limit=spread_max,
    )
    relative(
        "emit: 4-worker lazy speedup",
        "BENCH_emit.json", "parallel", "speedup",
    )
    absolute_max(
        "emit: lazy/materialize time ratio",
        "BENCH_emit.json", "emit", "time_ratio",
        limit=1.0,
    )
    absolute_max(
        "emit: lazy/materialized peak-memory ratio",
        "BENCH_emit.json", "emit", "peak_ratio",
        limit=0.25,
    )
    return rows


def render(rows: list, tolerance: float) -> str:
    lines = [
        "## Perf gate",
        "",
        f"Tolerance band: -{tolerance:.0%} vs committed baseline.",
        "",
        "| metric | baseline | fresh | threshold | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines.extend(row.markdown() for row in rows)
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir",
        required=True,
        type=Path,
        help="directory holding the regenerated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help=f"directory with committed baselines (default {RESULTS_SUBDIR})",
    )
    parser.add_argument(
        "--baseline-git",
        metavar="REF",
        default=None,
        help="read baselines from this git ref instead of a directory "
        "(use after bench-smoke overwrote benchmarks/results in place)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative drop vs baseline (default 0.15)",
    )
    parser.add_argument(
        "--spread-max",
        type=float,
        default=2.0,
        help="max allowed worker-time spread (default 2.0)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=3.8,
        help="absolute floor on the 4-worker flows speedup (default 3.8)",
    )
    args = parser.parse_args(argv)

    if args.baseline_git is not None:
        baseline = _load_git(args.baseline_git)
    else:
        baseline_dir = args.baseline_dir or Path(RESULTS_SUBDIR)
        baseline = _load_dir(baseline_dir)
    fresh = _load_dir(args.fresh_dir)
    if not fresh:
        print(f"no BENCH_*.json found under {args.fresh_dir}", file=sys.stderr)
        return 2

    rows = build_rows(
        baseline,
        fresh,
        tolerance=args.tolerance,
        spread_max=args.spread_max,
        speedup_floor=args.speedup_floor,
    )
    report = render(rows, args.tolerance)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(report)

    failed = [row for row in rows if row.gated and not row.passed]
    if failed:
        for row in failed:
            print(
                f"perf-gate FAIL: {row.metric} = {row.fresh} "
                f"(wanted {row.threshold})",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
