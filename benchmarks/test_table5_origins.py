"""Table 5 — Origins of aggressive scanners (definition #1).

Regenerates the top-10 origin networks for both darknet datasets:
AS-type/country label, unique /32s (with acknowledged counts in
parentheses), unique /24s, darknet packets, and the top-10 totals row.
Expected shape: a US cloud provider on top, Chinese ISPs/hosting and
East-Asian ISPs prominent, and the top-10 covering a large share of all
AH addresses.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent


def _origin_rows(report):
    rows, totals = report.origins_table(definition=1, top_n=10)
    out = []
    for row in rows:
        acked = f" ({row.acked_ips})" if row.acked_ips else ""
        out.append(
            [
                row.label,
                f"{row.unique_ips}{acked}",
                str(row.unique_slash24),
                f"{row.packets:,}",
            ]
        )
    ips, ip_share = totals["ips"]
    s24, s24_share = totals["slash24"]
    pkts, pkt_share = totals["packets"]
    out.append(
        [
            "Total (top-10)",
            f"{ips} ({render_percent(ip_share, 0)})",
            f"{s24} ({render_percent(s24_share, 0)})",
            f"{pkts:,} ({render_percent(pkt_share, 0)})",
        ]
    )
    return out, rows, totals


def test_table5_origins(benchmark, darknet_2021, darknet_2022, results_dir):
    out_2021, rows_2021, totals_2021 = benchmark.pedantic(
        lambda: _origin_rows(darknet_2021), rounds=1, iterations=1
    )
    out_2022, rows_2022, totals_2022 = _origin_rows(darknet_2022)

    blocks = []
    for label, out in (("Darknet-1 (2021)", out_2021), ("Darknet-2 (2022)", out_2022)):
        blocks.append(
            format_table(
                ["AS Type", "unique /32s", "unique /24s", "Pkts"],
                out,
                title=f"Table 5: Origins of definition-1 AH — {label}",
                align_right=False,
            )
        )
    emit(results_dir, "table5_origins", "\n\n".join(blocks))

    for rows, totals in ((rows_2021, totals_2021), (rows_2022, totals_2022)):
        # A US cloud provider ranks top (the paper: "a certain US-based
        # cloud provider ranks top in all six definitions/datasets").
        assert rows[0].label == "Cloud (US)"
        # Asian ISPs appear in the top-10.
        labels = {r.label for r in rows}
        assert labels & {"ISP (CN)", "ISP (TW)", "ISP (KR)"}
        # The top-10 covers a large share of the AH population.
        assert totals["ips"][1] > 0.3
