"""Ablation — deploying the AH blocklists at the ISP border (§7).

The paper's conclusion proposes blocking the non-acknowledged AH at the
edge.  This ablation replays the Flows-1 week with a border filter fed
by the darknet's daily blocklists, sweeping deployment lag and filter
size: how much of the AH traffic — and of the routers' total load —
actually goes away, and how fast staleness erodes it.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.mitigation import simulate_blocking, summarize

LAGS = (0, 1, 3)
SIZES = (None, 50, 10)


def test_ablation_mitigation(benchmark, flows_week, results_dir):
    flows, totals = flows_week.result.collect_flows()
    flow_days = flows_week.result.scenario.flow_days
    ah = flows_week.detections[1].sources
    # Lists are compiled for every scenario day up to the flow window.
    blocklists = {
        day: flows_week.daily_blocklist(day)
        for day in range(max(flow_days) + 1)
    }

    def sweep():
        out = []
        for lag in LAGS:
            for size in SIZES:
                cells = simulate_blocking(
                    flows,
                    totals,
                    blocklists,
                    ah,
                    lag_days=lag,
                    max_entries=size,
                )
                out.append((lag, size, summarize(cells)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{lag}d",
            "all" if size is None else str(size),
            render_percent(summary["ah_coverage"], 1),
            render_percent(summary["relief"], 2),
        ]
        for lag, size, summary in results
    ]
    table = format_table(
        ["list lag", "filter entries", "AH traffic removed", "router relief"],
        rows,
        title="Ablation: border blocklist deployment (non-ACKed AH, Flows-1)",
        align_right=False,
    )
    emit(results_dir, "ablation_mitigation", table)

    by_key = {(lag, size): s for lag, size, s in results}
    # Fresh, uncapped deployment removes a substantial share of the AH
    # traffic at the routers.
    assert by_key[(0, None)]["ah_coverage"] > 0.4
    # Staleness erodes coverage monotonically.
    assert (
        by_key[(0, None)]["ah_coverage"]
        >= by_key[(1, None)]["ah_coverage"]
        >= by_key[(3, None)]["ah_coverage"]
    )
    # Even a 50-entry filter (Zipf concentration) keeps a useful bite.
    assert by_key[(1, 50)]["ah_coverage"] > 0.1
    # Relief is a visible slice of the routers' total load.
    assert by_key[(0, None)]["relief"] > 0.005
