"""Performance gate for the high-throughput serve path.

Runs the end-to-end serve benchmark (``benchmarks/run_serve_bench.py``
in smoke mode — real server subprocesses, HTTP loadgen, N concurrent
tenants) and asserts the micro-batched + process-pooled ingest path
beats per-chunk executor-thread folds by the acceptance floor.  The
bench itself asserts AH parity (definitions 1–3) between both serve
modes and an offline serial engine, so the speedup can never come at
the cost of a result change.

Skipped below 4 cores: the pooled path's win is process-parallel fold
execution, which a 1–2 core box cannot demonstrate (the bench still
runs there and records throughput, it just omits the ``compare``
section).  CI's 4-vCPU runners execute this as part of bench-smoke;
the regenerated ``BENCH_serve.json`` is compared against the committed
baseline by ``benchmarks/perf_gate.py``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: acceptance floor for the smoke-sized workload on a 4-core runner.
#: The committed baseline carries the measured headroom above this;
#: the perf gate tracks regressions relative to that baseline.
SPEEDUP_FLOOR = 2.5


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4 and not os.environ.get("REPRO_BENCH_FORCE"),
    reason="pooled-fold speedup needs >= 4 cores "
    "(set REPRO_BENCH_FORCE=1 to regenerate the baseline anyway)",
)
def test_perf_serve_pooled_speedup(results_dir):
    """4 tenants, 4 cores: pooled ingest >= 2.5x per-chunk, AH-identical."""
    out = results_dir / "BENCH_serve.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_serve_bench.py"),
            "--smoke",
            "--out",
            str(out),
        ],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=900,
    )
    print(proc.stdout)
    assert proc.returncode == 0, proc.stdout + proc.stderr

    payload = json.loads(out.read_text())
    assert payload["parity"]["identical"] is True
    assert payload["pooled"]["fold_processes"] >= 2
    assert payload["per_chunk"]["fold_processes"] == 0
    compare = payload.get("compare")
    if compare is None:
        pytest.skip("host below the bench's compare-cpu floor")
    assert compare["ingest_speedup"] >= SPEEDUP_FLOOR, payload
