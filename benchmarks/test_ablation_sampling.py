"""Ablation — NetFlow packet-sampling rate vs impact-estimate bias.

The paper measures router impact from 1:1000 packet-sampled flows and
validates against non-sampled packet streams (Figure 1).  This ablation
re-exports the Flows-2 scanner traffic at several sampling rates and
compares the estimated AH fractions with the unsampled ground truth:
binomial sampling is unbiased for the *ratio*, so even 1:10,000 should
track truth closely at router scale — the paper's cross-validation in
miniature.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.impact import daily_impact
from repro.flows.netflow import NetflowExporter

RATES = (1, 100, 1_000, 10_000)


def test_ablation_sampling(benchmark, flows_day, results_dir):
    ah = flows_day.detections[1].sources

    def sweep():
        out = {}
        for rate in RATES:
            flows, totals = flows_day.result.collect_flows(
                exporter=NetflowExporter(sampling_rate=rate),
                seed_offset=500 + rate,
            )
            cells = daily_impact(flows, totals, ah)
            out[rate] = {c.router: c.fraction for c in cells}
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    truth = results[1]
    rows = []
    for rate in RATES:
        row = [f"1:{rate}"]
        for router in sorted(truth):
            row.append(render_percent(results[rate][router]))
        rows.append(row)
    table = format_table(
        ["sampling", "Router-1", "Router-2", "Router-3"],
        rows,
        title="Ablation: flow sampling rate vs AH impact estimate",
        align_right=False,
    )
    emit(results_dir, "ablation_sampling", table)

    # The paper's operating point (1:1000) stays close to ground truth.
    for router, true_fraction in truth.items():
        estimate = results[1_000][router]
        assert abs(estimate - true_fraction) < 0.35 * true_fraction + 0.002
    # Even 1:10,000 remains in the right ballpark (ratio estimator is
    # unbiased; only variance grows).
    errors = [
        abs(results[10_000][r] - truth[r]) / truth[r] for r in truth if truth[r] > 0
    ]
    assert np.mean(errors) < 0.8
