"""Figure 5 — Per-port AH packet shares: flows vs darknet (2022-10-01).

Regenerates the scatter comparing each service's share of AH packets as
seen in the darknet against its share in the router flows.  A tight
diagonal (high rank correlation) is the paper's second consistency
argument (after Table 3) that the AH flow traffic is scanning.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.impact import rank_correlation
from repro.packet import Protocol
from repro.scanners.ports import service_label


def test_fig5_port_consistency(benchmark, flows_day, results_dir):
    rows_data = benchmark.pedantic(
        lambda: flows_day.port_consistency(definition=1), rounds=1, iterations=1
    )

    correlation = rank_correlation(rows_data)
    rows = [
        [
            service_label(port, Protocol(proto)),
            render_percent(dark_share, 2),
            render_percent(flow_share, 2),
        ]
        for port, proto, dark_share, flow_share in rows_data[:25]
    ]
    table = format_table(
        ["service", "darknet share", "flow share"],
        rows,
        title=(
            "Figure 5: observed ports in Flow and Darknet (2022-10-01), "
            f"rank correlation = {correlation:.2f}"
        ),
        align_right=False,
    )
    emit(results_dir, "fig5_port_consistency", table)

    assert len(rows_data) >= 10
    assert correlation > 0.5
    # The top darknet port also carries a large flow share.
    top = rows_data[0]
    assert top[3] > 0.02
