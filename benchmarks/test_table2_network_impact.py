"""Table 2 — Network impact of definition-1 AH at the three core routers.

Regenerates the paper's central result: the daily packet volume and
percentage that aggressive hitters contribute at each border router,
over the Flows-1 week (2022-01-15 .. 01-21) and the Flows-2 day
(2022-10-01).  Expected shape: impact between ~1% and ~6%, highest at
router-1 (the Europe/Asia peering point), higher on the weekend days.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_count, render_percent
from repro.core.impact import average_impact


def _impact_rows(report):
    cells = report.impact_cells(definition=1)
    clock = report.clock
    by_day = {}
    for cell in cells:
        by_day.setdefault(cell.day, {})[cell.router] = cell
    rows = []
    for day in sorted(by_day):
        row = [clock.label(day)]
        for router in sorted(by_day[day]):
            cell = by_day[day][router]
            row.append(
                f"{render_count(cell.ah_packets)} ({render_percent(cell.fraction)})"
            )
        rows.append(row)
    return rows, cells


def test_table2_network_impact(benchmark, flows_week, flows_day, results_dir):
    week_rows, week_cells = benchmark.pedantic(
        lambda: _impact_rows(flows_week), rounds=1, iterations=1
    )
    day_rows, day_cells = _impact_rows(flows_day)

    avg = average_impact(week_cells)
    avg_row = ["Avg (Flows-1)"] + [
        f"{render_count(packets)} ({render_percent(fraction)})"
        for packets, fraction in avg.values()
    ]
    table = format_table(
        ["Date", "Router-1 pkts/pcnt", "Router-2 pkts/pcnt", "Router-3 pkts/pcnt"],
        week_rows + day_rows + [avg_row],
        title="Table 2: Network impact attributed to active AH (definition #1)",
        align_right=False,
    )
    emit(results_dir, "table2_network_impact", table)

    fractions = np.array([c.fraction for c in week_cells + day_cells])
    # Paper range: 1.1 - 5.85%; allow the scaled run a wider floor.
    assert fractions.max() < 0.12
    assert fractions.mean() > 0.005

    # Router-1 endures the highest average impact (peering toward the
    # scanner-heavy origins).
    by_router = average_impact(week_cells)
    assert by_router[0][1] > by_router[1][1]
    assert by_router[0][1] > by_router[2][1]

    # Weekends (2022-01-15/16) show a higher fraction than the weekday
    # average at router-1: the legit denominator dips, scanning does not.
    clock = flows_week.clock
    weekend = [c.fraction for c in week_cells if c.router == 0 and clock.is_weekend(c.day)]
    weekday = [c.fraction for c in week_cells if c.router == 0 and not clock.is_weekend(c.day)]
    assert np.mean(weekend) > np.mean(weekday)
