"""Ablation — fixed-memory sketch vs the exact Definition-1 pipeline.

A line-rate deployment may not afford per-flow state; the
Space-Saving + KMV sketch tracks a bounded candidate table instead.
This ablation sweeps the sketch capacity over the Darknet-2 capture and
measures recall/precision of its dispersion candidates against the
exact Definition-1 AH — quantifying the memory/fidelity trade-off of
an online pre-filter feeding the exact pipeline.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent
from repro.core.sketch import HeavyHitterSketch

CAPACITIES = (256, 1_024, 4_096)


def test_ablation_sketch(benchmark, darknet_2022, results_dir):
    capture = darknet_2022.result.capture
    days = darknet_2022.result.scenario.days
    threshold = 0.1 * darknet_2022.result.dark_size
    exact = darknet_2022.detections[1].sources

    def sweep():
        out = []
        for capacity in CAPACITIES:
            sketch = HeavyHitterSketch(capacity=capacity, kmv_size=128)
            for day in range(days):
                sketch.add_batch(capture.day_slice(day, 86_400.0))
            candidates = set(sketch.candidates(threshold * 0.8))
            recall = len(exact & candidates) / len(exact)
            precision = (
                len(exact & candidates) / len(candidates) if candidates else 0.0
            )
            out.append((capacity, len(candidates), recall, precision))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            str(capacity),
            str(count),
            render_percent(recall, 1),
            render_percent(precision, 1),
        ]
        for capacity, count, recall, precision in results
    ]
    table = format_table(
        ["sketch capacity", "candidates", "recall vs exact", "precision"],
        rows,
        title=(
            "Ablation: fixed-memory AH pre-filter vs exact definition #1 "
            f"({len(exact)} exact AH)"
        ),
        align_right=False,
    )
    emit(results_dir, "ablation_sketch", table)

    by_capacity = {c: (r, p) for c, _, r, p in results}
    # Ample capacity recovers nearly the whole exact population.
    assert by_capacity[4_096][0] > 0.9
    # Recall is monotone in memory.
    recalls = [r for _, _, r, _ in results]
    assert recalls == sorted(recalls)
    # Even the smallest table keeps a usable candidate set.
    assert by_capacity[256][0] > 0.2
