"""Performance benchmarks for the pipeline's hot paths.

Unlike the table/figure benchmarks (single-round regenerators), these
measure steady-state throughput of the core kernels with repeated
rounds: the darknet event builder, AH detection, prefix lookups and
scanner emission.  They guard against quadratic regressions — a real
telescope day at ORION scale is ~1.5B packets, so the event builder's
throughput is the reproduction's scalability ceiling.
"""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.net.internet import InternetConfig, build_internet
from repro.packet import PacketBatch, Protocol
from repro.scanners.base import Scanner, ScanMode, ScanSession, View
from repro.fingerprint import Tool
from repro.net.prefix import Prefix, PrefixSet


def synthetic_capture(n_packets=500_000, n_sources=2_000, seed=3):
    """A darknet-like capture: many small flows plus heavy scanners."""
    rng = np.random.default_rng(seed)
    src = rng.integers(1, n_sources, n_packets, dtype=np.int64).astype(np.uint32)
    return PacketBatch(
        ts=np.sort(rng.random(n_packets) * 86_400.0),
        src=src,
        dst=rng.integers(0, 8_192, n_packets, dtype=np.int64).astype(np.uint32),
        dport=rng.choice(
            np.array([23, 80, 443, 6_379, 22], dtype=np.uint16), n_packets
        ),
        proto=np.full(n_packets, Protocol.TCP_SYN.value, dtype=np.uint8),
        ipid=rng.integers(0, 65_536, n_packets, dtype=np.int64).astype(np.uint16),
    )


@pytest.fixture(scope="module")
def capture():
    return synthetic_capture()


@pytest.fixture(scope="module")
def events(capture):
    return build_events(capture, timeout=600.0)


def test_perf_event_builder(benchmark, capture):
    """Throughput of the darknet event builder (packets -> events)."""
    events = benchmark(build_events, capture, 600.0)
    assert int(events.packets.sum()) == len(capture)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        # Headline: > 1M packets/second on commodity hardware.
        per_second = len(capture) / benchmark.stats.stats.mean
        assert per_second > 200_000


def test_perf_streaming(benchmark, capture):
    """Throughput of the incremental builder over hourly chunks.

    Drives the same capture as ``test_perf_event_builder`` through the
    streaming path (24 epoch-aligned hourly chunks with open flows
    carried across every boundary) — the chunked group-by must stay
    within a small factor of the batch builder, not collapse to
    per-packet Python speed.
    """
    from repro.core.streaming import StreamingEventBuilder

    chunks = [c for _, _, c in capture.iter_time_chunks(3_600.0)]
    assert len(chunks) == 24

    def stream():
        builder = StreamingEventBuilder(600.0)
        for chunk in chunks:
            builder.add_batch(chunk)
        return builder.finish()

    events = benchmark(stream)
    assert int(events.packets.sum()) == len(capture)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        # Streaming floor: > 200k packets/second end to end.
        per_second = len(capture) / benchmark.stats.stats.mean
        assert per_second > 200_000


def test_perf_detection(benchmark, events):
    """All three definitions over a pre-built event table."""
    results = benchmark(
        detect_all, events, 8_192, DetectionConfig(alpha=1e-3), 86_400.0
    )
    assert set(results) == {1, 2, 3}


def test_perf_prefix_lookup(benchmark):
    """Vectorized AS lookups over a large address sample."""
    internet = build_internet(InternetConfig(seed=1))
    rng = np.random.default_rng(0)
    addresses = rng.integers(0, 2**32, 1_000_000, dtype=np.int64).astype(np.uint32)

    idx = benchmark(internet.registry.lookup_index, addresses)
    assert len(idx) == len(addresses)


def test_perf_scanner_emission(benchmark):
    """Coverage-scan emission into a /16 view."""
    view = View(name="perf", prefixes=PrefixSet([Prefix.parse("10.0.0.0/16")]))
    session = ScanSession(
        start=0.0,
        duration=3_600.0,
        ports=np.array([6_379], dtype=np.uint16),
        proto=Protocol.TCP_SYN,
        tool=Tool.MASSCAN,
        mode=ScanMode.COVERAGE,
        coverage=0.8,
    )
    scanner = Scanner(src=1, behavior="perf", sessions=[session], seed=1)

    batch = benchmark(scanner.emit, view)
    assert len(batch) > 0.7 * view.size


def test_perf_sorted_merge(benchmark, capture):
    """Time-sorting a large unsorted batch (the capture path)."""
    rng = np.random.default_rng(5)
    shuffled = capture.select(rng.permutation(len(capture)))

    out = benchmark(shuffled.sorted_by_time)
    assert np.all(np.diff(out.ts) >= 0)
