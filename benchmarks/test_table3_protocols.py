"""Table 3 — Protocol mix of AH traffic: darknet vs flows (2022-10-01).

The cross-dataset consistency check: if the AH flow packets at the
routers have the same TCP-SYN/UDP/ICMP composition as those sources'
darknet packets, the flow volume really is scanning rather than user
traffic from co-located hosts.  Expected shape: ~90% TCP-SYN for
definitions 1-2, ~98% for definition 3, and darknet/flow agreement
within a few points.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table, render_percent


def test_table3_protocols(benchmark, flows_day, results_dir):
    table_data = benchmark.pedantic(
        flows_day.protocol_table, rounds=1, iterations=1
    )

    protocols = ["TCP-SYN", "UDP", "ICMP Ech Rqst"]
    rows = []
    for proto in protocols:
        row = [proto]
        for definition in (1, 2, 3):
            dark = table_data[definition]["darknet"][proto]
            flow = table_data[definition]["flows"][proto]
            row.append(f"{render_percent(dark, 1)} / {render_percent(flow, 1)}")
        rows.append(row)
    table = format_table(
        ["Protocol", "Def #1 D/F", "Def #2 D/F", "Def #3 D/F"],
        rows,
        title="Table 3: Protocols in Darknet (D) and Flow (F) for 2022-10-01",
        align_right=False,
    )
    emit(results_dir, "table3_protocols", table)

    for definition in (1, 2):
        dark = table_data[definition]["darknet"]
        flow = table_data[definition]["flows"]
        # TCP-SYN dominates and the two vantage points agree.
        assert dark["TCP-SYN"] > 0.75
        assert abs(dark["TCP-SYN"] - flow["TCP-SYN"]) < 0.1
        assert dark["UDP"] < 0.25
    # Definition 3 (vertical scanners) is even more TCP-heavy.
    assert table_data[3]["darknet"]["TCP-SYN"] > 0.9
