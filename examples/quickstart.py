#!/usr/bin/env python
"""Quickstart: run a miniature end-to-end study in a few seconds.

Builds a synthetic Internet, simulates a scanner population against a
small network telescope, forms darknet events, applies the paper's
three aggressive-hitter definitions, and measures the detected hitters'
impact at a simulated ISP's border routers.

Usage::

    python examples/quickstart.py
"""

from repro import run_study, tiny_scenario
from repro.analysis.tables import format_table, render_percent


def main() -> None:
    print("Running the tiny scenario (a few seconds)...")
    report = run_study(tiny_scenario())

    # ------------------------------------------------------------------
    # 1. What did the telescope see?
    # ------------------------------------------------------------------
    summary = report.dataset_summary()
    print(
        f"\nTelescope: {summary['dark_size']:,} dark IPs observed "
        f"{summary['packets']:,} packets from {summary['source_ips']:,} "
        f"sources over {summary['days']} days "
        f"({summary['events']:,} darknet events)."
    )

    # ------------------------------------------------------------------
    # 2. The three AH definitions.
    # ------------------------------------------------------------------
    rows = []
    for definition, result in sorted(report.detections.items()):
        rows.append(
            (f"Definition {definition}", len(result), f"{result.threshold:,.0f}")
        )
    print()
    print(format_table(["definition", "AH sources", "threshold"], rows))
    print(
        f"Jaccard(def 1, def 2) = {report.definition_jaccard():.2f} "
        "(the paper: ~0.8 — the two definitions largely agree)"
    )

    # ------------------------------------------------------------------
    # 3. The headline: few sources, most of the packets.
    # ------------------------------------------------------------------
    capture = report.result.capture
    ah = report.detections[1].sources
    ah_share = capture.packets_from(ah) / len(capture)
    print(
        f"\n{len(ah)} AH ({render_percent(len(ah) / summary['source_ips'])} "
        f"of sources) sent {render_percent(ah_share, 1)} of all darknet packets."
    )

    # ------------------------------------------------------------------
    # 4. Network impact at the ISP's core routers.
    # ------------------------------------------------------------------
    print("\nAH packet share at the ISP routers (sampled NetFlow):")
    rows = []
    for cell in report.impact_cells():
        rows.append(
            (
                report.clock.label(cell.day),
                f"Router-{cell.router + 1}",
                f"{cell.ah_packets:,}",
                render_percent(cell.fraction),
            )
        )
    print(format_table(["day", "router", "AH packets", "share"], rows[:9]))

    # ------------------------------------------------------------------
    # 5. The operational deliverable: a daily blocklist.
    # ------------------------------------------------------------------
    blocklist = report.daily_blocklist(1)
    print(
        f"\nDay-1 blocklist: {len(blocklist)} entries "
        f"({len(blocklist.non_acknowledged())} non-acknowledged). Top 5:"
    )
    for entry in blocklist.top_by_packets(5):
        print("  " + entry.format())


if __name__ == "__main__":
    main()
