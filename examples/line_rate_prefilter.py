#!/usr/bin/env python
"""Operating the pipeline live: streaming events + fixed-memory sketch.

A deployed telescope never sees its capture at rest — packets arrive in
chunks, and at line rate an operator may not afford exact per-flow
state up front.  This example runs the production-shaped configuration
over a simulated day stream:

1. a :class:`HeavyHitterSketch` (Space-Saving + KMV) consumes every
   chunk in fixed memory and maintains the *candidate* aggressive
   hitters online;
2. a :class:`StreamingEventBuilder` folds the same chunks into exact
   darknet events, emitting finalized events as flows expire;
3. at the end of the window the exact Definition-1 detector confirms
   the candidates, and the two views are compared.

Usage::

    python examples/line_rate_prefilter.py
"""

from repro import tiny_scenario
from repro.analysis.tables import format_table, render_percent
from repro.config import DetectionConfig
from repro.core.detection import detect_dispersion
from repro.core.sketch import HeavyHitterSketch
from repro.core.streaming import StreamingEventBuilder
from repro.sim.runner import run_scenario


def main() -> None:
    print("Simulating a telescope and replaying its capture as a stream...")
    result = run_scenario(tiny_scenario())
    capture = result.capture
    timeout = result.telescope.default_timeout()
    day_seconds = result.clock.seconds_per_day

    sketch = HeavyHitterSketch(capacity=512, kmv_size=128)
    builder = StreamingEventBuilder(timeout=timeout)

    rows = []
    for day in range(result.scenario.days):
        chunk = capture.day_slice(day, day_seconds)
        sketch.add_batch(chunk)
        builder.add_batch(chunk)
        rows.append(
            [
                result.clock.label(day),
                f"{len(chunk):,}",
                str(builder.open_flows),
                f"{builder.closed_events:,}",
                str(sketch.tracked),
            ]
        )
    print()
    print(
        format_table(
            ["chunk", "packets", "open flows", "final events", "sketch slots"],
            rows,
            title="Per-chunk pipeline state",
            align_right=False,
        )
    )

    # Exact detection over the streamed events.
    events = builder.finish()
    threshold = 0.1 * result.telescope.size
    detection = detect_dispersion(
        events, result.telescope.size, DetectionConfig(alpha=0.01)
    )
    exact = detection.sources

    candidates = set(sketch.candidates(threshold * 0.8))
    recall = len(exact & candidates) / len(exact) if exact else 0.0
    precision = len(exact & candidates) / len(candidates) if candidates else 0.0
    print(
        f"\nExact definition-1 AH: {len(exact)}; sketch candidates: "
        f"{len(candidates)} (recall {render_percent(recall, 1)}, "
        f"precision {render_percent(precision, 1)})."
    )
    print(
        "The sketch runs in fixed memory ahead of the exact pipeline; "
        "its candidates are confirmed (and pruned) by the event-based "
        "definitions downstream."
    )


if __name__ == "__main__":
    main()
