#!/usr/bin/env python
"""Longitudinal characterization: the paper's §5 over both "years".

Runs the two darknet datasets (2021-like and 2022-like), then walks the
characterization results: temporal trends (Figure 3), origin networks
(Table 5), top targeted services with ZMap/Masscan fingerprints
(Figure 4), acknowledged-scanner validation (Table 6) and the honeypot
cross-check (Figure 6 / Table 9).

Usage::

    python examples/longitudinal_characterization.py   # ~2 minutes
"""

import numpy as np

from repro import darknet_year_scenario, run_study
from repro.analysis.figures import sparkline
from repro.analysis.tables import format_table, render_percent
from repro.core.characterize import port_overlap
from repro.packet import Protocol
from repro.scanners.ports import service_label


def main() -> None:
    reports = {}
    for year in (2021, 2022):
        print(f"Simulating the {year} darknet dataset...")
        reports[year] = run_study(darknet_year_scenario(year))

    # ------------------------------------------------------------------
    # Figure 3: temporal trends.
    # ------------------------------------------------------------------
    print()
    rows = []
    for year, report in reports.items():
        points = report.temporal_trends()
        core = points[2:-2]
        rows.append(
            [
                str(year),
                f"{np.mean([p.daily_new_ah for p in core]):.0f}",
                f"{np.mean([p.active_ah for p in core]):.0f}",
                render_percent(
                    float(np.mean([p.ah_packet_share for p in core])), 1
                ),
                sparkline([p.active_ah for p in points], width=28),
            ]
        )
    print(
        format_table(
            ["year", "daily AH", "active AH", "AH pkt share", "active AH/day"],
            rows,
            title="Temporal trends (definition 1)",
            align_right=False,
        )
    )

    # ------------------------------------------------------------------
    # Table 5: origins.
    # ------------------------------------------------------------------
    for year, report in reports.items():
        origin_rows, totals = report.origins_table()
        rows = [
            [
                r.label,
                f"{r.unique_ips}" + (f" ({r.acked_ips})" if r.acked_ips else ""),
                str(r.unique_slash24),
                f"{r.packets:,}",
            ]
            for r in origin_rows
        ]
        print()
        print(
            format_table(
                ["AS type", "/32s (ACKed)", "/24s", "darknet pkts"],
                rows,
                title=f"Top origin networks of the {year} AH "
                f"(top-10 hold {render_percent(totals['ips'][1], 0)} of AH IPs)",
                align_right=False,
            )
        )

    # ------------------------------------------------------------------
    # Figure 4: top services and tool fingerprints.
    # ------------------------------------------------------------------
    ranked = {year: report.top_ports() for year, report in reports.items()}
    for year in (2021, 2022):
        rows = [
            [
                f"#{i}",
                service_label(r.port, Protocol(r.proto)),
                f"{r.packets:,}",
                render_percent((r.zmap_packets + r.masscan_packets) / r.packets, 0),
            ]
            for i, r in enumerate(ranked[year][:10], start=1)
        ]
        print()
        print(
            format_table(
                ["rank", "service", "AH packets", "ZMap+Masscan"],
                rows,
                title=f"Top-10 AH services, {year}",
                align_right=False,
            )
        )
    print(
        f"\n{port_overlap(ranked[2021], ranked[2022])} of the top-25 services "
        "recur across both years (paper: 20 of 25)."
    )

    # ------------------------------------------------------------------
    # Table 6 / Figure 6: validation.
    # ------------------------------------------------------------------
    report = reports[2022]
    acked = report.acked_match()
    print(
        f"\nAcknowledged scanners among the 2022 AH: {acked.total_ips} IPs "
        f"({acked.ip_matches} via the published list, {acked.domain_matches} "
        f"via rDNS keywords) from {acked.orgs} orgs, carrying "
        f"{render_percent(acked.packets_share_of_ah, 1)} of AH packets."
    )
    overlap = report.greynoise_overlap()
    breakdown = report.greynoise_breakdown()
    print(
        f"Honeypot cross-check: {render_percent(overlap, 1)} of daily AH are "
        f"also seen by the distributed sensors; non-ACKed intent breakdown: "
        f"{breakdown['malicious']} malicious / {breakdown['unknown']} unknown "
        f"/ {breakdown['benign']} benign."
    )
    print("\nTop honeypot tags of the non-ACKed AH:")
    for tag, count in report.greynoise_tags_table(top_n=8):
        print(f"  {tag:35s} {count}")


if __name__ == "__main__":
    main()
