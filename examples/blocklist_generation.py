#!/usr/bin/env python
"""Daily AH blocklist generation — the paper's operational deliverable.

The paper's authors plan to publish daily lists of aggressive scanners
(under all three definitions) for operators and threat exchanges.  This
example produces those artifacts from a simulated darknet: one CSV per
day, annotated with definitions matched, packet volume, origin AS and
country, and the acknowledged-scanner flag — plus the Zipf analysis
showing how short a blocklist gets most of the job done.

Usage::

    python examples/blocklist_generation.py [output_dir]
"""

import sys
from pathlib import Path

from repro import darknet_year_scenario, run_study
from repro.analysis.tables import format_table, render_percent
from repro.core.lists import amelioration_curve, blocklist_size_for_share
from repro.io.listio import diff_blocklists, save_blocklist


def main() -> None:
    output_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "blocklists")
    output_dir.mkdir(exist_ok=True)

    print("Simulating the 2022 darknet dataset (about a minute)...")
    report = run_study(darknet_year_scenario(2022, days=14))

    rows = []
    previous = None
    for day in range(report.result.scenario.days):
        blocklist = report.daily_blocklist(day)
        if not len(blocklist):
            continue
        date = report.clock.date_of(day).isoformat()
        save_blocklist(blocklist, output_dir / f"ah-blocklist-{date}.csv")

        # The subscriber's view: the delta against yesterday's list.
        churn = "-"
        if previous is not None:
            diff = diff_blocklists(previous, blocklist)
            churn = (
                f"+{len(diff.added)}/-{len(diff.removed)} "
                f"({render_percent(diff.churn, 0)})"
            )
        previous = blocklist

        curve = amelioration_curve(blocklist)
        k50 = blocklist_size_for_share(blocklist, 0.50)
        k90 = blocklist_size_for_share(blocklist, 0.90)
        rows.append(
            [
                date,
                str(len(blocklist)),
                str(len(blocklist.non_acknowledged())),
                str(k50),
                str(k90),
                render_percent(float(curve[min(9, len(curve) - 1)]), 1),
                churn,
            ]
        )

    print()
    print(
        format_table(
            [
                "date",
                "entries",
                "non-ACKed",
                "k for 50%",
                "k for 90%",
                "top-10 share",
                "delta vs prev",
            ],
            rows,
            title=f"Daily blocklists written to {output_dir}/",
            align_right=False,
        )
    )
    print(
        "\nThe Zipf-like concentration means blocking a handful of top "
        "hitters already removes a large share of the unwanted traffic — "
        "exactly the short, low-collateral lists operators want."
    )


if __name__ == "__main__":
    main()
